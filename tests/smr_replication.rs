//! Integration: state-machine replication (`gencon-smr`) across algorithms,
//! fault models and pipelining windows — all honest replicas apply
//! identical command sequences.

use gencon::prelude::*;
use gencon::smr::{Replica, SmrMsg};
use gencon_algos as algos;

fn replicas(
    spec: &algos::AlgorithmSpec<u64>,
    queues: Vec<Vec<u64>>,
    target: usize,
    window: usize,
) -> Vec<Replica<u64>> {
    queues
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            Replica::new(ProcessId::new(i), spec.params.clone(), q, 0, target)
                .unwrap()
                .with_window(window)
        })
        .collect()
}

#[test]
fn pbft_smr_with_byzantine_replica() {
    let spec = algos::pbft::<u64>(4, 1).unwrap();
    let byz = ProcessId::new(3);
    let queues: Vec<Vec<u64>> = (1..=4)
        .map(|r| (0..3).map(|s| r * 10 + s).collect())
        .collect();
    let mut builder = Simulation::builder(spec.params.cfg);
    for r in replicas(&spec, queues, 3, 2) {
        if gencon::rounds::RoundProcess::id(&r) != byz {
            builder = builder.honest(r);
        }
    }
    let out = builder
        .byzantine(gencon::adversary::Mute::<SmrMsg<u64>>::new(byz))
        .build()
        .unwrap()
        .run(120);
    assert!(out.all_correct_decided);
    assert!(properties::agreement(&out, |log| log));
    let log = out.honest_decisions().next().unwrap();
    assert_eq!(log.len(), 3);
}

#[test]
fn logs_survive_partial_synchrony_and_seeds() {
    let spec = algos::mqb::<u64>(5, 1).unwrap();
    for seed in 0..5u64 {
        let queues: Vec<Vec<u64>> = (1..=5).map(|r| vec![r * 7, r * 7 + 1]).collect();
        let mut builder = Simulation::builder(spec.params.cfg);
        for r in replicas(&spec, queues, 2, 2) {
            builder = builder.honest(r);
        }
        let out = builder
            .network(Gst::new(5, 0.7, seed))
            .build()
            .unwrap()
            .run(120);
        assert!(out.all_correct_decided, "seed {seed}");
        assert!(properties::agreement(&out, |log| log), "seed {seed}");
    }
}

#[test]
fn windows_do_not_change_committed_values() {
    let spec = algos::pbft::<u64>(4, 1).unwrap();
    let mut logs = Vec::new();
    for window in [1usize, 2, 5] {
        let queues: Vec<Vec<u64>> = (1..=4)
            .map(|r| (0..5).map(|s| r * 100 + s).collect())
            .collect();
        let mut builder = Simulation::builder(spec.params.cfg);
        for r in replicas(&spec, queues, 5, window) {
            builder = builder.honest(r);
        }
        let out = builder.build().unwrap().run(150);
        assert!(out.all_correct_decided, "window {window}");
        logs.push(out.outputs[0].clone().unwrap());
    }
    assert_eq!(logs[0], logs[1], "window 2 commits the same log");
    assert_eq!(logs[0], logs[2], "window 5 commits the same log");
}

#[test]
fn benign_smr_with_crash_mid_stream() {
    let spec = algos::chandra_toueg::<u64>(5, 2).unwrap();
    let queues: Vec<Vec<u64>> = (1..=5).map(|r| vec![r, r + 50, r + 100]).collect();
    let crashes = CrashPlan::none()
        .with(ProcessId::new(4), CrashAt::mid_send(Round::new(5), 2))
        .with(ProcessId::new(3), CrashAt::silent(Round::new(8)));
    let mut builder = Simulation::builder(spec.params.cfg);
    for r in replicas(&spec, queues, 3, 1) {
        builder = builder.honest(r);
    }
    let out = builder.crashes(crashes).build().unwrap().run(200);
    assert!(out.all_correct_decided);
    assert!(properties::agreement(&out, |log| log));
}
