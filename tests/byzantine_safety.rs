//! Byzantine safety: agreement must hold for every adversary strategy, in
//! every network schedule — including fully adversarial ones where no
//! predicate ever holds (safety never depends on liveness assumptions).

use gencon::adversary::{AdversaryCtx, Equivocator, FreshLiar, HistoryForger, Silent, SplitVoter};
use gencon::prelude::*;
use gencon::rounds::Adversary;
use gencon_algos::AlgorithmSpec;
use gencon_core::ConsensusMsg;

type Adv = Box<dyn Adversary<Msg = ConsensusMsg<u64>>>;

fn byz_specs() -> Vec<AlgorithmSpec<u64>> {
    vec![
        gencon_algos::fab_paxos::<u64>(6, 1).unwrap(),
        gencon_algos::mqb::<u64>(5, 1).unwrap(),
        gencon_algos::pbft::<u64>(4, 1).unwrap(),
    ]
}

fn adversaries(spec: &AlgorithmSpec<u64>, byz: ProcessId) -> Vec<(&'static str, Adv)> {
    let ctx = AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
    vec![
        ("silent", Box::new(Silent::<u64>::new(byz)) as Adv),
        (
            "equivocator",
            Box::new(Equivocator::new(byz, ctx.clone(), 7, 8)),
        ),
        ("fresh-liar", Box::new(FreshLiar::new(byz, ctx.clone(), 9))),
        (
            "history-forger",
            Box::new(HistoryForger::new(byz, ctx.clone(), 10, vec![1, 2, 3, 4])),
        ),
        ("split-voter", Box::new(SplitVoter::new(byz, ctx, 11, 12))),
    ]
}

fn run(
    spec: &AlgorithmSpec<u64>,
    adv: Adv,
    byz: ProcessId,
    net: impl NetworkModel + 'static,
    enforce: bool,
    rounds: u64,
) -> Outcome<Decision<u64>> {
    let n = spec.params.cfg.n();
    let inits: Vec<u64> = (0..n as u64).collect();
    let fleet = spec.spawn(&inits).unwrap();
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        if gencon::rounds::RoundProcess::id(&engine) != byz {
            builder = builder.honest(engine);
        }
    }
    builder
        .byzantine(adv)
        .network(net)
        .enforce_predicates(enforce)
        .build()
        .unwrap()
        .run(rounds)
}

#[test]
fn agreement_under_all_adversaries_good_network() {
    for spec in byz_specs() {
        let byz = ProcessId::new(spec.params.cfg.n() - 1);
        for (name, adv) in adversaries(&spec, byz) {
            let out = run(&spec, adv, byz, AlwaysGood, true, 60);
            assert!(
                properties::agreement(&out, |d| &d.value),
                "{} vs {name}",
                spec.name
            );
            assert!(out.all_correct_decided, "{} vs {name}", spec.name);
        }
    }
}

#[test]
fn agreement_survives_hostile_network_without_enforcement() {
    // Predicates never enforced, loss forever: liveness is gone, but any
    // decisions that do happen must still agree. (Safety ⊥ liveness.)
    for spec in byz_specs() {
        let byz = ProcessId::new(spec.params.cfg.n() - 1);
        for adv_index in 0..5usize {
            for seed in 0..10u64 {
                let (name, adv) = adversaries(&spec, byz).swap_remove(adv_index);
                let out = run(&spec, adv, byz, Gst::new(u64::MAX, 0.5, seed), false, 40);
                assert!(
                    properties::agreement(&out, |d| &d.value),
                    "{} vs {name} seed {seed}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn agreement_under_partition_then_heal() {
    // A scripted half/half partition for 6 rounds, then full connectivity.
    for spec in byz_specs() {
        let n = spec.params.cfg.n();
        let byz = ProcessId::new(n - 1);
        let ctx = AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
        let adv: Adv = Box::new(Equivocator::new(byz, ctx, 70, 80));
        let net = Scripted::new(
            move |r: Round, n| {
                let mut plan = DeliveryPlan::full(n);
                if r.number() <= 6 {
                    for a in 0..n {
                        for b in 0..n {
                            if (a < n / 2) != (b < n / 2) {
                                plan.set(ProcessId::new(a), ProcessId::new(b), false);
                            }
                        }
                    }
                }
                plan
            },
            |r| r.number() > 6,
        );
        let out = run(&spec, adv, byz, net, true, 40);
        assert!(
            properties::agreement(&out, |d| &d.value),
            "{} partitioned",
            spec.name
        );
        assert!(out.all_correct_decided, "{} heals and decides", spec.name);
    }
}

#[test]
fn two_byzantine_processes_at_scale() {
    // b = 2 systems: one silent + one equivocating Byzantine process.
    let specs = vec![
        gencon_algos::fab_paxos::<u64>(11, 2).unwrap(),
        gencon_algos::mqb::<u64>(9, 2).unwrap(),
        gencon_algos::pbft::<u64>(7, 2).unwrap(),
    ];
    for spec in specs {
        let n = spec.params.cfg.n();
        let ctx = AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
        let b1 = ProcessId::new(n - 1);
        let b2 = ProcessId::new(n - 2);
        let inits: Vec<u64> = (0..n as u64).collect();
        let fleet = spec.spawn(&inits).unwrap();
        let mut builder = Simulation::builder(spec.params.cfg);
        for engine in fleet {
            let id = gencon::rounds::RoundProcess::id(&engine);
            if id != b1 && id != b2 {
                builder = builder.honest(engine);
            }
        }
        let out = builder
            .byzantine(Silent::<u64>::new(b2))
            .byzantine(Equivocator::new(b1, ctx, 100, 200))
            .build()
            .unwrap()
            .run(60);
        assert!(properties::agreement(&out, |d| &d.value), "{}", spec.name);
        assert!(out.all_correct_decided, "{}", spec.name);
    }
}
