//! Cross-crate integration: the three classes solve consensus (§2.3
//! properties) across fault models, network schedules and seeds.

use gencon::prelude::*;
use gencon_algos::AlgorithmSpec;

fn class_spec(class: ClassId, f: usize, b: usize) -> AlgorithmSpec<u64> {
    let n = class.min_n(f, b);
    let cfg = Config::new(n, f, b).unwrap();
    AlgorithmSpec {
        name: "generic",
        class,
        model: "mixed",
        bound: class.n_bound(),
        params: Params::for_class(class, cfg).unwrap(),
    }
}

fn run_all_honest(
    spec: &AlgorithmSpec<u64>,
    inits: &[u64],
    net: impl NetworkModel + 'static,
    crashes: CrashPlan,
    max_rounds: u64,
) -> Outcome<Decision<u64>> {
    let fleet = spec.spawn(inits).unwrap();
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        builder = builder.honest(engine);
    }
    builder
        .network(net)
        .crashes(crashes)
        .build()
        .unwrap()
        .run(max_rounds)
}

#[test]
fn all_classes_decide_synchronously_benign() {
    for class in ClassId::ALL {
        let spec = class_spec(class, 1, 0);
        let n = spec.params.cfg.n();
        let inits: Vec<u64> = (0..n as u64).collect();
        let out = run_all_honest(&spec, &inits, AlwaysGood, CrashPlan::none(), 20);
        assert!(out.all_correct_decided, "{class}");
        assert!(properties::agreement(&out, |d| &d.value), "{class}");
        assert!(properties::validity(&out, &inits, |d| &d.value), "{class}");
    }
}

#[test]
fn all_classes_tolerate_one_crash() {
    for class in ClassId::ALL {
        let spec = class_spec(class, 1, 0);
        let n = spec.params.cfg.n();
        let inits: Vec<u64> = (0..n as u64).collect();
        for crash_round in 1..=4u64 {
            for prefix in [0usize, 1, n / 2, n] {
                let crashes = CrashPlan::none().with(
                    ProcessId::new(n - 1),
                    CrashAt::mid_send(Round::new(crash_round), prefix),
                );
                let out = run_all_honest(&spec, &inits, AlwaysGood, crashes, 40);
                assert!(
                    out.all_correct_decided,
                    "{class} crash@r{crash_round}+{prefix}"
                );
                assert!(
                    properties::agreement(&out, |d| &d.value),
                    "{class} crash@r{crash_round}+{prefix}"
                );
                assert!(
                    properties::validity(&out, &inits, |d| &d.value),
                    "{class} crash@r{crash_round}+{prefix}"
                );
            }
        }
    }
}

#[test]
fn all_classes_decide_after_gst() {
    for class in ClassId::ALL {
        let spec = class_spec(class, 0, 1);
        let n = spec.params.cfg.n();
        let inits: Vec<u64> = (0..n as u64).collect();
        for gst in [1u64, 5, 9] {
            for seed in 0..5u64 {
                let out = run_all_honest(
                    &spec,
                    &inits,
                    Gst::new(gst, 0.8, seed),
                    CrashPlan::none(),
                    gst + 30,
                );
                assert!(out.all_correct_decided, "{class} gst={gst} seed={seed}");
                assert!(
                    properties::agreement(&out, |d| &d.value),
                    "{class} gst={gst} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn unanimity_holds_when_enabled() {
    // Class 3 with the unanimity switch: all honest share the input, a
    // Byzantine process pushes a different value — the decision must be
    // the shared input.
    let cfg = Config::byzantine(4, 1).unwrap().with_unanimity(true);
    let params = Params::<u64>::for_class(ClassId::Three, cfg).unwrap();
    let spec = AlgorithmSpec {
        name: "generic+unanimity",
        class: ClassId::Three,
        model: "Byzantine",
        bound: "n > 3b",
        params,
    };
    let fleet = spec.spawn(&[5, 5, 5, 999]).unwrap();
    let byz = ProcessId::new(3);
    let ctx = gencon::adversary::AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        if gencon::rounds::RoundProcess::id(&engine) != byz {
            builder = builder.honest(engine);
        }
    }
    let mut sim = builder
        .byzantine(gencon::adversary::Equivocator::new(byz, ctx, 1, 2))
        .build()
        .unwrap();
    let out = sim.run(30);
    assert!(out.all_correct_decided);
    assert!(properties::agreement(&out, |d| &d.value));
    assert!(properties::unanimity(&out, &[5, 5, 5], |d| &d.value));
    assert_eq!(out.honest_decisions().next().unwrap().value, 5);
}

#[test]
fn decisions_are_stable_across_later_rounds() {
    // A decided process keeps participating but never changes its decision.
    let spec = class_spec(ClassId::Three, 0, 1);
    let fleet = spec.spawn(&[1, 2, 3, 4]).unwrap();
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        builder = builder.honest(engine);
    }
    let mut sim = builder.build().unwrap();
    sim.run(3);
    let first: Vec<_> = sim.outputs();
    assert!(first.iter().all(Option::is_some));
    for _ in 0..12 {
        sim.step();
    }
    assert_eq!(sim.outputs(), first, "decisions must not change");
}

#[test]
fn larger_systems_decide_too() {
    for class in ClassId::ALL {
        for (f, b) in [(2, 0), (0, 2), (1, 1)] {
            let n = class.min_n(f, b) + 3;
            let cfg = Config::new(n, f, b).unwrap();
            let spec = AlgorithmSpec {
                name: "generic",
                class,
                model: "mixed",
                bound: class.n_bound(),
                params: Params::for_class(class, cfg).unwrap(),
            };
            let inits: Vec<u64> = (0..n as u64).map(|i| i * 3 % 7).collect();
            let out = run_all_honest(&spec, &inits, AlwaysGood, CrashPlan::none(), 20);
            assert!(out.all_correct_decided, "{class} f={f} b={b} n={n}");
            assert!(properties::agreement(&out, |d| &d.value));
        }
    }
}
