//! Property-based tests (proptest): the abstract FLV properties of §3.2 as
//! executable invariants over generated message distributions, plus
//! whole-execution agreement over random fault/network schedules and codec
//! round-trips.

use proptest::prelude::*;

use gencon::core::flv::properties::{
    agreement_holds, liveness_holds, locked_distribution, validity_holds, LockedScenario,
};
use gencon::prelude::*;
use gencon_algos::AlgorithmSpec;
use gencon_core::{Class1Flv, Class2Flv, Class3Flv, SelectionMsg};
use gencon_core::{Flv, FlvContext};
use gencon_net::Wire;

// ---------- FLV property tests ----------------------------------------------

/// Strategy: a class-3 locked scenario at n = 4..8, b = 1.
fn locked_scenario(n: usize, td: usize, b: usize) -> impl Strategy<Value = LockedScenario<u64>> {
    let honest = n - b;
    let locked_min = td - b;
    (locked_min..=honest)
        .prop_flat_map(move |locked_cnt| {
            let stale_cnt = honest - locked_cnt;
            (
                Just(locked_cnt),
                proptest::collection::vec((2u64..6, 0u64..3), stale_cnt..=stale_cnt),
                proptest::collection::vec(
                    (
                        0u64..9,
                        0u64..20,
                        proptest::collection::vec((0u64..9, 0u64..20), 0..4),
                    ),
                    b..=b,
                ),
            )
        })
        .prop_map(move |(locked_cnt, stale, byz)| LockedScenario {
            locked: 1,
            validated_at: Phase::new(3),
            honest_locked: locked_cnt,
            honest_stale: stale
                .into_iter()
                .map(|(v, ts)| (v, Phase::new(ts)))
                .collect(),
            byzantine: byz
                .into_iter()
                .map(|(v, ts, h)| {
                    (
                        v,
                        Phase::new(ts),
                        h.into_iter().map(|(hv, hp)| (hv, Phase::new(hp))).collect(),
                    )
                })
                .collect(),
        })
}

/// Evaluates `flv` on every subset of the scenario's messages that an
/// adversarial network could deliver, checking validity + agreement.
fn check_flv_on_all_subsets(
    flv: &dyn Flv<u64>,
    ctx: &FlvContext,
    msgs: &[SelectionMsg<u64>],
    locked: u64,
) -> Result<(), TestCaseError> {
    prop_assert!(msgs.len() <= 12, "subset enumeration explodes");
    for mask in 1u32..(1 << msgs.len()) {
        let subset: Vec<&SelectionMsg<u64>> = msgs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, m)| m)
            .collect();
        let out = flv.evaluate(ctx, &subset);
        prop_assert!(validity_holds(&out, &subset), "validity, mask {mask:b}");
        prop_assert!(
            agreement_holds(&out, &locked),
            "agreement, mask {mask:b}, outcome {out:?}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Class 1 (FaB setting n = 6, b = 1, TD = 5): FLV-validity and
    /// FLV-agreement on every subnetwork of every reachable locked state.
    #[test]
    fn class1_flv_agreement(s in locked_scenario(6, 5, 1)) {
        let cfg = Config::byzantine(6, 1).unwrap();
        let ctx = FlvContext { cfg, td: 5, phase: Phase::new(4) };
        let msgs = locked_distribution(&s, false);
        check_flv_on_all_subsets(&Class1Flv::new(), &ctx, &msgs, 1)?;
    }

    /// Class 2 (MQB setting n = 5, b = 1, TD = 4).
    #[test]
    fn class2_flv_agreement(s in locked_scenario(5, 4, 1)) {
        let cfg = Config::byzantine(5, 1).unwrap();
        let ctx = FlvContext { cfg, td: 4, phase: Phase::new(4) };
        let msgs = locked_distribution(&s, false);
        check_flv_on_all_subsets(&Class2Flv::new(), &ctx, &msgs, 1)?;
    }

    /// Class 3 (PBFT setting n = 4, b = 1, TD = 3); stale processes attest
    /// the locked pair (they selected it in the locking phase).
    #[test]
    fn class3_flv_agreement(s in locked_scenario(4, 3, 1)) {
        let cfg = Config::byzantine(4, 1).unwrap();
        let ctx = FlvContext { cfg, td: 3, phase: Phase::new(4) };
        let msgs = locked_distribution(&s, true);
        check_flv_on_all_subsets(&Class3Flv::new(), &ctx, &msgs, 1)?;
    }

    /// §6's randomized-liveness: classes 1 and 2 answer non-null on *any*
    /// n − b − f messages whatever their content — the property that lets
    /// them be transformed into randomized algorithms. (Class 3 cannot:
    /// see `prel_input_can_return_null_unlike_classes_1_and_2` in
    /// gencon-core.)
    #[test]
    fn classes_1_and_2_are_randomizable(
        votes in proptest::collection::vec(0u64..6, 5..=5),
        ts in proptest::collection::vec(0u64..9, 5..=5),
    ) {
        let msgs: Vec<SelectionMsg<u64>> = votes
            .iter()
            .zip(&ts)
            .map(|(&v, &t)| SelectionMsg {
                vote: v,
                ts: Phase::new(t),
                history: gencon_core::History::initial(v),
                selector: ProcessSet::new(),
            })
            .collect();
        // class 1 at FaB parameters: n = 6, b = 1, TD = 5, n−b−f = 5.
        let ctx1 = FlvContext {
            cfg: Config::byzantine(6, 1).unwrap(),
            td: 5,
            phase: Phase::new(3),
        };
        let refs: Vec<&SelectionMsg<u64>> = msgs.iter().collect();
        prop_assert!(liveness_holds::<u64>(&Class1Flv::new().evaluate(&ctx1, &refs)));
        // class 2 at MQB parameters: n = 5, b = 1, TD = 4, n−b−f = 4.
        let ctx2 = FlvContext {
            cfg: Config::byzantine(5, 1).unwrap(),
            td: 4,
            phase: Phase::new(3),
        };
        let refs4: Vec<&SelectionMsg<u64>> = msgs.iter().take(4).collect();
        prop_assert!(liveness_holds::<u64>(&Class2Flv::new().evaluate(&ctx2, &refs4)));
    }

    /// FLV-liveness: messages from all correct processes ⇒ non-null, for
    /// arbitrary (not necessarily locked) correct states.
    #[test]
    fn flv_liveness_on_full_correct_input(
        votes in proptest::collection::vec(0u64..5, 5..=5),
        ts in proptest::collection::vec(0u64..4, 5..=5),
    ) {
        // class 2 at n = 6, b = 1, TD = 4: n − b − f = 5 correct senders.
        let cfg = Config::byzantine(6, 1).unwrap();
        let ctx = FlvContext { cfg, td: 4, phase: Phase::new(5) };
        let msgs: Vec<SelectionMsg<u64>> = votes
            .iter()
            .zip(&ts)
            .map(|(&v, &t)| SelectionMsg {
                vote: v,
                ts: Phase::new(t),
                history: gencon_core::History::initial(v),
                selector: ProcessSet::new(),
            })
            .collect();
        let refs: Vec<&SelectionMsg<u64>> = msgs.iter().collect();
        let out = Class2Flv::new().evaluate(&ctx, &refs);
        prop_assert!(liveness_holds::<u64>(&out));
    }
}

// ---------- whole-execution properties --------------------------------------

fn spec_for(class: ClassId) -> AlgorithmSpec<u64> {
    let cfg = Config::byzantine(class.min_n(0, 1), 1).unwrap();
    AlgorithmSpec {
        name: "generic",
        class,
        model: "Byzantine",
        bound: class.n_bound(),
        params: Params::for_class(class, cfg).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Agreement + validity across random GSTs, seeds and inputs for all
    /// three classes (honest runs under partial synchrony).
    #[test]
    fn classes_agree_under_random_schedules(
        class_idx in 0usize..3,
        gst in 1u64..12,
        seed in 0u64..1000,
        inits in proptest::collection::vec(0u64..6, 6..=6),
    ) {
        let class = ClassId::ALL[class_idx];
        let spec = spec_for(class);
        let n = spec.params.cfg.n();
        let inits = &inits[..n];
        let fleet = spec.spawn(inits).unwrap();
        let mut builder = Simulation::builder(spec.params.cfg);
        for engine in fleet {
            builder = builder.honest(engine);
        }
        let out = builder
            .network(Gst::new(gst, 0.7, seed))
            .build()
            .unwrap()
            .run(gst + 30);
        prop_assert!(out.all_correct_decided);
        prop_assert!(properties::agreement(&out, |d| &d.value));
        prop_assert!(properties::validity(&out, inits, |d| &d.value));
    }

    /// Byzantine equivocation cannot break agreement, for random split
    /// values and GSTs (PBFT setting).
    #[test]
    fn pbft_agreement_with_random_equivocator(
        v0 in 0u64..50,
        v1 in 0u64..50,
        gst in 1u64..10,
        seed in 0u64..500,
    ) {
        let spec = gencon_algos::pbft::<u64>(4, 1).unwrap();
        let byz = ProcessId::new(3);
        let ctx = gencon::adversary::AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
        let fleet = spec.spawn(&[1, 2, 3, 4]).unwrap();
        let mut builder = Simulation::builder(spec.params.cfg);
        for engine in fleet {
            if gencon::rounds::RoundProcess::id(&engine) != byz {
                builder = builder.honest(engine);
            }
        }
        let out = builder
            .byzantine(gencon::adversary::Equivocator::new(byz, ctx, v0, v1))
            .network(Gst::new(gst, 0.6, seed))
            .build()
            .unwrap()
            .run(gst + 40);
        prop_assert!(properties::agreement(&out, |d| &d.value));
        prop_assert!(out.all_correct_decided);
    }

    /// Wire codec round-trip for arbitrary consensus messages.
    #[test]
    fn wire_roundtrip_consensus_msgs(
        vote in any::<u64>(),
        ts in 0u64..100,
        phase in 1u64..100,
        hist in proptest::collection::vec((any::<u64>(), 0u64..50), 0..8),
        selector_bits in proptest::collection::vec(0usize..16, 0..8),
        kind in 0u8..3,
    ) {
        let history: gencon_core::History<u64> = hist
            .into_iter()
            .map(|(v, p)| (v, Phase::new(p)))
            .collect();
        let selector: ProcessSet = selector_bits.into_iter().map(ProcessId::new).collect();
        let msg = match kind {
            0 => gencon_core::ConsensusMsg::Selection(
                Phase::new(phase),
                gencon_core::SelectionMsg { vote, ts: Phase::new(ts), history, selector },
            ),
            1 => gencon_core::ConsensusMsg::Validation(
                Phase::new(phase),
                gencon_core::ValidationMsg { select: Some(vote), validators: selector },
            ),
            _ => gencon_core::ConsensusMsg::Decision(
                Phase::new(phase),
                gencon_core::DecisionMsg { vote, ts: Phase::new(ts) },
            ),
        };
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let mut buf = bytes;
        let back = gencon_core::ConsensusMsg::<u64>::decode(&mut buf).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// SHA-256 incremental/one-shot equivalence on arbitrary inputs and
    /// split points.
    #[test]
    fn sha256_incremental_equivalence(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let oneshot = gencon::crypto::sha256(&data);
        let mut h = gencon::crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Authenticators verify iff sender, message and receiver line up.
    #[test]
    fn authenticator_soundness(
        n in 2usize..8,
        sender in 0usize..8,
        receiver in 0usize..8,
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        tweak in any::<bool>(),
    ) {
        let sender = sender % n;
        let receiver = receiver % n;
        let stores = gencon::crypto::KeyStore::dealer(n, 1234);
        let auth = stores[sender].authenticate(&msg);
        let mut checked = msg.clone();
        if tweak {
            checked.push(0xff);
        }
        let ok = stores[receiver].verify(ProcessId::new(sender), &checked, &auth);
        prop_assert_eq!(ok, !tweak);
    }
}
