//! Integration: the §5/§6 catalog end to end, and the `Pcons` stacks
//! composed under real engines.

use gencon::prelude::*;
use gencon_algos as algos;
use gencon_crypto::KeyStore;
use gencon_pcons::{PconsMode, PconsStack};

fn run_honest<S>(spec: &algos::AlgorithmSpec<u64>, inits: &[u64], net: S) -> Outcome<Decision<u64>>
where
    S: NetworkModel + 'static,
{
    let fleet = spec.spawn(inits).unwrap();
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        builder = builder.honest(engine);
    }
    builder.network(net).build().unwrap().run(600)
}

#[test]
fn one_third_rule_decides_and_matches_bounds() {
    for (n, f) in [(4, 1), (7, 2), (10, 3)] {
        let spec = algos::one_third_rule::<u64>(n, f).unwrap();
        let inits: Vec<u64> = (0..n as u64).collect();
        let out = run_honest(&spec, &inits, AlwaysGood);
        assert!(out.all_correct_decided);
        assert_eq!(
            out.last_decision_round().unwrap().number(),
            2,
            "2-round phase"
        );
    }
    assert!(
        algos::one_third_rule::<u64>(6, 2).is_err(),
        "n > 3f enforced"
    );
}

#[test]
fn paxos_with_leader_and_rotation() {
    let stable = algos::paxos::<u64>(5, 2, ProcessId::new(2)).unwrap();
    let out = run_honest(&stable, &[5, 4, 3, 2, 1], AlwaysGood);
    assert!(out.all_correct_decided);
    assert!(properties::agreement(&out, |d| &d.value));

    // Rotating variant survives the crash of the first two coordinators.
    let rotating = algos::paxos_rotating::<u64>(5, 2).unwrap();
    let crashes = CrashPlan::none()
        .with(ProcessId::new(0), CrashAt::silent(Round::new(1)))
        .with(ProcessId::new(1), CrashAt::silent(Round::new(1)));
    let fleet = rotating.spawn(&[5, 4, 3, 2, 1]).unwrap();
    let mut builder = Simulation::builder(rotating.params.cfg);
    for engine in fleet {
        builder = builder.honest(engine);
    }
    let out2 = builder.crashes(crashes).build().unwrap().run(40);
    assert!(
        out2.all_correct_decided,
        "progress under coordinator rotation"
    );
    assert!(properties::agreement(&out2, |d| &d.value));
}

#[test]
fn chandra_toueg_decides_with_minority_crashes() {
    let spec = algos::chandra_toueg::<u64>(5, 2).unwrap();
    let crashes = CrashPlan::none()
        .with(ProcessId::new(3), CrashAt::mid_send(Round::new(2), 2))
        .with(ProcessId::new(4), CrashAt::silent(Round::new(4)));
    let fleet = spec.spawn(&[9, 8, 7, 6, 5]).unwrap();
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        builder = builder.honest(engine);
    }
    let out = builder.crashes(crashes).build().unwrap().run(60);
    assert!(out.all_correct_decided);
    assert!(properties::agreement(&out, |d| &d.value));
}

#[test]
fn mqb_byzantine_equivocation_defeated() {
    // The paper's new algorithm at its minimum, with the worst adversary.
    let spec = algos::mqb::<u64>(5, 1).unwrap();
    let ctx = gencon::adversary::AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
    let byz = ProcessId::new(4);
    let fleet = spec.spawn(&[1, 1, 2, 2, 3]).unwrap();
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        if gencon::rounds::RoundProcess::id(&engine) != byz {
            builder = builder.honest(engine);
        }
    }
    let out = builder
        .byzantine(gencon::adversary::Equivocator::new(byz, ctx, 10, 20))
        .network(Gst::new(4, 0.6, 3))
        .build()
        .unwrap()
        .run(60);
    assert!(out.all_correct_decided);
    assert!(properties::agreement(&out, |d| &d.value));
}

#[test]
fn ben_or_terminates_across_seeds() {
    for seed in 0..8u64 {
        let spec = algos::ben_or_benign::<u64>(5, 2, [0, 1], seed).unwrap();
        let inits = [0u64, 1, 0, 1, 0];
        let keep = spec.params.cfg.correct_minimum();
        let out = run_honest(&spec, &inits, RandomSubset::new(keep, 77 + seed));
        assert!(out.all_correct_decided, "seed {seed}");
        assert!(properties::agreement(&out, |d| &d.value), "seed {seed}");
        // binary validity: the decision is someone's input
        assert!(properties::validity(&out, &inits, |d| &d.value));
    }
}

// ---- Pcons stacks under real engines --------------------------------------

fn run_stacked(spec: &algos::AlgorithmSpec<u64>, mode: PconsMode) -> Outcome<Decision<u64>> {
    let cfg = spec.params.cfg;
    let n = cfg.n();
    let stores = KeyStore::dealer(n, 5);
    let inits: Vec<u64> = (0..n as u64).collect();
    let mut builder = Simulation::builder(cfg);
    for (i, engine) in spec.spawn(&inits).unwrap().into_iter().enumerate() {
        match mode {
            PconsMode::CoordinatedAuth => {
                builder = builder.honest(PconsStack::coordinated_auth(
                    engine,
                    stores[i].clone(),
                    cfg.b(),
                ));
            }
            PconsMode::EchoBroadcast => {
                builder = builder.honest(PconsStack::echo_broadcast(engine, n, cfg.b()));
            }
        }
    }
    builder.enforce_predicates(false).build().unwrap().run(60)
}

#[test]
fn pbft_decides_over_both_pcons_stacks() {
    let spec = algos::pbft::<u64>(4, 1).unwrap();
    for mode in [PconsMode::CoordinatedAuth, PconsMode::EchoBroadcast] {
        let out = run_stacked(&spec, mode);
        assert!(out.all_correct_decided, "{mode:?}");
        assert!(properties::agreement(&out, |d| &d.value), "{mode:?}");
        // Selection rounds cost extra micro-rounds.
        assert_eq!(
            out.last_decision_round().unwrap().number(),
            3 + (mode.micro_rounds() as u64 - 1),
            "{mode:?}"
        );
    }
}

#[test]
fn mqb_decides_over_both_pcons_stacks() {
    let spec = algos::mqb::<u64>(5, 1).unwrap();
    for mode in [PconsMode::CoordinatedAuth, PconsMode::EchoBroadcast] {
        let out = run_stacked(&spec, mode);
        assert!(out.all_correct_decided, "{mode:?}");
        assert!(properties::agreement(&out, |d| &d.value), "{mode:?}");
    }
}

#[test]
fn catalog_metadata_is_exhaustive() {
    let cat = algos::catalog();
    let names: Vec<_> = cat.iter().map(|e| e.name).collect();
    for expected in [
        "OneThirdRule",
        "FaB Paxos",
        "Paxos",
        "CT",
        "MQB",
        "PBFT",
        "Ben-Or",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}
