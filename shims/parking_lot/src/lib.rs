//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this wraps
//! `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly and a poisoned lock (a thread
//! panicked while holding it) is recovered rather than propagated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
