//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the minimal subset of the `rand 0.8` API it actually uses:
//! [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`]
//! (`seed_from_u64`) and [`rngs::StdRng`]. The generator is a
//! deterministic splitmix64/xoshiro-style PRNG — plenty for simulation
//! schedules and randomized consensus coins, not for cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range of values that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Samples one value uniformly at random from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::draw(self) < p
    }

    /// Draws a uniformly random value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64-seeded
    /// xorshift128+; not cryptographically secure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s0 = splitmix64(&mut state);
            let s1 = splitmix64(&mut state);
            StdRng { s0, s1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift128+
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "p=0.5 gave {hits}/10000");
    }
}
