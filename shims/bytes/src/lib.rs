//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the minimal subset of the `bytes 1.x` API it actually uses:
//! [`Bytes`] (cheaply cloneable, consumable from the front), [`BytesMut`]
//! (append-only builder) and the [`Buf`]/[`BufMut`] traits with the
//! little-endian accessors the wire codec calls. Cheap cloning is backed
//! by `Arc<[u8]>` rather than the real crate's vtable machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer, consumable from the front.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Builds a buffer from a static byte slice. Unlike the real crate
    /// this copies once into shared storage; clones stay cheap.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Bytes remaining (the real crate exposes this via [`Buf`] too).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-buffer over `range` (relative to the current front).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// An append-only byte buffer builder.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read access to a byte buffer, consuming from the front.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Consumes and returns one byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes and returns a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes and returns a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }
}

/// Write access to a byte buffer, appending at the back.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(u64::MAX - 1);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.to_vec(), b"xyz");
    }

    #[test]
    fn split_and_slice() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(s.to_vec(), vec![4, 5]);
        assert_eq!(b.len(), 3, "slice does not consume");
    }

    #[test]
    fn clones_share_storage_but_not_cursor() {
        let mut a = Bytes::from_static(b"abcd");
        let c = a.clone();
        a.get_u8();
        assert_eq!(a.len(), 3);
        assert_eq!(c.len(), 4);
    }
}
