//! The harness must actually fail failing properties — a shim that green-
//! lights everything would silently hollow out every property suite.

use proptest::prelude::*;

proptest! {
    // No #[test] attribute: the macro emits these as plain fns we can
    // invoke under catch_unwind below.
    fn always_false(x in 0u64..5) {
        prop_assert!(x > 100, "x = {x} is never > 100");
    }

    fn fails_via_question_mark(x in 0u64..5) {
        reject_all(x)?;
    }

    fn always_true(x in 0u64..5) {
        prop_assert!(x < 5);
    }

    fn precondition_filters_odds(x in 0u64..1000) {
        if x % 2 == 1 {
            return Err(TestCaseError::reject("odd"));
        }
        prop_assert_eq!(x % 2, 0);
    }

    fn rejects_everything(x in 0u64..5) {
        if x < 5 {
            return Err(TestCaseError::reject("nothing is acceptable"));
        }
    }
}

fn reject_all(x: u64) -> Result<(), TestCaseError> {
    prop_assert_eq!(x, u64::MAX);
    Ok(())
}

#[test]
fn failing_property_panics_with_case_number() {
    let err = std::panic::catch_unwind(always_false).expect_err("must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("always_false") && msg.contains("case"),
        "panic should name the property and case: {msg}"
    );
    assert!(msg.contains("never > 100"), "custom message lost: {msg}");
}

#[test]
fn propagated_error_fails_too() {
    assert!(std::panic::catch_unwind(fails_via_question_mark).is_err());
}

#[test]
fn passing_property_does_not_panic() {
    always_true();
}

#[test]
fn rejected_cases_are_retried_not_counted_as_passes() {
    // ~half the inputs are rejected; the retry loop must still complete
    // the full quota of passing cases without tripping the attempt cap.
    precondition_filters_odds();
}

#[test]
fn rejecting_every_input_fails_the_property() {
    let err = std::panic::catch_unwind(rejects_everything).expect_err("must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("rejected too many inputs"),
        "expected rejection-cap panic, got: {msg}"
    );
}
