//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this implements
//! the subset of the proptest API this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`arbitrary::any`], `Just`,
//! the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!` and
//! [`test_runner::ProptestConfig`]. Cases are generated from a
//! deterministic per-test PRNG; there is **no shrinking** — a failure
//! reports the seed index, from which `TestRng::for_case` regenerates
//! the failing inputs exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration, errors and the deterministic generator.

    /// How many cases each `proptest!` test runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The case was rejected by a precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection carrying `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic splitmix64-based generator, seeded per test + case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one `(test name, case index)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name, mixed with case.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: traits, types and macros.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts `cond`, returning `TestCaseError::Fail` instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts `left == right`, returning `TestCaseError::Fail` on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts `left != right`, returning `TestCaseError::Fail` on equality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Rejected cases are retried with fresh inputs (distinct seed
            // per attempt), so preconditions cannot hollow out coverage;
            // too many rejections is itself a failure, as in real proptest.
            let max_attempts = config.cases.saturating_mul(16).max(16);
            let mut passed: u32 = 0;
            let mut attempt: u32 = 0;
            while passed < config.cases {
                if attempt >= max_attempts {
                    panic!(
                        "property `{}` rejected too many inputs: {} of {} attempts \
                         passed before the {}-attempt cap",
                        stringify!($name),
                        passed,
                        attempt,
                        max_attempts,
                    );
                }
                let seed_index = attempt;
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    seed_index,
                );
                attempt += 1;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    // The seed index (not the pass count) is what
                    // TestRng::for_case needs to regenerate the inputs.
                    ::std::result::Result::Err(err) => panic!(
                        "property `{}` failed at seed index {} (case {}/{}): {}",
                        stringify!($name),
                        seed_index,
                        passed,
                        config.cases,
                        err,
                    ),
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let x = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (5usize..=5).generate(&mut rng);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("vecs", 1);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        let mut rng = TestRng::for_case("flat", 2);
        let strat =
            (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..10, n..=n)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a: u64 = any::<u64>().generate(&mut TestRng::for_case("t", 3));
        let b: u64 = any::<u64>().generate(&mut TestRng::for_case("t", 3));
        let c: u64 = any::<u64>().generate(&mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, `?` works, prop_assert returns Err.
        #[test]
        fn macro_smoke(x in 0u64..100, v in crate::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            helper(x)?;
        }
    }

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x != u64::MAX);
        Ok(())
    }
}
