//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this implements
//! the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`] and `Bencher::iter` — over a simple
//! wall-clock sampler. It reports median / mean / min per iteration; no
//! statistical outlier analysis, plots or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one duration sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost so each sample
        // batch is sized to be measurable on a coarse clock.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        // Aim each sample at ~1/sample_size of the measurement budget.
        let budget_per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
        }
    }
}

/// Configuration plus collected results; the harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = id.into();
        run_one(self, &name, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput of subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `f` as a benchmark named `id` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    c: &mut Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::with_capacity(c.sample_size);
    let mut b = Bencher {
        samples: &mut samples,
        sample_size: c.sample_size,
        measurement_time: c.measurement_time,
        warm_up_time: c.warm_up_time,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{name:<40} (no samples collected)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let gib_s = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib_s:>8.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let elem_s = n as f64 / median.as_secs_f64();
            format!("  {elem_s:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} median {:>12} mean {:>12} min {:>12}{rate}",
        fmt_dur(median),
        fmt_dur(mean),
        fmt_dur(min),
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a bare
            // `--help`-style filter API is not implemented in this stand-in.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke", |b| b.iter(|| black_box(3u64) * 7));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("inner", |b| b.iter(|| black_box([0u8; 64])));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(vec![0u8; n]))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
