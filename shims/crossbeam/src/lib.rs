//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this exposes
//! `crossbeam::channel`'s `unbounded`/`bounded`/`Sender`/`Receiver`
//! surface backed by `std::sync::mpsc`. Multi-consumer features are not
//! provided — this workspace uses one receiver per channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (single consumer in this stand-in).
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half of a channel. Cloneable across threads.
    pub struct Sender<T> {
        inner: Tx<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: Tx::Unbounded(tx),
                depth: Arc::clone(&depth),
            },
            Receiver { inner: rx, depth },
        )
    }

    /// Creates a channel holding at most `cap` queued messages; `send`
    /// blocks (and `try_send` returns `Full`) once the cap is reached.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: Tx::Bounded(tx),
                depth: Arc::clone(&depth),
            },
            Receiver { inner: rx, depth },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full;
        /// fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let sent = match &self.inner {
                Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            };
            if sent.is_ok() {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            sent
        }

        /// Sends without blocking; `Full` if a bounded channel is at cap.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let sent = match &self.inner {
                Tx::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            };
            if sent.is_ok() {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            sent
        }

        /// Messages currently queued (approximate under concurrency).
        #[must_use]
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        fn took(&self) {
            // Saturating: a racing send may not have bumped the count yet.
            let _ = self
                .depth
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                    Some(d.saturating_sub(1))
                });
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            let got = self
                .inner
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected);
            if got.is_ok() {
                self.took();
            }
            got
        }

        /// Waits at most `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let got = self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            });
            if got.is_ok() {
                self.took();
            }
            got
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let got = self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            });
            if got.is_ok() {
                self.took();
            }
            got
        }

        /// Messages currently queued (approximate under concurrency).
        #[must_use]
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(42));
        }

        #[test]
        fn timeout_on_empty() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send("from thread").unwrap())
                .join()
                .unwrap();
            tx.send("from main").unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec!["from main", "from thread"]);
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn bounded_send_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the receiver drains
                "sent"
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(t.join().unwrap(), "sent");
        }

        #[test]
        fn depth_tracks_queue_occupancy() {
            let (tx, rx) = bounded(8);
            assert!(tx.is_empty() && rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.len(), 2);
            rx.recv().unwrap();
            assert_eq!(rx.len(), 1);
            rx.recv().unwrap();
            assert!(rx.is_empty());
        }

        #[test]
        fn try_send_on_unbounded_never_fills() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.try_send(i).unwrap();
            }
            assert_eq!(rx.len(), 100);
            drop(rx);
            assert_eq!(tx.try_send(0), Err(TrySendError::Disconnected(0)));
        }
    }
}
