//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this exposes
//! `crossbeam::channel`'s `unbounded`/`Sender`/`Receiver` surface backed
//! by `std::sync::mpsc`. Multi-consumer features are not provided — this
//! workspace uses one receiver per channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (single consumer in this stand-in).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel. Cloneable across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Waits at most `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(42));
        }

        #[test]
        fn timeout_on_empty() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send("from thread").unwrap())
                .join()
                .unwrap();
            tx.send("from main").unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec!["from main", "from thread"]);
        }
    }
}
