//! State-machine replication: the workload the paper's introduction
//! motivates. A replicated key-value store orders client commands through a
//! pipelined sequence of consensus instances (`gencon-smr`), with a
//! Byzantine replica in the mix (MQB, n = 5, b = 1).
//!
//! §5.3: "Paxos and PBFT are algorithms that solve a sequence of instances
//! of consensus (state machine replication)." — this example composes the
//! single-instance core back into exactly that.
//!
//! ```sh
//! cargo run --example state_machine_replication
//! ```

use std::collections::BTreeMap;

use gencon::prelude::*;
use gencon::smr::Replica;

/// A client command, encoded as a `Value` (ordered, hashable).
type Command = (String, u64); // SET key = value

/// One replica's state machine.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
struct KvStore {
    data: BTreeMap<String, u64>,
}

impl KvStore {
    fn apply(&mut self, cmd: &Command) {
        self.data.insert(cmd.0.clone(), cmd.1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    let commits = 6;
    let spec = gencon::algos::mqb::<Command>(n, 1)?;
    println!(
        "replicating over {} ({}, {}), window 3, {commits} commits\n",
        spec.name, spec.class, spec.bound
    );

    // Client workload: each replica has its own queue of pending commands.
    let noop = ("noop".to_string(), 0);
    let mut builder = Simulation::builder(spec.params.cfg);
    let byz = ProcessId::new(n - 1);
    for r in 0..n - 1 {
        let queue: Vec<Command> = (0..commits)
            .map(|s| (format!("key{}", (r + s) % 3), (r * 10 + s) as u64))
            .collect();
        let replica = Replica::new(
            ProcessId::new(r),
            spec.params.clone(),
            queue,
            noop.clone(),
            commits,
        )?
        .with_window(3);
        builder = builder.honest(replica);
    }

    // The 5th replica is Byzantine-silent (it contributes nothing; the
    // n > 4b quorums absorb it). Its slot messages simply never arrive.
    let mut sim = builder
        .byzantine(gencon::adversary::Mute::<gencon::smr::SmrMsg<Command>>::new(byz))
        .build()?;
    let outcome = sim.run(200);

    assert!(
        outcome.all_correct_decided,
        "every replica reached the target"
    );
    assert!(properties::agreement(&outcome, |log| log), "identical logs");

    let log = outcome
        .honest_decisions()
        .next()
        .expect("committed log")
        .clone();
    println!("committed log ({} entries):", log.len());
    let mut store = KvStore::default();
    for (i, cmd) in log.iter().enumerate() {
        println!("  slot {i}: SET {} = {}", cmd.0, cmd.1);
        store.apply(cmd);
    }
    println!("\nfinal replicated store: {:?}", store.data);
    println!(
        "all {} honest replicas identical ✓ ({} rounds for {} slots — pipelined)",
        n - 1,
        outcome.rounds_executed,
        log.len()
    );
    Ok(())
}
