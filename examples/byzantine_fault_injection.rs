//! Byzantine fault injection: throw every adversary in the arsenal at the
//! catalog's Byzantine algorithms and watch safety hold.
//!
//! For each of FaB Paxos (class 1), MQB (class 2) and PBFT (class 3), runs
//! a silent process, an equivocator, a timestamp liar, a history forger and
//! a split-voter — at the algorithm's minimal system size, under partial
//! synchrony with a GST (so bad periods give the adversary extra room).
//!
//! ```sh
//! cargo run --example byzantine_fault_injection
//! ```

use gencon::adversary::{AdversaryCtx, Equivocator, FreshLiar, HistoryForger, Silent, SplitVoter};
use gencon::prelude::*;
use gencon::rounds::Adversary;

/// One named Byzantine strategy under test.
type BoxedAdversary = Box<dyn Adversary<Msg = gencon::core::ConsensusMsg<u64>>>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = [
        gencon::algos::fab_paxos::<u64>(6, 1)?,
        gencon::algos::mqb::<u64>(5, 1)?,
        gencon::algos::pbft::<u64>(4, 1)?,
    ];

    for spec in &specs {
        let n = spec.params.cfg.n();
        let byz = ProcessId::new(n - 1);
        let ctx = AdversaryCtx::new(spec.params.cfg, spec.params.schedule());
        println!("## {} (n = {}, {})", spec.name, n, spec.bound);

        let adversaries: Vec<(&str, BoxedAdversary)> = vec![
            ("silent", Box::new(Silent::<u64>::new(byz))),
            (
                "equivocator",
                Box::new(Equivocator::new(byz, ctx.clone(), 66, 99)),
            ),
            ("fresh-liar", Box::new(FreshLiar::new(byz, ctx.clone(), 66))),
            (
                "history-forger",
                Box::new(HistoryForger::new(byz, ctx.clone(), 66, vec![1, 2])),
            ),
            (
                "split-voter",
                Box::new(SplitVoter::new(byz, ctx.clone(), 66, 99)),
            ),
        ];

        for (name, adv) in adversaries {
            let inits: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
            let fleet = spec.spawn(&inits)?;
            let mut builder = Simulation::builder(spec.params.cfg);
            for engine in fleet {
                if gencon::rounds::RoundProcess::id(&engine) != byz {
                    builder = builder.honest(engine);
                }
            }
            // Bad network until round 6 (70% loss), good afterwards.
            let mut sim = builder
                .byzantine(adv)
                .network(Gst::new(6, 0.7, 0xbad))
                .build()?;
            let outcome = sim.run(60);

            let agreement = properties::agreement(&outcome, |d| &d.value);
            let decided = outcome.all_correct_decided;
            println!(
                "  vs {name:<15} agreement: {}  termination: {}  (decided @ {})",
                if agreement { "✓" } else { "VIOLATED" },
                if decided { "✓" } else { "pending" },
                outcome
                    .last_decision_round()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "—".into()),
            );
            assert!(agreement, "{}: agreement violated by {name}", spec.name);
            assert!(decided, "{}: {name} blocked termination", spec.name);
        }
        println!();
    }
    println!("all Byzantine algorithms held agreement and terminated after GST ✓");
    Ok(())
}
