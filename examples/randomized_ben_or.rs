//! Randomized binary consensus (§6): Ben-Or without any synchrony
//! assumption. The network delivers only `n − b − f` random messages per
//! round, forever — no good period ever arrives — and the algorithm still
//! terminates with probability 1 thanks to the coin at line 11.
//!
//! ```sh
//! cargo run --example randomized_ben_or
//! ```

use gencon::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ben-Or (benign, n = 5, f = 2): binary consensus under Prel only\n");

    for seed in 0..5u64 {
        let spec = gencon::algos::ben_or_benign::<u64>(5, 2, [0, 1], seed)?;
        // Worst-case split input: 0,1,0,1,0.
        let inits: Vec<u64> = (0..5).map(|i| i % 2).collect();
        let fleet = spec.spawn(&inits)?;

        let mut builder = Simulation::builder(spec.params.cfg);
        for engine in fleet {
            builder = builder.honest(engine);
        }
        let keep = spec.params.cfg.correct_minimum();
        let mut sim = builder
            .network(RandomSubset::new(keep, 0x0c01 + seed))
            .build()?;
        let outcome = sim.run(2000);

        assert!(properties::agreement(&outcome, |d| &d.value));
        assert!(outcome.all_correct_decided, "probability-1 termination");
        let d = outcome.honest_decisions().next().unwrap();
        println!(
            "seed {seed}: decided {} after {} rounds ({} phases of coin flips)",
            d.value,
            outcome.last_decision_round().unwrap().number(),
            d.phase
        );
    }

    println!("\nByzantine Ben-Or (n = 5, b = 1) with a silent Byzantine process:\n");
    for seed in 0..3u64 {
        let spec = gencon::algos::ben_or_byzantine::<u64>(5, 1, [0, 1], seed)?;
        let inits: Vec<u64> = (0..5).map(|i| i % 2).collect();
        let fleet = spec.spawn(&inits)?;
        let byz = ProcessId::new(4);
        let mut builder = Simulation::builder(spec.params.cfg);
        for engine in fleet {
            if gencon::rounds::RoundProcess::id(&engine) != byz {
                builder = builder.honest(engine);
            }
        }
        let keep = spec.params.cfg.correct_minimum();
        let mut sim = builder
            .byzantine(gencon::adversary::Silent::<u64>::new(byz))
            .network(RandomSubset::new(keep, 0xd0d0 + seed))
            .build()?;
        let outcome = sim.run(4000);
        assert!(properties::agreement(&outcome, |d| &d.value));
        assert!(outcome.all_correct_decided);
        let d = outcome.honest_decisions().next().unwrap();
        println!(
            "seed {seed}: decided {} after {} rounds",
            d.value,
            outcome.last_decision_round().unwrap().number()
        );
    }

    println!("\nno synchrony, no failure detector — just coins ✓");
    Ok(())
}
