//! The paper's classification, live: the same decision problem solved by
//! one algorithm from each class, comparing resilience (n), rounds per
//! phase and transmitted state — the trade-off triangle of Table 1.
//!
//! ```sh
//! cargo run --example class_comparison
//! ```

use gencon::prelude::*;
use gencon_net::Wire;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One Byzantine fault to tolerate. How much does each class pay?
    println!("tolerating b = 1 Byzantine process:\n");
    println!(
        "{:<14} {:>4} {:>14} {:>14} {:>18}",
        "algorithm", "n", "rounds/phase", "decided@round", "sel-msg bytes"
    );

    let specs = [
        gencon::algos::fab_paxos::<u64>(6, 1)?, // class 1: biggest n, fastest phases
        gencon::algos::mqb::<u64>(5, 1)?,       // class 2: middle ground (the new algorithm)
        gencon::algos::pbft::<u64>(4, 1)?,      // class 3: smallest n, biggest state
    ];

    for spec in &specs {
        let n = spec.params.cfg.n();
        let inits: Vec<u64> = (0..n as u64).collect();
        let fleet = spec.spawn(&inits)?;
        let mut builder = Simulation::builder(spec.params.cfg);
        for engine in fleet {
            builder = builder.honest(engine);
        }
        let mut sim = builder.build()?;
        let outcome = sim.run(20);
        assert!(outcome.all_correct_decided);
        assert!(properties::agreement(&outcome, |d| &d.value));

        // A representative selection message after a few phases, to show
        // the state growth of Table 1's "process state" column.
        let mut history = gencon::core::History::initial(1u64);
        if spec.params.profile.sends_history() {
            for p in 1..=3u64 {
                history.record(1, Phase::new(p));
            }
        }
        let msg = gencon::core::SelectionMsg {
            vote: 1u64,
            ts: if spec.params.profile.sends_ts() {
                Phase::new(3)
            } else {
                Phase::ZERO
            },
            history: if spec.params.profile.sends_history() {
                history
            } else {
                gencon::core::History::new()
            },
            selector: ProcessSet::new(),
        };

        println!(
            "{:<14} {:>4} {:>14} {:>14} {:>18}",
            spec.name,
            n,
            spec.class.rounds_per_phase(),
            outcome.last_decision_round().unwrap().to_string(),
            format!("{} B", msg.encoded_len()),
        );
    }

    println!();
    println!("the Table 1 trade-off:");
    println!("  class 1 (FaB):  n > 5b — most replicas, 2-round phases, vote-only state");
    println!("  class 2 (MQB):  n > 4b — the paper's new middle point, no history log");
    println!("  class 3 (PBFT): n > 3b — fewest replicas, pays with unbounded history");
    Ok(())
}
