//! Quickstart: run one Byzantine consensus instance (PBFT parameters,
//! n = 4, b = 1) in the deterministic simulator and print the decision.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gencon::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick an algorithm from the catalog. PBFT: n = 3b + 1.
    let spec = gencon::algos::pbft::<u64>(4, 1)?;
    println!(
        "algorithm: {} ({}, bound {})",
        spec.name, spec.class, spec.bound
    );

    // 2. Spawn one engine per process with its initial value.
    let fleet = spec.spawn(&[42, 42, 7, 42])?;

    // 3. Drive them with the lock-step simulator over a synchronous network.
    let mut builder = Simulation::builder(spec.params.cfg);
    for engine in fleet {
        builder = builder.honest(engine);
    }
    let mut sim = builder.build()?;
    let outcome = sim.run(30);

    // 4. Inspect the outcome.
    for (i, output) in outcome.outputs.iter().enumerate() {
        match output {
            Some(d) => println!(
                "p{i} decided {} in {} (round {})",
                d.value, d.phase, d.round
            ),
            None => println!("p{i} did not decide"),
        }
    }
    assert!(properties::agreement(&outcome, |d| &d.value));
    assert!(properties::termination(&outcome));
    println!(
        "agreement ✓  termination ✓  ({} rounds, {} messages)",
        outcome.rounds_executed, outcome.messages_sent
    );
    Ok(())
}
