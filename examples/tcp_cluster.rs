//! A real deployment: four OS threads, four TCP endpoints on localhost,
//! one PBFT-parameterized consensus instance — no simulator anywhere.
//!
//! Each node runs the threaded round runtime (`gencon_net::run_node`):
//! closed rounds with wall-clock deadlines over identity-pinned TCP
//! connections. Timely rounds are the paper's good periods.
//!
//! ```sh
//! cargo run --example tcp_cluster
//! ```

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use gencon::prelude::*;
use gencon_net::{run_node, NodeConfig, TcpTransport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let spec = gencon::algos::pbft::<u64>(n, 1)?;

    // Discover four free localhost ports.
    let probes: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<SocketAddr> = probes
        .iter()
        .map(|l| l.local_addr())
        .collect::<Result<_, _>>()?;
    drop(probes);
    println!("cluster addresses: {addrs:?}");

    let fleet = spec.spawn(&[11, 22, 33, 44])?;
    let cfg = NodeConfig {
        round_timeout: Duration::from_millis(250),
        max_rounds: 40,
        linger_rounds: 2,
    };

    let handles: Vec<_> = fleet
        .into_iter()
        .enumerate()
        .map(|(i, engine)| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let transport =
                    TcpTransport::connect_mesh(ProcessId::new(i), &addrs).expect("mesh connects");
                run_node(engine, transport, cfg)
            })
        })
        .collect();

    let decisions: Vec<Option<Decision<u64>>> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();

    for (i, d) in decisions.iter().enumerate() {
        match d {
            Some(d) => println!("node {i}: decided {} in {} ({})", d.value, d.phase, d.round),
            None => println!("node {i}: no decision"),
        }
    }
    let first = decisions[0].as_ref().expect("node 0 decides").value;
    assert!(decisions
        .iter()
        .all(|d| d.as_ref().map(|d| d.value) == Some(first)));
    println!("\n4-node TCP cluster agreed on {first} ✓");
    Ok(())
}
