//! `gencon` — Generic Construction of Consensus Algorithms for Benign and
//! Byzantine Faults.
//!
//! A full Rust implementation of Rütti, Milosevic & Schiper (DSN 2010):
//! one generic consensus engine, four parameters (`FLV`, `Selector`, `TD`,
//! `FLAG`), three algorithm classes, and the complete catalog of
//! instantiations — OneThirdRule, FaB Paxos, Paxos, Chandra–Toueg, PBFT,
//! the paper's new MQB, and randomized Ben-Or — plus every substrate they
//! stand on: the closed-round model, communication predicates with real
//! `Pcons` implementations, a deterministic fault-injecting simulator, a
//! threaded TCP runtime, and a networked multi-slot SMR service
//! (`gencon-server`/`gencon-client`) with a real client protocol and a
//! pluggable application layer (`gencon-app`: kv store, bank, plain log)
//! whose folded state — not the command history — is the unit of
//! durability and chunked state transfer.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names and offers a [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use gencon::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's new algorithm, MQB: Byzantine consensus with n > 4b.
//! let spec = gencon::algos::mqb::<u64>(5, 1)?;
//! let fleet = spec.spawn(&[3, 1, 4, 1, 5])?;
//!
//! // Simulate a synchronous run with one Byzantine-silent process.
//! let cfg = spec.params.cfg;
//! let mut sim = Simulation::builder(cfg);
//! let mut fleet = fleet.into_iter();
//! for _ in 0..4 {
//!     sim = sim.honest(fleet.next().unwrap());
//! }
//! let mut sim = sim
//!     .byzantine(gencon::adversary::Silent::<u64>::new(ProcessId::new(4)))
//!     .build()?;
//! let outcome = sim.run(30);
//! assert!(outcome.all_correct_decided);
//! assert!(properties::agreement(&outcome, |d| &d.value));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gencon_adversary as adversary;
pub use gencon_algos as algos;
pub use gencon_app as app;
pub use gencon_core as core;
pub use gencon_crypto as crypto;
pub use gencon_load as load;
pub use gencon_metrics as metrics;
pub use gencon_net as net;
pub use gencon_pcons as pcons;
pub use gencon_rounds as rounds;
pub use gencon_server as server;
pub use gencon_sim as sim;
pub use gencon_smr as smr;
pub use gencon_store as store;
pub use gencon_types as types;

/// The most common imports, in one line.
pub mod prelude {
    pub use gencon_core::{
        ChoicePolicy, ClassId, Decision, Flag, Flv, FlvOutcome, GenericConsensus, LivenessMode,
        Params, Selector, StateProfile,
    };
    pub use gencon_rounds::{Adversary, HeardOf, Outgoing, Predicate, RoundProcess};
    pub use gencon_sim::{
        properties, AlwaysGood, CrashAt, CrashPlan, DeliveryPlan, Gst, NetworkModel, Outcome,
        RandomSubset, Scripted, SimBuilder, SimError, Simulation,
    };
    pub use gencon_types::{Batch, Config, Phase, ProcessId, ProcessSet, Round, RoundKind, Value};
}
