//! Observability must be (near) free: the flight recorder rides the hot
//! path of every stage, so an attached-but-idle-to-drain recorder must
//! not cost measurable throughput.
//!
//! Two guards:
//!
//! * a traced durable run actually yields joinable per-slot spans with
//!   all three stage segments populated;
//! * the same in-memory workload run traced keeps at least 0.95× of the
//!   untraced throughput. Wall-clock ratios are noisy under CI
//!   schedulers, so the overhead guard passes if *any* of three
//!   attempts clears the bar.

use std::time::Duration;

use gencon_load::{run_store_load, StoreLoadProfile, StoreMode};
use gencon_smr::Batch;
use gencon_trace::FlightRecorder;
use gencon_types::ProcessId;

fn memory_throughput(traced: bool) -> f64 {
    let spec = gencon_algos::paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).expect("paxos");
    let mut profile = StoreLoadProfile::new(StoreMode::Memory, 4, 16, 400);
    if traced {
        profile = profile.with_trace(FlightRecorder::new(1 << 15));
    }
    let report = run_store_load(&spec.params, &profile);
    assert!(report.all_reached_target, "rounds: {}", report.rounds);
    assert!(report.logs_agree);
    report.cmds_per_sec()
}

#[test]
fn traced_durable_run_yields_slot_spans() {
    let spec = gencon_algos::paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).expect("paxos");
    let mut profile = StoreLoadProfile::new(
        StoreMode::Durable {
            fsync_interval: Duration::from_millis(5),
            fast_ack: false,
        },
        2,
        8,
        80,
    )
    .with_trace(FlightRecorder::new(1 << 14));
    profile.snapshot_every = 32;
    let report = run_store_load(&spec.params, &profile);
    assert!(report.all_reached_target, "rounds: {}", report.rounds);
    assert!(report.logs_agree);

    let seg = report.segment_stats();
    assert!(seg.spans > 0, "no spans assembled");
    assert!(
        report.spans.iter().any(|s| s.order_us.is_some()),
        "no span carries an order segment"
    );
    assert!(
        report.spans.iter().any(|s| s.persist_wait_us.is_some()),
        "no span carries a persist queue-wait segment"
    );
    assert!(
        report.spans.iter().any(|s| s.persist_svc_us.is_some()),
        "no span carries a group-commit segment"
    );
}

#[test]
fn tracing_keeps_at_least_95_percent_of_untraced_throughput() {
    let mut worst = f64::INFINITY;
    for attempt in 1..=3 {
        let untraced = memory_throughput(false);
        let traced = memory_throughput(true);
        let ratio = if untraced > 0.0 {
            traced / untraced
        } else {
            1.0
        };
        if ratio >= 0.95 {
            return;
        }
        worst = worst.min(ratio);
        eprintln!(
            "attempt {attempt}: traced {traced:.0} vs untraced {untraced:.0} \
             cmds/sec (ratio {ratio:.3})"
        );
    }
    panic!("tracing cost more than 5% of throughput in all attempts (worst ratio {worst:.3})");
}
