//! The application-layer load driver — experiment **E11**'s engine.
//!
//! Two measurements, both with a real [`App`](gencon_app::App) in the
//! loop:
//!
//! * [`run_app_growth`] — the **snapshot-size-vs-history** curve, the
//!   headline of the application layer: a durable kv node ingests
//!   commands that overwrite a bounded keyspace while the snapshot
//!   policy folds periodically. With PR 4's full-history snapshots the
//!   state grew with the command count and state transfer hard-capped
//!   near 1M commands; with folding the snapshot stays O(live keys), so
//!   the bytes-per-snapshot series is **flat** while total commands run
//!   arbitrarily far past the old ceiling.
//! * [`run_app_transfer`] — the **wiped-node catch-up** proof: a 4-node
//!   Byzantine-tolerant cluster loses a node (state dropped, nothing on
//!   disk), survivors compact far past its position, and the node —
//!   restarted empty — must rebuild purely via `b + 1`-vouched,
//!   CRC-chunked, SHA-verified state transfer. The report asserts the
//!   transfer really was chunked and that every node's application state
//!   hash agrees at the exact common command count.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gencon_app::{Applier, Folder, KvApp, KvCmd, KvOp};
use gencon_net::wire_sync::{FoldedState, SnapshotManifest};
use gencon_net::ChannelTransport;
use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
use gencon_server::{
    run_smr_node, DurableConfig, DurableNode, NoHook, NodeHook, NodeStats, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{Log, MemStore};
use gencon_types::{ProcessId, Round};

/// Configuration of the snapshot-growth measurement.
#[derive(Clone, Debug)]
pub struct AppGrowthProfile {
    /// Total commands to drive (set beyond 2^20 ≈ 1M to cross the old
    /// `MAX_SNAPSHOT_CMDS` ceiling).
    pub commands: u64,
    /// Commands per proposed batch (one slot per round on the solo log).
    pub batch_cap: usize,
    /// Live keyspace the puts cycle over — the folded state's size.
    pub keys: u64,
    /// Value payload bytes.
    pub value_bytes: usize,
    /// Snapshot + compaction period, in slots.
    pub snapshot_every: u64,
    /// Dedup horizon in slots (kept small so the dedup window — which
    /// rides in every folded snapshot — stays a bounded additive term).
    pub dedup_horizon: u64,
}

impl Default for AppGrowthProfile {
    fn default() -> Self {
        AppGrowthProfile {
            commands: 1_200_000,
            batch_cap: 2_048,
            keys: 512,
            value_bytes: 16,
            snapshot_every: 16,
            dedup_horizon: 8,
        }
    }
}

/// What [`run_app_growth`] measured.
#[derive(Clone, Debug)]
pub struct AppGrowthReport {
    /// Commands actually applied.
    pub commands: u64,
    /// Live keys at the end (the folded state's cardinality).
    pub live_keys: u64,
    /// `(applied_commands, snapshot_bytes)` at every snapshot the policy
    /// took — the curve that must stay flat.
    pub samples: Vec<(u64, u64)>,
    /// Wall clock for the ingest.
    pub wall: Duration,
}

impl AppGrowthReport {
    /// Last-to-first snapshot size ratio (1.0 = perfectly flat). The
    /// first sample already covers a full keyspace pass, so any
    /// history-proportional growth would show up here.
    #[must_use]
    pub fn growth_ratio(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(_, first)), Some(&(_, last))) if first > 0 => last as f64 / first as f64,
            _ => f64::NAN,
        }
    }

    /// Commands ingested per second.
    #[must_use]
    pub fn cmds_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.commands as f64 / secs
        }
    }
}

fn put_cmd(id: u64, keys: u64, value_bytes: usize) -> KvCmd {
    // Spread writes across the keyspace; ids are globally unique so the
    // SMR dedup never collapses two logical requests.
    let key = format!("k{:08}", id % keys).into_bytes();
    let mut value = vec![0u8; value_bytes.max(8)];
    value[..8].copy_from_slice(&id.to_le_bytes());
    KvCmd {
        id,
        op: KvOp::Put { key, value },
    }
}

/// Drives a solo durable kv log (snapshot cost is a per-node property —
/// consensus adds nothing to it) and samples the on-disk snapshot size as
/// history grows. See the module docs.
///
/// # Panics
///
/// Panics if the solo Paxos parameters are rejected (they never are).
#[must_use]
pub fn run_app_growth(profile: &AppGrowthProfile) -> AppGrowthReport {
    let spec = gencon_algos::paxos::<Batch<KvCmd>>(1, 0, ProcessId::new(0)).expect("solo paxos");
    let mut replica = BatchingReplica::new(
        ProcessId::new(0),
        spec.params.clone(),
        profile.batch_cap,
        usize::MAX,
    )
    .expect("valid params")
    .with_dedup_horizon(profile.dedup_horizon);
    let mut durable: DurableNode<KvApp, MemStore, NoHook> = DurableNode::new(
        MemStore::new(),
        DurableConfig {
            snapshot_every: profile.snapshot_every,
            snapshot_tail: 4,
            durable_ack: true,
        },
        Folder::default(),
        NoHook,
    );

    let started = Instant::now();
    let mut samples: Vec<(u64, u64)> = Vec::new();
    let mut next_id: u64 = 0;
    let mut snapshots_seen: u64 = 0;
    let mut round: u64 = 1;
    while (replica.applied_len() as u64) < profile.commands {
        // Keep one batch queued: exactly batch_cap commands per slot.
        let want = profile.batch_cap.saturating_sub(replica.queued());
        replica.submit_all(
            (0..want as u64).map(|k| put_cmd(next_id + k, profile.keys, profile.value_bytes)),
        );
        next_id += want as u64;
        durable.before_round(round, &mut replica);
        let r = Round::new(round);
        let out = replica.send(r);
        let mut heard: HeardOf<_> = HeardOf::empty(1);
        if let Outgoing::Broadcast(m) = out {
            heard.put(ProcessId::new(0), m);
        }
        replica.receive(r, &heard);
        durable.after_round(round, &mut replica);
        if durable.snapshots_taken() > snapshots_seen {
            snapshots_seen = durable.snapshots_taken();
            if let Ok(Some(snap)) = durable.store().read_snapshot() {
                samples.push((snap.meta.applied_len, snap.state.len() as u64));
            }
        }
        round += 1;
    }
    AppGrowthReport {
        commands: replica.applied_len() as u64,
        live_keys: durable.folder().app().len() as u64,
        samples,
        wall: started.elapsed(),
    }
}

/// Configuration of the wiped-node transfer measurement.
#[derive(Clone, Debug)]
pub struct AppTransferProfile {
    /// Commands each of the three surviving feeders submits (all unique
    /// keys, so the live state is `3 × feed` keys).
    pub feed: usize,
    /// Value payload bytes — size this so the folded state spans several
    /// [`gencon_net::CHUNK_BYTES`] chunks.
    pub value_bytes: usize,
    /// Snapshot + compaction period on every node, in slots.
    pub snapshot_every: u64,
}

impl Default for AppTransferProfile {
    fn default() -> Self {
        AppTransferProfile {
            feed: 400,
            value_bytes: 256,
            snapshot_every: 16,
        }
    }
}

/// What [`run_app_transfer`] proved.
#[derive(Clone, Debug)]
pub struct AppTransferReport {
    /// Total unique commands (the exact count every app converges to).
    pub commands: u64,
    /// Folded state bytes of the final snapshot at the wiped node.
    pub state_bytes: u64,
    /// Verified chunks the wiped node fetched (> 1 ⇒ really chunked).
    pub chunks_fetched: u64,
    /// Snapshots the wiped node installed from peers.
    pub snapshots_installed: u64,
    /// Whether all four application state hashes agree at `commands`.
    pub hashes_agree: bool,
    /// Whether the wiped node reached the full command count.
    pub caught_up: bool,
    /// Event-loop statistics of the wiped node's second life.
    pub stats: NodeStats,
}

/// The feed-and-compare hook: survivors feed unique-key puts, everyone
/// runs a live kv applier with a state-hash capture at the exact shared
/// command count, and the wiped node restores its applier from the
/// transferred fold.
struct KvDriver {
    id: usize,
    feed: usize,
    value_bytes: usize,
    fed: bool,
    die_at_slot: Option<u64>,
    target: u64,
    marked: bool,
    done: Arc<AtomicUsize>,
    quorum: usize,
    base_floor: Option<Arc<AtomicU64>>,
    applier: Applier<KvApp>,
    /// Hard wall-clock stop so a wedged run fails loudly instead of
    /// hanging the suite.
    give_up: Instant,
}

impl NodeHook<KvCmd> for KvDriver {
    fn before_round(&mut self, _round: u64, replica: &mut BatchingReplica<KvCmd>) {
        if !self.fed {
            self.fed = true;
            let id0 = (self.id as u64) << 32;
            let feed = self.feed as u64;
            let value_bytes = self.value_bytes;
            // Unique keys per feeder: the live state is exactly the union.
            replica.submit_all((0..feed).map(|k| put_cmd(id0 + k, u64::MAX, value_bytes)));
        }
    }

    fn after_round(&mut self, _round: u64, replica: &mut BatchingReplica<KvCmd>) {
        if let Some(floor) = &self.base_floor {
            floor.fetch_max(replica.committed_base_slot(), Ordering::SeqCst);
        }
        self.applier.track(
            replica.applied(),
            replica.applied_slots(),
            replica.applied_base() as u64,
            replica.applied_len() as u64,
            |_, _, _, _| {},
        );
    }

    fn should_stop(&mut self, replica: &BatchingReplica<KvCmd>) -> bool {
        if let Some(die) = self.die_at_slot {
            return replica.committed_slots() as u64 >= die;
        }
        if !self.marked && replica.applied_len() as u64 >= self.target {
            self.marked = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        self.done.load(Ordering::SeqCst) >= self.quorum || Instant::now() > self.give_up
    }

    fn snapshot_installed(
        &mut self,
        _manifest: &SnapshotManifest,
        _state: &[u8],
        fs: &FoldedState<KvCmd>,
        _replica: &mut BatchingReplica<KvCmd>,
    ) {
        let _ = self.applier.restore(fs);
    }
}

/// Runs the wiped-node scenario on a 4-node PBFT channel mesh. See the
/// module docs.
///
/// # Panics
///
/// Panics if a node thread dies or the cluster never compacts past the
/// dead node (60 s watchdog).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_app_transfer(profile: &AppTransferProfile) -> AppTransferReport {
    const N: usize = 4;
    let spec = gencon_algos::pbft::<Batch<KvCmd>>(N, 1).expect("pbft n=4");
    let target = (3 * profile.feed) as u64; // node 3 feeds nothing
    let done = Arc::new(AtomicUsize::new(0));
    let mesh = ChannelTransport::mesh(N);
    let bases: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    // Termination comes from the done-quorum (plus a wall-clock give-up
    // in the driver), NOT from a round budget: idle Channel rounds are
    // sub-millisecond, so any fixed round count would let the survivors
    // spin out and die while a heavily-scheduled wiped node is still
    // mid-transfer (a real flake under parallel test load).
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(20),
        min_round_timeout: Duration::from_millis(1),
        max_round_timeout: Duration::from_millis(200),
        max_rounds: u64::MAX,
        stop_after_commands: None,
    };
    let give_up = Instant::now() + Duration::from_secs(180);
    // The claim tail is kept *wider* than the snapshot period: after the
    // wiped node installs a transferred snapshot at cut C, the survivors
    // have typically moved one or two periods past C — the retained tail
    // must still cover C's successors or the node chases moving
    // snapshots instead of finishing via claims.
    let durable_cfg = DurableConfig {
        snapshot_every: profile.snapshot_every,
        snapshot_tail: 2 * profile.snapshot_every,
        durable_ack: true,
    };

    type NodeOut = (Option<[u8; 32]>, NodeStats, u64, u64, bool);
    let mut handles: Vec<std::thread::JoinHandle<NodeOut>> = Vec::new();
    for (i, tr) in mesh.into_iter().enumerate() {
        let params = spec.params.clone();
        let done = Arc::clone(&done);
        let bases = bases.clone();
        let profile = profile.clone();
        handles.push(std::thread::spawn(move || {
            let make_replica = |params| {
                BatchingReplica::new(ProcessId::new(i), params, 8, usize::MAX)
                    .expect("valid params")
                    .with_window(4)
                    .with_dedup_horizon(256)
            };
            let driver = |die_at_slot, feed: usize, applier, base_floor| KvDriver {
                id: i,
                feed,
                value_bytes: profile.value_bytes,
                fed: feed == 0,
                die_at_slot,
                target,
                marked: false,
                done: Arc::clone(&done),
                quorum: N,
                base_floor,
                applier,
                give_up,
            };
            if i == 3 {
                // Phase 1: run briefly, then die with nothing persisted.
                let hook = DurableNode::<KvApp, _, _>::new(
                    MemStore::new(),
                    durable_cfg,
                    Folder::default(),
                    driver(Some(6), 0, Applier::default(), None),
                );
                let (dead, transport, _s, _h) =
                    run_smr_node(make_replica(params.clone()), tr, cfg, hook);
                let died_at = dead.committed_slots() as u64;
                drop(dead); // wiped: no replica state, no disk

                let deadline = Instant::now() + Duration::from_secs(60);
                while bases
                    .iter()
                    .any(|b| b.load(Ordering::SeqCst) <= died_at + 16)
                {
                    assert!(
                        Instant::now() < deadline,
                        "survivors never compacted past the wiped node"
                    );
                    std::thread::sleep(Duration::from_millis(25));
                }

                // Phase 2: restart EMPTY — catch-up must come purely from
                // chunked state transfer (+ claims for the live tail).
                let hook = DurableNode::<KvApp, _, _>::new(
                    MemStore::new(),
                    durable_cfg,
                    Folder::default(),
                    driver(None, 0, Applier::default().with_hash_target(target), None),
                );
                let (replica, _t, stats, hook) =
                    run_smr_node(make_replica(params), transport, cfg, hook);
                let state_bytes = hook
                    .store()
                    .read_snapshot()
                    .ok()
                    .flatten()
                    .map_or(0, |s| s.state.len() as u64);
                let caught_up = replica.applied_len() as u64 >= target;
                (
                    hook.inner().applier.captured_hash(),
                    stats,
                    state_bytes,
                    replica.applied_len() as u64,
                    caught_up,
                )
            } else {
                let hook = DurableNode::<KvApp, _, _>::new(
                    MemStore::new(),
                    durable_cfg,
                    Folder::default(),
                    driver(
                        None,
                        profile.feed,
                        Applier::default().with_hash_target(target),
                        Some(Arc::clone(&bases[i])),
                    ),
                );
                let (replica, _t, stats, hook) = run_smr_node(make_replica(params), tr, cfg, hook);
                (
                    hook.inner().applier.captured_hash(),
                    stats,
                    0,
                    replica.applied_len() as u64,
                    true,
                )
            }
        }));
    }

    let results: Vec<NodeOut> = handles
        .into_iter()
        .map(|h| h.join().expect("node"))
        .collect();
    let hashes: Vec<Option<[u8; 32]>> = results.iter().map(|r| r.0).collect();
    let hashes_agree = hashes[0].is_some() && hashes.iter().all(|h| *h == hashes[0]);
    let (_, stats, state_bytes, applied, caught_up) = &results[3];
    AppTransferReport {
        commands: *applied.min(&target).max(&0),
        state_bytes: *state_bytes,
        chunks_fetched: stats.chunks_fetched,
        snapshots_installed: stats.snapshots_installed,
        hashes_agree,
        caught_up: *caught_up,
        stats: *stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_curve_is_flat_over_a_short_run() {
        let report = run_app_growth(&AppGrowthProfile {
            commands: 40_000,
            batch_cap: 512,
            keys: 256,
            value_bytes: 16,
            snapshot_every: 16,
            dedup_horizon: 4,
        });
        assert!(report.commands >= 40_000);
        assert_eq!(report.live_keys, 256);
        assert!(report.samples.len() >= 3, "several snapshots sampled");
        let ratio = report.growth_ratio();
        assert!(
            ratio < 2.0,
            "snapshot bytes must stay O(live state): ratio {ratio}, samples {:?}",
            report.samples
        );
    }

    #[test]
    fn wiped_node_catches_up_via_chunked_transfer() {
        let report = run_app_transfer(&AppTransferProfile {
            feed: 150,
            value_bytes: 192,
            snapshot_every: 16,
        });
        assert!(report.caught_up, "wiped node reached the target");
        assert!(report.snapshots_installed >= 1, "transfer happened");
        assert!(
            report.chunks_fetched >= 2,
            "the state really was chunked ({} bytes in {} chunks)",
            report.state_bytes,
            report.chunks_fetched
        );
        assert!(report.hashes_agree, "all four kv state hashes agree");
    }
}
