//! The end-to-end load driver: clients → batches → consensus slots →
//! committed log → latency histogram.
//!
//! [`run_load`] assembles a cluster of
//! [`BatchingReplica`](gencon_smr::BatchingReplica)s over any catalog
//! parameterization, attaches a deterministic [`Workload`] to every honest
//! replica through the `gencon-sim` per-round injection hook, runs the
//! lock-step execution under the chosen [`NetworkModel`] and fault mix, and
//! reports throughput plus a log-bucketed commit-latency histogram.
//!
//! Latency accounting: every submitted command records its submit round in
//! a shared map; the *measurement replica* (the lowest-id honest,
//! never-crashed one) reports `commit_round − submit_round` for each
//! command as it is applied — including commands submitted at other
//! replicas, since rounds are global in the lock-step model.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gencon_adversary::Mute;
use gencon_core::Params;
use gencon_sim::{CrashPlan, NetworkModel, Outcome, RoundHook, SimBuilder, Simulation};
use gencon_smr::{Batch, BatchingReplica, SmrMsg};
use gencon_types::{ProcessId, Round};

use crate::hist::LatencyHistogram;
use crate::workload::{ClosedLoop, OpenLoop, Workload};

/// The workload shape attached to each replica.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Closed loop: every client keeps `outstanding` requests in flight.
    Closed {
        /// Requests in flight per client.
        outstanding: u32,
    },
    /// Open loop: Poisson arrivals with this mean rate per round.
    Poisson {
        /// Mean arrivals per round per replica.
        rate: f64,
    },
}

impl WorkloadKind {
    /// A short label for results rows (`closed(k=4)`, `poisson(2.0)`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::Closed { outstanding } => format!("closed(k={outstanding})"),
            WorkloadKind::Poisson { rate } => format!("poisson({rate:.1})"),
        }
    }
}

/// One load configuration: clients, workload shape, batching, stop rule.
#[derive(Clone, Debug)]
pub struct LoadProfile {
    /// Clients attached to each honest replica.
    pub clients_per_replica: u16,
    /// Arrival model.
    pub workload: WorkloadKind,
    /// Max commands per proposed batch (1 = unbatched).
    pub batch_cap: usize,
    /// Slot pipelining window (1 = sequential slots).
    pub window: usize,
    /// Commands each replica must apply before reporting done.
    pub commit_target: usize,
    /// Hard stop, in rounds.
    pub max_rounds: u64,
    /// Base seed for the per-replica workload rngs.
    pub seed: u64,
}

/// What one [`run_load`] execution produced.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Commands applied at the measurement replica.
    pub committed_cmds: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Commit latency (rounds from submit to apply) at the measurement
    /// replica.
    pub hist: LatencyHistogram,
    /// Whether every correct replica reached the commit target.
    pub all_decided: bool,
    /// Whether all honest replicas that reached the target report identical
    /// command logs (per-slot Agreement, flattened).
    pub logs_agree: bool,
    /// The full simulation outcome, for further inspection.
    pub outcome: Outcome<Vec<u64>>,
}

impl LoadReport {
    /// Throughput: committed commands per executed round.
    #[must_use]
    pub fn cmds_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.committed_cmds as f64 / self.rounds as f64
        }
    }
}

/// State shared between the per-replica hooks and the driver.
#[derive(Debug, Default)]
struct Shared {
    /// Submit round of every command ever injected (commands are globally
    /// unique by construction).
    submit_round: HashMap<u64, u64>,
    /// Commit latencies observed at the measurement replica.
    hist: LatencyHistogram,
    /// Prefix of the measurement replica's applied log already accounted.
    measured: usize,
}

/// The per-replica hook: injects arrivals before each send step and (on the
/// measurement replica) harvests commit latencies after each transition.
struct LoadHook {
    workload: Box<dyn Workload>,
    shared: Arc<Mutex<Shared>>,
    measure: bool,
}

impl RoundHook<BatchingReplica<u64>> for LoadHook {
    fn before_send(&mut self, r: Round, rep: &mut BatchingReplica<u64>) {
        let arrivals = self.workload.arrivals(r.number(), rep.applied());
        if arrivals.is_empty() {
            return;
        }
        {
            let mut sh = self.shared.lock().expect("hook lock");
            for &cmd in &arrivals {
                sh.submit_round.insert(cmd, r.number());
            }
        }
        rep.submit_all(arrivals);
    }

    fn after_receive(&mut self, _r: Round, rep: &mut BatchingReplica<u64>) {
        if !self.measure {
            return;
        }
        let (cmds, rounds) = rep.applied_with_rounds();
        let mut sh = self.shared.lock().expect("hook lock");
        for i in sh.measured..cmds.len() {
            if let Some(&submitted) = sh.submit_round.get(&cmds[i]) {
                // A command is submitted before round r's send and applied
                // at some round ≥ r's receive, so this is ≥ 1 by
                // construction; the max(1) only guards histogram semantics.
                sh.hist.record(rounds[i].saturating_sub(submitted).max(1));
            }
        }
        sh.measured = cmds.len();
    }
}

/// Runs one end-to-end load configuration.
///
/// * `params` — consensus parameterization over `Batch<u64>` values (from
///   any `gencon_algos` constructor, e.g.
///   `paxos::<Batch<u64>>(3, 1, ProcessId::new(0))?.params`);
/// * `network` — the round-by-round delivery model;
/// * `crashes` — crash schedule (bounded by the configuration's `f`);
/// * `byzantine` — ids replaced by mute Byzantine processes (bounded by
///   `b`); a mute Byzantine stresses liveness exactly like a crashed
///   replica but counts against the Byzantine budget;
/// * `profile` — clients, workload, batching and stop rule.
///
/// # Panics
///
/// Panics if the scenario violates the configuration's fault bounds, or if
/// every replica is faulty (no measurement replica).
pub fn run_load(
    params: &Params<Batch<u64>>,
    network: impl NetworkModel + 'static,
    crashes: CrashPlan,
    byzantine: &[ProcessId],
    profile: &LoadProfile,
) -> LoadReport {
    let n = params.cfg.n();
    let shared = Arc::new(Mutex::new(Shared::default()));

    // Lowest-id honest, never-crashed replica measures latency: it keeps
    // applying for the whole run.
    let crashing: Vec<ProcessId> = crashes.iter().map(|(p, _)| p).collect();
    let measure_id = (0..n)
        .map(ProcessId::new)
        .find(|p| !byzantine.contains(p) && !crashing.contains(p))
        .expect("at least one correct replica");

    let mut builder: SimBuilder<SmrMsg<Batch<u64>>, Vec<u64>> = Simulation::builder(params.cfg);
    for i in 0..n {
        let id = ProcessId::new(i);
        if byzantine.contains(&id) {
            builder = builder.byzantine(Mute::<SmrMsg<Batch<u64>>>::new(id));
            continue;
        }
        let replica =
            BatchingReplica::new(id, params.clone(), profile.batch_cap, profile.commit_target)
                .expect("validated params")
                .with_window(profile.window);
        let workload: Box<dyn Workload> = match profile.workload {
            WorkloadKind::Closed { outstanding } => Box::new(ClosedLoop::new(
                i as u16,
                profile.clients_per_replica,
                outstanding,
            )),
            WorkloadKind::Poisson { rate } => Box::new(OpenLoop::new(
                i as u16,
                profile.clients_per_replica,
                rate,
                profile.seed.wrapping_add(i as u64),
            )),
        };
        builder = builder.honest_driven(
            replica,
            LoadHook {
                workload,
                shared: Arc::clone(&shared),
                measure: id == measure_id,
            },
        );
    }

    let mut sim = builder
        .network(network)
        .crashes(crashes)
        .build()
        .expect("scenario respects fault bounds");
    let outcome = sim.run(profile.max_rounds);

    let sh = shared.lock().expect("driver lock");
    let logs_agree = gencon_sim::properties::agreement(&outcome, |log| log);
    LoadReport {
        committed_cmds: sh.measured as u64,
        rounds: outcome.rounds_executed,
        hist: sh.hist.clone(),
        all_decided: outcome.all_correct_decided,
        logs_agree,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{paxos, pbft};
    use gencon_sim::{AlwaysGood, CrashAt, Gst};

    fn profile(batch_cap: usize, target: usize) -> LoadProfile {
        LoadProfile {
            clients_per_replica: 4,
            workload: WorkloadKind::Closed { outstanding: 4 },
            batch_cap,
            window: 1,
            commit_target: target,
            max_rounds: 400,
            seed: 1,
        }
    }

    #[test]
    fn paxos_closed_loop_reaches_target() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let report = run_load(
            &spec.params,
            AlwaysGood,
            CrashPlan::none(),
            &[],
            &profile(8, 40),
        );
        assert!(report.all_decided, "rounds: {}", report.rounds);
        assert!(report.logs_agree);
        assert!(report.committed_cmds >= 40);
        assert!(report.hist.count() >= 40);
        assert!(report.hist.p50() >= 1);
        assert!(report.cmds_per_round() > 0.0);
    }

    #[test]
    fn batching_beats_unbatched_by_cap_factor() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let unbatched = run_load(
            &spec.params,
            AlwaysGood,
            CrashPlan::none(),
            &[],
            &profile(1, 48),
        );
        let batched = run_load(
            &spec.params,
            AlwaysGood,
            CrashPlan::none(),
            &[],
            &profile(8, 48),
        );
        assert!(unbatched.all_decided && batched.all_decided);
        assert!(
            batched.cmds_per_round() >= 4.0 * unbatched.cmds_per_round(),
            "cap 8: {:.3} cmds/round, cap 1: {:.3} cmds/round",
            batched.cmds_per_round(),
            unbatched.cmds_per_round()
        );
    }

    #[test]
    fn crash_fault_mix_still_commits() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let crashes =
            CrashPlan::none().with(ProcessId::new(2), CrashAt::mid_send(Round::new(6), 1));
        let report = run_load(
            &spec.params,
            Gst::new(10, 0.4, 7),
            crashes,
            &[],
            &profile(4, 24),
        );
        assert!(report.all_decided);
        assert!(report.logs_agree);
    }

    #[test]
    fn byzantine_mute_mix_still_commits() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let report = run_load(
            &spec.params,
            AlwaysGood,
            CrashPlan::none(),
            &[ProcessId::new(3)],
            &profile(4, 20),
        );
        assert!(report.all_decided);
        assert!(report.logs_agree);
        assert_eq!(report.outcome.byzantine.len(), 1);
    }

    #[test]
    fn open_loop_poisson_commits_under_gst() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let mut p = profile(8, 30);
        p.workload = WorkloadKind::Poisson { rate: 2.0 };
        let report = run_load(
            &spec.params,
            Gst::new(6, 0.5, 3),
            CrashPlan::none(),
            &[],
            &p,
        );
        assert!(report.all_decided, "rounds: {}", report.rounds);
        assert!(report.logs_agree);
        assert!(report.hist.count() >= 30);
    }

    #[test]
    fn workload_labels() {
        assert_eq!(
            WorkloadKind::Closed { outstanding: 4 }.label(),
            "closed(k=4)"
        );
        assert_eq!(WorkloadKind::Poisson { rate: 2.0 }.label(), "poisson(2.0)");
    }
}
