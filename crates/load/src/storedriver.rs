//! The durability load driver: the same clients, batching and histogram
//! as [`run_net_load`](crate::run_net_load), but with the storage layer
//! in the loop — experiment **E10**'s engine.
//!
//! [`run_store_load`] runs a cluster of `gencon-server` event-loop nodes
//! over an in-process channel mesh in one of two modes:
//!
//! * **Memory** — no persistence; a command counts as *acked* when
//!   applied (the PR-3 baseline);
//! * **Durable** — every node wraps a real
//!   [`FileWal`](gencon_store::FileWal) (own data dir per node) in a
//!   [`DurableNode`](gencon_server::DurableNode); a command counts as
//!   acked only once the **durable watermark** passes it — i.e. its
//!   slot's WAL record is fsynced or folded into a snapshot. Latency is
//!   submit→durable-ack, which is what a client of a durable cluster
//!   actually observes.
//!
//! The interesting number is the durable-to-memory throughput ratio:
//! group commit (one fsync per `fsync_interval`, not per slot) is what
//! keeps it small.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gencon_app::{Folder, LogApp};
use gencon_core::Params;
use gencon_metrics::Registry;
use gencon_net::{ChannelTransport, Transport};
use gencon_server::{
    run_smr_node_observed, DurableConfig, DurableNode, NodeHook, NodeStats, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{FileWal, Log, WalConfig};
use gencon_trace::{assemble_spans, FlightRecorder, SlotSpan};

use crate::driver::WorkloadKind;
use crate::hist::LatencyHistogram;
use crate::workload::{ClosedLoop, OpenLoop, Workload};

/// Whether (and how) the storage layer participates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreMode {
    /// No persistence; acks at apply time.
    Memory,
    /// File WAL per node; acks at the durable watermark.
    Durable {
        /// Group-commit window (`Duration::ZERO` fsyncs every round).
        fsync_interval: Duration,
        /// `true` acks at apply time even though the WAL runs (the
        /// fast-ack durability mode).
        fast_ack: bool,
    },
}

impl StoreMode {
    /// Label for results rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            StoreMode::Memory => "memory".to_string(),
            StoreMode::Durable {
                fsync_interval,
                fast_ack,
            } => format!(
                "durable({},fsync={}ms)",
                if fast_ack { "fast-ack" } else { "durable-ack" },
                fsync_interval.as_millis()
            ),
        }
    }
}

/// One durability load configuration.
#[derive(Clone, Debug)]
pub struct StoreLoadProfile {
    /// Clients attached to each replica.
    pub clients_per_replica: u16,
    /// Arrival model.
    pub workload: WorkloadKind,
    /// Max commands per proposed batch.
    pub batch_cap: usize,
    /// Slot pipelining window.
    pub window: usize,
    /// Commands each replica must *ack* before reporting done.
    pub commit_target: usize,
    /// Hard stop, in rounds per node.
    pub max_rounds: u64,
    /// Base seed for per-replica workload rngs.
    pub seed: u64,
    /// Storage participation.
    pub mode: StoreMode,
    /// Snapshot + compaction period in slots (durable mode; 0 disables).
    pub snapshot_every: u64,
    /// Data-dir root for durable nodes (a fresh subdir per node); a
    /// process-unique temp dir when `None`.
    pub data_root: Option<PathBuf>,
    /// Per-stage metrics registry attached to the measurement replica
    /// (node 0): ingest/order counters from the event loop, persist
    /// counters and fsync latency from the durable wrapper. `None` skips
    /// the instrumentation.
    pub metrics: Option<Registry>,
    /// Flight recorder attached to the measurement replica (node 0): the
    /// order and persist stages record each slot's lifecycle events, and
    /// the report assembles them into per-slot stage-segment spans.
    /// `None` runs untraced.
    pub trace: Option<FlightRecorder>,
}

impl StoreLoadProfile {
    /// A sensible default configuration for localhost-scale runs.
    #[must_use]
    pub fn new(mode: StoreMode, clients_per_replica: u16, batch_cap: usize, target: usize) -> Self {
        StoreLoadProfile {
            clients_per_replica,
            workload: WorkloadKind::Closed { outstanding: 4 },
            batch_cap,
            window: 4,
            commit_target: target,
            max_rounds: 200_000,
            seed: 42,
            mode,
            snapshot_every: 256,
            data_root: None,
            metrics: None,
            trace: None,
        }
    }

    /// Attaches a per-stage metrics registry to node 0.
    #[must_use]
    pub fn with_metrics(mut self, reg: Registry) -> Self {
        self.metrics = Some(reg);
        self
    }

    /// Attaches a flight recorder to node 0; the report then carries
    /// per-slot stage-segment spans assembled from its events.
    #[must_use]
    pub fn with_trace(mut self, recorder: FlightRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }
}

/// What one [`run_store_load`] execution produced.
#[derive(Clone, Debug)]
pub struct StoreLoadReport {
    /// Commands applied at the measurement replica (node 0).
    pub committed_cmds: u64,
    /// Commands *acked* (durably, in durable-ack mode) at node 0.
    pub acked_cmds: u64,
    /// Serving window wall clock at node 0 (first round → ack target).
    pub wall: Duration,
    /// Rounds node 0 executed.
    pub rounds: u64,
    /// Submit→ack latency in microseconds at node 0.
    pub hist: LatencyHistogram,
    /// Whether every replica acked at least the commit target.
    pub all_reached_target: bool,
    /// Whether all applied logs agree on overlapping suffixes.
    pub logs_agree: bool,
    /// Per-node event-loop statistics.
    pub stats: Vec<NodeStats>,
    /// WAL payload bytes appended across all nodes (0 in memory mode).
    pub wal_bytes: u64,
    /// fsyncs taken across all nodes (0 in memory mode).
    pub wal_syncs: u64,
    /// Snapshots taken across all nodes (0 in memory mode).
    pub snapshots: u64,
    /// Per-slot stage-segment spans assembled from node 0's flight
    /// recorder (empty when the profile ran untraced).
    pub spans: Vec<SlotSpan>,
}

/// Stage-segment percentiles over a run's slot spans: where the time
/// between a slot's decide and its durable ack actually went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Spans the percentiles are computed over.
    pub spans: u64,
    /// Proposed → decided (consensus), p50 / p99 µs.
    pub order_p50_us: u64,
    /// Proposed → decided p99.
    pub order_p99_us: u64,
    /// Decided → handed to the persist stage (queue wait), p50 µs.
    pub persist_wait_p50_us: u64,
    /// Persist queue wait p99.
    pub persist_wait_p99_us: u64,
    /// Group commit (append + fsync) covering the slot, p50 µs.
    pub persist_svc_p50_us: u64,
    /// Group-commit service p99.
    pub persist_svc_p99_us: u64,
}

impl StoreLoadReport {
    /// Acked commands per second at the measurement replica.
    #[must_use]
    pub fn cmds_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.acked_cmds as f64 / secs
        }
    }

    /// Percentiles of each stage segment over this run's slot spans
    /// (zeros when the run was untraced or a segment never appeared).
    #[must_use]
    pub fn segment_stats(&self) -> SegmentStats {
        let mut order = LatencyHistogram::new();
        let mut wait = LatencyHistogram::new();
        let mut svc = LatencyHistogram::new();
        for s in &self.spans {
            if let Some(v) = s.order_us {
                order.record(v);
            }
            if let Some(v) = s.persist_wait_us {
                wait.record(v);
            }
            if let Some(v) = s.persist_svc_us {
                svc.record(v);
            }
        }
        SegmentStats {
            spans: self.spans.len() as u64,
            order_p50_us: order.p50(),
            order_p99_us: order.p99(),
            persist_wait_p50_us: wait.p50(),
            persist_wait_p99_us: wait.p99(),
            persist_svc_p50_us: svc.p50(),
            persist_svc_p99_us: svc.p99(),
        }
    }
}

type SubmitLog = Arc<Mutex<std::collections::HashMap<u64, Instant>>>;
type MeasureWindow = Arc<Mutex<(Option<Instant>, Option<Instant>)>>;

/// Workload + ack-watermark latency hook.
struct StoreLoadHook {
    workload: Box<dyn Workload>,
    submits: SubmitLog,
    hist: Arc<Mutex<LatencyHistogram>>,
    window: MeasureWindow,
    /// Durable watermark shared with the `DurableNode` wrapper; `None`
    /// in memory mode (acks at apply).
    gate: Option<Arc<AtomicU64>>,
    measure: bool,
    /// Absolute applied offset up to which latency was recorded.
    measured: usize,
    target: usize,
    n: usize,
    marked_done: bool,
    done: Arc<AtomicUsize>,
}

impl StoreLoadHook {
    fn acked(&self, replica: &BatchingReplica<u64>) -> usize {
        self.gate.as_ref().map_or(replica.applied_len(), |g| {
            (g.load(Ordering::SeqCst) as usize).min(replica.applied_len())
        })
    }
}

impl NodeHook<u64> for StoreLoadHook {
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<u64>) {
        if self.measure {
            self.window
                .lock()
                .expect("window lock")
                .0
                .get_or_insert_with(Instant::now);
        }
        let arrivals =
            self.workload
                .arrivals_from(round, replica.applied_base(), replica.applied());
        if arrivals.is_empty() {
            return;
        }
        {
            let mut submits = self.submits.lock().expect("submit log lock");
            let now = Instant::now();
            for &cmd in &arrivals {
                submits.entry(cmd).or_insert(now);
            }
        }
        replica.submit_all(arrivals);
    }

    fn after_round(&mut self, _round: u64, replica: &mut BatchingReplica<u64>) {
        if !self.measure {
            return;
        }
        let acked = self.acked(replica);
        if acked <= self.measured {
            return;
        }
        let base = replica.applied_base();
        let now = Instant::now();
        let submits = self.submits.lock().expect("submit log lock");
        let mut hist = self.hist.lock().expect("hist lock");
        for abs in self.measured.max(base)..acked {
            let cmd = replica.applied()[abs - base];
            if let Some(&sent) = submits.get(&cmd) {
                hist.record(now.duration_since(sent).as_micros().max(1) as u64);
            }
        }
        self.measured = acked;
    }

    fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
        if !self.marked_done && self.acked(replica) >= self.target {
            self.marked_done = true;
            if self.measure {
                self.window.lock().expect("window lock").1 = Some(Instant::now());
            }
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        self.done.load(Ordering::SeqCst) >= self.n
    }
}

/// Runs one durability load configuration over `n` node threads (channel
/// mesh) and reports ack throughput, latency and storage statistics.
///
/// # Panics
///
/// Panics if a data dir cannot be created or a node thread dies.
pub fn run_store_load(params: &Params<Batch<u64>>, profile: &StoreLoadProfile) -> StoreLoadReport {
    let n = params.cfg.n();
    let submits: SubmitLog = Arc::new(Mutex::new(std::collections::HashMap::new()));
    let hist = Arc::new(Mutex::new(LatencyHistogram::new()));
    let window: MeasureWindow = Arc::new(Mutex::new((None, None)));
    let done = Arc::new(AtomicUsize::new(0));
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(30),
        min_round_timeout: Duration::from_millis(1),
        max_round_timeout: Duration::from_millis(500),
        max_rounds: profile.max_rounds,
        stop_after_commands: None,
    };
    let data_root = profile.data_root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "gencon-store-load-{}-{}",
            std::process::id(),
            profile.seed
        ))
    });

    let make_hook = |i: usize, gate: Option<Arc<AtomicU64>>| -> StoreLoadHook {
        let workload: Box<dyn Workload> = match profile.workload {
            WorkloadKind::Closed { outstanding } => Box::new(ClosedLoop::new(
                i as u16,
                profile.clients_per_replica,
                outstanding,
            )),
            WorkloadKind::Poisson { rate } => Box::new(OpenLoop::new(
                i as u16,
                profile.clients_per_replica,
                rate,
                profile.seed.wrapping_add(i as u64),
            )),
        };
        StoreLoadHook {
            workload,
            submits: Arc::clone(&submits),
            hist: Arc::clone(&hist),
            window: Arc::clone(&window),
            gate,
            measure: i == 0,
            measured: 0,
            target: profile.commit_target,
            n,
            marked_done: false,
            done: Arc::clone(&done),
        }
    };

    let fallback_start = Instant::now();
    type NodeOut = (BatchingReplica<u64>, NodeStats, u64, u64, u64);
    let mut handles: Vec<std::thread::JoinHandle<NodeOut>> = Vec::new();
    for (i, tr) in ChannelTransport::mesh(n).into_iter().enumerate() {
        let params = params.clone();
        let profile = profile.clone();
        let data_root = data_root.clone();
        let hook_parts = match profile.mode {
            StoreMode::Memory => (make_hook(i, None), None),
            StoreMode::Durable {
                fsync_interval,
                fast_ack,
            } => {
                let gate = Arc::new(AtomicU64::new(0));
                let hook = make_hook(i, (!fast_ack).then(|| Arc::clone(&gate)));
                (hook, Some((gate, fsync_interval, fast_ack)))
            }
        };
        // Per-stage metrics and the flight recorder instrument the
        // measurement replica only.
        let reg = if i == 0 {
            profile.metrics.clone()
        } else {
            None
        };
        let rec = if i == 0 { profile.trace.clone() } else { None };
        handles.push(std::thread::spawn(move || {
            let replica =
                BatchingReplica::new(tr.local(), params.clone(), profile.batch_cap, usize::MAX)
                    .expect("validated params")
                    .with_window(profile.window);
            let (hook, durable) = hook_parts;
            match durable {
                None => {
                    let (replica, _t, stats, _hook) = run_smr_node_observed(
                        replica,
                        tr,
                        cfg,
                        hook,
                        reg.as_ref(),
                        rec.as_ref(),
                        None,
                    );
                    (replica, stats, 0, 0, 0)
                }
                Some((gate, fsync_interval, fast_ack)) => {
                    let dir = data_root.join(format!("node{i}"));
                    let (wal, _recovery) = FileWal::open(
                        &dir,
                        WalConfig {
                            fsync_interval,
                            ..WalConfig::default()
                        },
                    )
                    .expect("open wal");
                    let mut node = DurableNode::new(
                        wal,
                        DurableConfig {
                            snapshot_every: profile.snapshot_every,
                            snapshot_tail: 32,
                            durable_ack: !fast_ack,
                        },
                        Folder::<LogApp<u64>>::default(),
                        hook,
                    )
                    .with_gate(gate);
                    if let Some(r) = &reg {
                        node = node.with_metrics(r);
                    }
                    if let Some(r) = &rec {
                        node = node.with_trace(r.clone());
                    }
                    let (replica, _t, stats, node) = run_smr_node_observed(
                        replica,
                        tr,
                        cfg,
                        node,
                        reg.as_ref(),
                        rec.as_ref(),
                        None,
                    );
                    // One guard for both reads: the store lock is not
                    // reentrant, and a second `store()` in the same
                    // expression would deadlock against the first guard's
                    // temporary.
                    let (bytes, syncs) = {
                        let store = node.store();
                        (store.bytes_appended(), store.syncs())
                    };
                    (replica, stats, bytes, syncs, node.snapshots_taken())
                }
            }
        }));
    }

    let results: Vec<NodeOut> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    let wall = {
        let w = window.lock().expect("window lock");
        match (w.0, w.1) {
            (Some(from), Some(to)) => to.duration_since(from),
            _ => fallback_start.elapsed(),
        }
    };

    // Agreement over overlapping suffixes (compaction trims prefixes at
    // replica-specific times).
    let reference = &results[0].0;
    let mut logs_agree = true;
    let mut all_reached_target = true;
    for (rep, _, _, _, _) in &results {
        let lo = reference.applied_base().max(rep.applied_base());
        let hi = reference.applied_len().min(rep.applied_len());
        for abs in lo..hi {
            if reference.applied()[abs - reference.applied_base()]
                != rep.applied()[abs - rep.applied_base()]
            {
                logs_agree = false;
                break;
            }
        }
        if rep.applied_len() < profile.commit_target {
            all_reached_target = false;
        }
    }

    let hist = hist.lock().expect("hist lock").clone();
    let acked_cmds = hist.count();
    // Tidy the temp data dirs (keep user-specified roots).
    if profile.data_root.is_none() {
        std::fs::remove_dir_all(&data_root).ok();
    }
    let spans = profile
        .trace
        .as_ref()
        .map(|r| assemble_spans(&r.tail(r.capacity())))
        .unwrap_or_default();
    StoreLoadReport {
        committed_cmds: results[0].0.applied_len() as u64,
        acked_cmds,
        wall,
        rounds: results[0].1.rounds,
        hist,
        all_reached_target,
        logs_agree,
        stats: results.iter().map(|(_, s, _, _, _)| *s).collect(),
        wal_bytes: results.iter().map(|(_, _, b, _, _)| b).sum(),
        wal_syncs: results.iter().map(|(_, _, _, s, _)| s).sum(),
        snapshots: results.iter().map(|(_, _, _, _, c)| c).sum(),
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{paxos, pbft};
    use gencon_types::ProcessId;

    #[test]
    fn memory_mode_reaches_target() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let profile = StoreLoadProfile::new(StoreMode::Memory, 4, 16, 120);
        let report = run_store_load(&spec.params, &profile);
        assert!(report.all_reached_target, "rounds: {}", report.rounds);
        assert!(report.logs_agree);
        assert!(report.acked_cmds >= 120);
        assert_eq!(report.wal_bytes, 0);
    }

    #[test]
    fn durable_ack_mode_reaches_target_with_group_commit() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let mut profile = StoreLoadProfile::new(
            StoreMode::Durable {
                fsync_interval: Duration::from_millis(5),
                fast_ack: false,
            },
            4,
            16,
            100,
        );
        profile.snapshot_every = 32;
        let report = run_store_load(&spec.params, &profile);
        assert!(report.all_reached_target, "rounds: {}", report.rounds);
        assert!(report.logs_agree);
        assert!(report.acked_cmds >= 100, "acked {}", report.acked_cmds);
        assert!(report.hist.p50() >= 1);
    }

    #[test]
    fn fast_ack_durable_mode_runs() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let profile = StoreLoadProfile::new(
            StoreMode::Durable {
                fsync_interval: Duration::from_millis(5),
                fast_ack: true,
            },
            2,
            8,
            60,
        );
        let report = run_store_load(&spec.params, &profile);
        assert!(report.all_reached_target);
        assert!(report.logs_agree);
    }

    #[test]
    fn per_stage_metrics_populate_on_node_zero() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let reg = Registry::new();
        let mut profile = StoreLoadProfile::new(
            StoreMode::Durable {
                fsync_interval: Duration::from_millis(5),
                fast_ack: false,
            },
            2,
            8,
            60,
        )
        .with_metrics(reg.clone());
        profile.snapshot_every = 32;
        let report = run_store_load(&spec.params, &profile);
        assert!(report.all_reached_target, "rounds: {}", report.rounds);
        assert!(reg.counter_value("order.rounds").unwrap() > 0);
        assert!(reg.counter_value("persist.appended").unwrap() > 0);
        assert!(reg.counter_value("persist.fsyncs").unwrap() > 0);
        assert!(reg.histogram("order.round_us").count() > 0);
        assert!(reg.histogram("persist.fsync_us").count() > 0);
        let dump = reg.dump_json();
        assert!(dump.contains("\"order.rounds\":"), "{dump}");
        assert!(dump.contains("\"persist.fsyncs\":"), "{dump}");
    }

    #[test]
    fn mode_labels() {
        assert_eq!(StoreMode::Memory.label(), "memory");
        assert!(StoreMode::Durable {
            fsync_interval: Duration::from_millis(5),
            fast_ack: false
        }
        .label()
        .contains("durable-ack"));
    }
}
