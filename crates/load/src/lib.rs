//! Workload generation and the end-to-end throughput/latency harness for
//! `gencon` replicated logs.
//!
//! The paper isolates the single-instance consensus core and `gencon-smr`
//! composes it back into a replicated log; this crate pushes *client
//! traffic* through that log and measures it — the missing vertical between
//! "the algorithm decides" and "the deployment serves":
//!
//! ```text
//! clients ──► Workload ──► BatchingReplica (Batch<V> per slot)
//!                               │  gencon-sim lock-step executor,
//!                               ▼  network models + fault mixes
//!                         committed log ──► LatencyHistogram ──► BENCH_smr.json
//! ```
//!
//! * [`Workload`] — deterministic arrival streams: [`ClosedLoop`] clients
//!   (k outstanding requests each, self-clocked to commit speed) and
//!   [`OpenLoop`] Poisson arrivals (rate-driven, exposes queueing collapse);
//! * [`LatencyHistogram`] — log-bucketed (exact below 64, ≤3.2% above),
//!   mergeable, with p50/p90/p99/p999;
//! * [`run_load`] — assembles replicas, workloads, network and fault mix
//!   into one lock-step execution and reports a [`LoadReport`];
//! * [`run_net_load`] — the same clients and histogram over *real*
//!   transports (`gencon-server` event-loop nodes on a Channel or
//!   localhost-TCP mesh), measuring wall-clock microseconds instead of
//!   rounds — the sim-vs-wire comparison of experiment E9;
//! * [`BenchRow`]/[`NetRow`]/[`ResultsWriter`] — the `BENCH_smr.json` /
//!   `BENCH_net.json` trajectory formats the `loadgen` and `loadgen_net`
//!   experiment binaries emit.
//!
//! Everything is seeded: the same configuration reproduces the same
//! arrivals, the same batches and the same histogram, round for round.
//!
//! # Example
//!
//! ```
//! use gencon_load::{run_load, LoadProfile, WorkloadKind};
//! use gencon_sim::{AlwaysGood, CrashPlan};
//! use gencon_types::{Batch, ProcessId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = gencon_algos::paxos::<Batch<u64>>(3, 1, ProcessId::new(0))?;
//! let report = run_load(
//!     &spec.params,
//!     AlwaysGood,
//!     CrashPlan::none(),
//!     &[],
//!     &LoadProfile {
//!         clients_per_replica: 2,
//!         workload: WorkloadKind::Closed { outstanding: 2 },
//!         batch_cap: 4,
//!         window: 1,
//!         commit_target: 12,
//!         max_rounds: 200,
//!         seed: 42,
//!     },
//! );
//! assert!(report.all_decided && report.logs_agree);
//! assert!(report.committed_cmds >= 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appdriver;
mod cmddriver;
mod driver;
mod hist;
mod mondriver;
mod netdriver;
mod results;
mod storedriver;
mod workload;

pub use appdriver::{
    run_app_growth, run_app_transfer, AppGrowthProfile, AppGrowthReport, AppTransferProfile,
    AppTransferReport,
};
pub use cmddriver::{run_cmd_load, CmdLoadProfile, CmdLoadReport, PopulationStats, SegmentPcts};
pub use driver::{run_load, LoadProfile, LoadReport, WorkloadKind};
pub use hist::LatencyHistogram;
pub use mondriver::{run_mon_load, MonLoadProfile, MonLoadReport};
pub use netdriver::{run_net_load, NetLoadProfile, NetLoadReport, NetTransportKind};
pub use results::{AppRow, BenchRow, JsonRow, NetRow, ResultsWriter, StoreRow};
pub use storedriver::{run_store_load, SegmentStats, StoreLoadProfile, StoreLoadReport, StoreMode};
pub use workload::{decode_cmd, encode_cmd, ClosedLoop, OpenLoop, Workload};

// The batched SMR surface this harness drives, re-exported for one-stop
// imports in experiment binaries.
pub use gencon_smr::{Batch, BatchingReplica};
