//! Deterministic workload generators: closed-loop clients and open-loop
//! Poisson arrivals.
//!
//! Commands are `u64`s encoding `(replica, client, seq)` — globally unique,
//! so the harness can attribute every applied command back to its submit
//! round. Generators follow the repo-wide seeded-rng discipline: identical
//! seeds reproduce identical arrival streams, round for round.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Encodes a command id: 16 bits replica, 16 bits client, 32 bits sequence.
#[must_use]
pub fn encode_cmd(replica: u16, client: u16, seq: u32) -> u64 {
    ((replica as u64) << 48) | ((client as u64) << 32) | seq as u64
}

/// Decodes a command id into `(replica, client, seq)`.
#[must_use]
pub fn decode_cmd(cmd: u64) -> (u16, u16, u32) {
    ((cmd >> 48) as u16, (cmd >> 32) as u16, cmd as u32)
}

/// A per-replica stream of client arrivals.
///
/// Called once per round (by the `gencon-sim` injection hook) with the
/// replica's flattened applied log, which closed-loop generators use as the
/// completion signal.
pub trait Workload: Send {
    /// Commands arriving at this replica at the start of round `round`.
    fn arrivals(&mut self, round: u64, applied: &[u64]) -> Vec<u64>;

    /// Compaction-aware variant: `applied` is the **retained suffix** of
    /// the log, starting at absolute offset `base` (see
    /// `BatchingReplica::applied_base`). The default ignores `base`,
    /// which is correct for generators that do not read the log (open
    /// loop) and for uncompacted replicas (`base == 0`).
    fn arrivals_from(&mut self, round: u64, base: usize, applied: &[u64]) -> Vec<u64> {
        let _ = base;
        self.arrivals(round, applied)
    }
}

/// Closed-loop clients: each of `clients` keeps exactly `outstanding`
/// requests in flight, submitting a new one only when an old one commits —
/// the classic fixed-concurrency load model. Throughput self-clocks to the
/// log's speed; latency feedback throttles arrival.
#[derive(Clone, Debug)]
pub struct ClosedLoop {
    replica: u16,
    outstanding: u32,
    /// Next sequence number per client.
    next_seq: Vec<u32>,
    /// Commands of ours seen committed, per client.
    done: Vec<u32>,
    /// Prefix of the applied log already scanned.
    scanned: usize,
}

impl ClosedLoop {
    /// `clients` clients attached to `replica`, each keeping `outstanding`
    /// requests in flight.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `outstanding == 0`.
    #[must_use]
    pub fn new(replica: u16, clients: u16, outstanding: u32) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(outstanding > 0, "closed loop needs outstanding ≥ 1");
        ClosedLoop {
            replica,
            outstanding,
            next_seq: vec![0; clients as usize],
            done: vec![0; clients as usize],
            scanned: 0,
        }
    }
}

impl Workload for ClosedLoop {
    fn arrivals(&mut self, round: u64, applied: &[u64]) -> Vec<u64> {
        self.arrivals_from(round, 0, applied)
    }

    fn arrivals_from(&mut self, _round: u64, base: usize, applied: &[u64]) -> Vec<u64> {
        // Count completions since the last look. `scanned` is an absolute
        // offset; with compaction the slice starts at `base`. Entries
        // compacted away before being scanned cannot be attributed (the
        // generator scans every round, so the retained tail always covers
        // the unscanned suffix in practice).
        let start = self.scanned.max(base);
        for &cmd in &applied[start - base..] {
            let (rep, client, _) = decode_cmd(cmd);
            if rep == self.replica && (client as usize) < self.done.len() {
                self.done[client as usize] += 1;
            }
        }
        self.scanned = base + applied.len();
        // Refill every client's window.
        let mut out = Vec::new();
        for c in 0..self.next_seq.len() {
            while self.next_seq[c] - self.done[c] < self.outstanding {
                out.push(encode_cmd(self.replica, c as u16, self.next_seq[c]));
                self.next_seq[c] += 1;
            }
        }
        out
    }
}

/// Open-loop Poisson arrivals: every round, `Poisson(rate)` new commands
/// arrive regardless of how the log is keeping up — the load model that
/// exposes queueing collapse when arrival exceeds service capacity.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    replica: u16,
    clients: u16,
    rate: f64,
    rng: StdRng,
    next_seq: Vec<u32>,
    next_client: usize,
    last_round: Option<u64>,
}

impl OpenLoop {
    /// Arrivals at `replica` with mean `rate` commands per round, spread
    /// round-robin over `clients` client ids, deterministic under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `rate` is not finite and positive.
    #[must_use]
    pub fn new(replica: u16, clients: u16, rate: f64, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        OpenLoop {
            replica,
            clients,
            rate,
            rng: StdRng::seed_from_u64(seed),
            next_seq: vec![0; clients as usize],
            next_client: 0,
            last_round: None,
        }
    }
}

/// Knuth's product-of-uniforms Poisson sampler, split into λ ≤ 30 chunks to
/// keep `exp(−λ)` well away from underflow.
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    let mut remaining = lambda;
    let mut total = 0u64;
    while remaining > 0.0 {
        let step = remaining.min(30.0);
        remaining -= step;
        let limit = (-step).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            k += 1;
            p *= rng.gen::<f64>();
            if p <= limit {
                break;
            }
        }
        total += k - 1;
    }
    total
}

impl Workload for OpenLoop {
    fn arrivals(&mut self, round: u64, _applied: &[u64]) -> Vec<u64> {
        // The hook may observe the same round more than once; sample once.
        if self.last_round == Some(round) {
            return Vec::new();
        }
        self.last_round = Some(round);
        let k = sample_poisson(&mut self.rng, self.rate);
        let mut out = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let c = self.next_client;
            self.next_client = (self.next_client + 1) % self.clients as usize;
            out.push(encode_cmd(self.replica, c as u16, self.next_seq[c]));
            self.next_seq[c] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmd_encoding_round_trips() {
        for (r, c, s) in [
            (0u16, 0u16, 0u32),
            (3, 17, 999_999),
            (u16::MAX, u16::MAX, u32::MAX),
        ] {
            assert_eq!(decode_cmd(encode_cmd(r, c, s)), (r, c, s));
        }
        // Distinct replicas never collide even at equal (client, seq).
        assert_ne!(encode_cmd(0, 1, 2), encode_cmd(1, 1, 2));
    }

    #[test]
    fn closed_loop_keeps_outstanding_constant() {
        let mut wl = ClosedLoop::new(2, 3, 4);
        let first = wl.arrivals(1, &[]);
        assert_eq!(first.len(), 12, "3 clients × 4 outstanding");
        // Nothing committed: no refill.
        assert!(wl.arrivals(2, &[]).is_empty());
        // Two of client 0's commands commit (plus a foreign command that
        // must be ignored): exactly two replacements arrive.
        let applied = vec![first[0], encode_cmd(9, 0, 0), first[1]];
        let refill = wl.arrivals(3, &applied);
        assert_eq!(refill.len(), 2);
        assert_eq!(decode_cmd(refill[0]).1, 0, "same client refills");
        assert_eq!(decode_cmd(refill[0]).2, 4, "fresh sequence numbers");
    }

    #[test]
    fn closed_loop_scan_is_incremental() {
        let mut wl = ClosedLoop::new(0, 1, 1);
        let a = wl.arrivals(1, &[]);
        assert_eq!(a.len(), 1);
        let log = vec![a[0]];
        let b = wl.arrivals(2, &log);
        assert_eq!(b.len(), 1);
        // Same log again: the already-scanned prefix isn't double-counted.
        let c = wl.arrivals(3, &log);
        assert!(c.is_empty());
    }

    #[test]
    fn open_loop_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut wl = OpenLoop::new(1, 4, 2.5, seed);
            (1..=20u64)
                .flat_map(|r| wl.arrivals(r, &[]))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn open_loop_mean_tracks_rate() {
        let mut wl = OpenLoop::new(0, 8, 5.0, 7);
        let rounds = 2000u64;
        let total: usize = (1..=rounds).map(|r| wl.arrivals(r, &[]).len()).sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 5.0).abs() < 0.3, "sample mean {mean} far from λ=5");
    }

    #[test]
    fn open_loop_samples_once_per_round() {
        let mut wl = OpenLoop::new(0, 1, 3.0, 1);
        let a = wl.arrivals(5, &[]);
        let b = wl.arrivals(5, &[]);
        assert!(!a.is_empty() || a.is_empty()); // a may be 0 by chance
        assert!(b.is_empty(), "second call in the same round yields nothing");
    }

    #[test]
    fn poisson_splitting_handles_large_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, 120.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 120.0).abs() < 5.0, "mean {mean} far from λ=120");
    }
}
