//! The real-net load driver: the same clients, batches and histogram as
//! [`run_load`](crate::run_load), but over actual transports and wall
//! clocks instead of the lock-step simulator.
//!
//! [`run_net_load`] spawns one `gencon-server` event-loop node per replica
//! (threads over [`ChannelTransport`] or a localhost
//! [`TcpTransport`] mesh), attaches the existing [`Workload`] generators
//! through the node hook, and measures **submit→apply wall latency in
//! microseconds** into the shared [`LatencyHistogram`] — so
//! `BENCH_net.json` rows are directly comparable with `BENCH_smr.json`'s
//! simulated rounds: same workloads, same batching, same percentile
//! machinery, real wire and real time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gencon_core::Params;
use gencon_net::{probe_free_addrs, ChannelTransport, TcpTransport, Transport};
use gencon_server::{run_smr_node, NodeHook, NodeStats, ServerConfig};
use gencon_smr::{Batch, BatchingReplica};
use gencon_types::ProcessId;

use crate::driver::WorkloadKind;
use crate::hist::LatencyHistogram;
use crate::workload::{ClosedLoop, OpenLoop, Workload};

/// Which transport carries the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetTransportKind {
    /// In-process crossbeam channels (isolates protocol cost from TCP).
    Channel,
    /// A localhost TCP mesh (the full wire path: codec + kernel + loopback).
    Tcp,
}

impl NetTransportKind {
    /// Label for results rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetTransportKind::Channel => "Channel",
            NetTransportKind::Tcp => "Tcp",
        }
    }
}

/// One real-net load configuration.
#[derive(Clone, Debug)]
pub struct NetLoadProfile {
    /// Clients attached to each replica.
    pub clients_per_replica: u16,
    /// Arrival model (same generators as the simulated driver).
    pub workload: WorkloadKind,
    /// Max commands per proposed batch.
    pub batch_cap: usize,
    /// Slot pipelining window.
    pub window: usize,
    /// Commands each replica must apply before reporting done.
    pub commit_target: usize,
    /// Hard stop, in rounds per node.
    pub max_rounds: u64,
    /// Base seed for per-replica workload rngs.
    pub seed: u64,
    /// Mesh transport.
    pub transport: NetTransportKind,
    /// Round pacing band (see [`ServerConfig`]).
    pub min_round_timeout: Duration,
    /// Starting round deadline.
    pub initial_round_timeout: Duration,
    /// Ceiling round deadline.
    pub max_round_timeout: Duration,
}

impl NetLoadProfile {
    /// A sensible default band for localhost meshes.
    #[must_use]
    pub fn localhost(
        workload: WorkloadKind,
        clients_per_replica: u16,
        batch_cap: usize,
        commit_target: usize,
        transport: NetTransportKind,
    ) -> Self {
        NetLoadProfile {
            clients_per_replica,
            workload,
            batch_cap,
            window: 4,
            commit_target,
            max_rounds: 200_000,
            seed: 42,
            transport,
            min_round_timeout: Duration::from_millis(1),
            initial_round_timeout: Duration::from_millis(30),
            max_round_timeout: Duration::from_millis(500),
        }
    }
}

/// What one [`run_net_load`] execution produced.
#[derive(Clone, Debug)]
pub struct NetLoadReport {
    /// Commands applied at the measurement replica (node 0).
    pub committed_cmds: u64,
    /// Wall clock at the measurement replica: from its first round to the
    /// round its commit target was reached (mesh dialing and the
    /// post-target linger while helping laggards are excluded, so
    /// `cmds_per_sec` reflects serving throughput, not harness overhead).
    pub wall: Duration,
    /// Rounds the measurement replica executed.
    pub rounds: u64,
    /// Submit→apply latency in **microseconds** at the measurement
    /// replica, from the shared histogram.
    pub hist: LatencyHistogram,
    /// Whether every replica applied at least the commit target.
    pub all_reached_target: bool,
    /// Whether all replicas' applied logs agree on the common prefix.
    pub logs_agree: bool,
    /// Per-node event-loop statistics.
    pub stats: Vec<NodeStats>,
}

impl NetLoadReport {
    /// Throughput in commands per second at the measurement replica.
    #[must_use]
    pub fn cmds_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.committed_cmds as f64 / secs
        }
    }
}

/// Submit instants of every command, shared across node hooks.
type SubmitLog = Arc<Mutex<HashMap<u64, Instant>>>;

/// The measurement replica's serving window: first round entered, and the
/// instant its commit target was reached.
type MeasureWindow = Arc<Mutex<(Option<Instant>, Option<Instant>)>>;

/// Workload + latency hook: the real-net analogue of the sim's `LoadHook`.
struct NetLoadHook {
    workload: Box<dyn Workload>,
    submits: SubmitLog,
    hist: Arc<Mutex<LatencyHistogram>>,
    window: MeasureWindow,
    measure: bool,
    measured: usize,
    target: usize,
    n: usize,
    marked_done: bool,
    done: Arc<AtomicUsize>,
}

impl NodeHook<u64> for NetLoadHook {
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<u64>) {
        if self.measure {
            self.window
                .lock()
                .expect("window lock")
                .0
                .get_or_insert_with(Instant::now);
        }
        let arrivals = self.workload.arrivals(round, replica.applied());
        if arrivals.is_empty() {
            return;
        }
        {
            let mut submits = self.submits.lock().expect("submit log lock");
            let now = Instant::now();
            for &cmd in &arrivals {
                submits.entry(cmd).or_insert(now);
            }
        }
        replica.submit_all(arrivals);
    }

    fn after_round(&mut self, _round: u64, replica: &mut BatchingReplica<u64>) {
        if !self.measure {
            return;
        }
        let applied = replica.applied();
        if applied.len() == self.measured {
            return;
        }
        let now = Instant::now();
        let submits = self.submits.lock().expect("submit log lock");
        let mut hist = self.hist.lock().expect("hist lock");
        for cmd in &applied[self.measured..] {
            if let Some(&sent) = submits.get(cmd) {
                hist.record(now.duration_since(sent).as_micros().max(1) as u64);
            }
        }
        self.measured = applied.len();
    }

    fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
        if !self.marked_done && replica.applied().len() >= self.target {
            self.marked_done = true;
            if self.measure {
                self.window.lock().expect("window lock").1 = Some(Instant::now());
            }
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        // Keep helping (lingering at cluster scope) until everyone is done.
        self.done.load(Ordering::SeqCst) >= self.n
    }
}

/// Runs one real-net load configuration over `n` node threads and reports
/// wall-clock throughput and microsecond latency percentiles.
///
/// # Panics
///
/// Panics if the mesh cannot be established or a node thread dies.
pub fn run_net_load(params: &Params<Batch<u64>>, profile: &NetLoadProfile) -> NetLoadReport {
    let n = params.cfg.n();
    let submits: SubmitLog = Arc::new(Mutex::new(HashMap::new()));
    let hist = Arc::new(Mutex::new(LatencyHistogram::new()));
    let window: MeasureWindow = Arc::new(Mutex::new((None, None)));
    let done = Arc::new(AtomicUsize::new(0));
    let cfg = ServerConfig {
        initial_round_timeout: profile.initial_round_timeout,
        min_round_timeout: profile.min_round_timeout,
        max_round_timeout: profile.max_round_timeout,
        max_rounds: profile.max_rounds,
        stop_after_commands: None,
    };

    let make_hook = |i: usize| -> NetLoadHook {
        let workload: Box<dyn Workload> = match profile.workload {
            WorkloadKind::Closed { outstanding } => Box::new(ClosedLoop::new(
                i as u16,
                profile.clients_per_replica,
                outstanding,
            )),
            WorkloadKind::Poisson { rate } => Box::new(OpenLoop::new(
                i as u16,
                profile.clients_per_replica,
                rate,
                profile.seed.wrapping_add(i as u64),
            )),
        };
        NetLoadHook {
            workload,
            submits: Arc::clone(&submits),
            hist: Arc::clone(&hist),
            window: Arc::clone(&window),
            measure: i == 0,
            measured: 0,
            target: profile.commit_target,
            n,
            marked_done: false,
            done: Arc::clone(&done),
        }
    };

    let fallback_start = Instant::now();
    let mut handles: Vec<std::thread::JoinHandle<(BatchingReplica<u64>, NodeStats)>> = Vec::new();
    match profile.transport {
        NetTransportKind::Channel => {
            for (i, tr) in ChannelTransport::mesh(n).into_iter().enumerate() {
                handles.push(spawn_node(params, profile, cfg, tr, make_hook(i)));
            }
        }
        NetTransportKind::Tcp => {
            let addrs = probe_free_addrs(n).expect("probe localhost ports");
            for i in 0..n {
                let addrs = addrs.clone();
                let hook = make_hook(i);
                let params = params.clone();
                let profile = profile.clone();
                handles.push(std::thread::spawn(move || {
                    let tr = TcpTransport::connect_mesh(ProcessId::new(i), &addrs)
                        .expect("localhost mesh connects");
                    run_node_thread(&params, &profile, cfg, tr, hook)
                }));
            }
        }
    }

    let results: Vec<(BatchingReplica<u64>, NodeStats)> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    // Serving window at the measurement replica; falls back to the whole
    // harness span if the target was never reached.
    let wall = {
        let w = window.lock().expect("window lock");
        match (w.0, w.1) {
            (Some(from), Some(to)) => to.duration_since(from),
            _ => fallback_start.elapsed(),
        }
    };

    let reference = results[0].0.applied();
    let mut logs_agree = true;
    let mut all_reached_target = true;
    for (rep, _) in &results {
        let log = rep.applied();
        let common = log.len().min(reference.len());
        if log[..common] != reference[..common] {
            logs_agree = false;
        }
        if log.len() < profile.commit_target {
            all_reached_target = false;
        }
    }

    let hist = hist.lock().expect("hist lock").clone();
    NetLoadReport {
        committed_cmds: results[0].0.applied().len() as u64,
        wall,
        rounds: results[0].1.rounds,
        hist,
        all_reached_target,
        logs_agree,
        stats: results.iter().map(|(_, s)| *s).collect(),
    }
}

fn spawn_node<T: Transport + Send + 'static>(
    params: &Params<Batch<u64>>,
    profile: &NetLoadProfile,
    cfg: ServerConfig,
    transport: T,
    hook: NetLoadHook,
) -> std::thread::JoinHandle<(BatchingReplica<u64>, NodeStats)> {
    let params = params.clone();
    let profile = profile.clone();
    std::thread::spawn(move || run_node_thread(&params, &profile, cfg, transport, hook))
}

fn run_node_thread<T: Transport>(
    params: &Params<Batch<u64>>,
    profile: &NetLoadProfile,
    cfg: ServerConfig,
    transport: T,
    hook: NetLoadHook,
) -> (BatchingReplica<u64>, NodeStats) {
    let id = transport.local();
    let replica = BatchingReplica::new(id, params.clone(), profile.batch_cap, usize::MAX)
        .expect("validated params")
        .with_window(profile.window);
    let (replica, _t, stats, _hook) = run_smr_node(replica, transport, cfg, hook);
    (replica, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{paxos, pbft};

    fn profile(transport: NetTransportKind, target: usize) -> NetLoadProfile {
        NetLoadProfile::localhost(
            WorkloadKind::Closed { outstanding: 4 },
            4,
            16,
            target,
            transport,
        )
    }

    #[test]
    fn paxos_channel_net_load_reaches_target() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let report = run_net_load(&spec.params, &profile(NetTransportKind::Channel, 120));
        assert!(report.all_reached_target, "rounds: {}", report.rounds);
        assert!(report.logs_agree);
        assert!(report.committed_cmds >= 120);
        assert!(report.hist.count() >= 120);
        assert!(report.hist.p50() >= 1, "latencies are in micros");
        assert!(report.cmds_per_sec() > 0.0);
    }

    #[test]
    fn pbft_tcp_net_load_reaches_target() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let report = run_net_load(&spec.params, &profile(NetTransportKind::Tcp, 100));
        assert!(report.all_reached_target);
        assert!(report.logs_agree);
        assert!(report.hist.count() >= 100);
        assert_eq!(report.stats.len(), 4);
    }

    #[test]
    fn open_loop_poisson_over_channels() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let mut p = profile(NetTransportKind::Channel, 60);
        p.workload = WorkloadKind::Poisson { rate: 3.0 };
        let report = run_net_load(&spec.params, &p);
        assert!(report.all_reached_target);
        assert!(report.logs_agree);
    }

    #[test]
    fn transport_labels() {
        assert_eq!(NetTransportKind::Channel.label(), "Channel");
        assert_eq!(NetTransportKind::Tcp.label(), "Tcp");
    }
}
