//! The `BENCH_smr.json` / `BENCH_net.json` results formats.
//!
//! One row per swept configuration. Each file is a JSON array of flat
//! objects so any plotting stack can ingest it; the writer is hand-rolled
//! (the workspace is offline — no serde) and emits stable key order.
//! [`BenchRow`] is the simulated-rounds row (E8), [`NetRow`] the
//! wall-clock real-transport row (E9); [`ResultsWriter`] serializes any
//! [`JsonRow`].

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A row any [`ResultsWriter`] can serialize.
pub trait JsonRow {
    /// Renders the row as one flat JSON object.
    fn to_json(&self) -> String;
}

/// One row of the end-to-end SMR benchmark:
/// configuration → throughput and latency percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Algorithm name (`Paxos`, `PBFT`, …).
    pub algo: String,
    /// Its class in Table 1 (`class 1`..`class 3`).
    pub class: String,
    /// System size.
    pub n: usize,
    /// Byzantine bound b of the configuration.
    pub b: usize,
    /// Crash bound f of the configuration.
    pub f: usize,
    /// Network model (`AlwaysGood`, `Gst(8,0.5)`, `RandomSubset(2)`, …).
    pub network: String,
    /// Fault mix actually injected (`none`, `crash@r10`, `1 byz mute`, …).
    pub faults: String,
    /// Workload shape (`closed(k=4)`, `poisson(2.0)`).
    pub workload: String,
    /// Total clients across replicas.
    pub clients: usize,
    /// Batch cap (1 = unbatched).
    pub batch_cap: usize,
    /// Commands committed at the measurement replica.
    pub committed_cmds: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Throughput: committed commands per round.
    pub cmds_per_round: f64,
    /// Median commit latency, in rounds.
    pub p50: u64,
    /// 90th-percentile commit latency, in rounds.
    pub p90: u64,
    /// 99th-percentile commit latency, in rounds.
    pub p99: u64,
    /// 99.9th-percentile commit latency, in rounds.
    pub p999: u64,
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    let _ = write!(out, "\"{key}\":\"");
    for ch in val.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonRow for BenchRow {
    fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_str_field(&mut s, "algo", &self.algo);
        s.push(',');
        push_str_field(&mut s, "class", &self.class);
        let _ = write!(s, ",\"n\":{},\"b\":{},\"f\":{},", self.n, self.b, self.f);
        push_str_field(&mut s, "network", &self.network);
        s.push(',');
        push_str_field(&mut s, "faults", &self.faults);
        s.push(',');
        push_str_field(&mut s, "workload", &self.workload);
        let _ = write!(
            s,
            ",\"clients\":{},\"batch_cap\":{},\"committed_cmds\":{},\"rounds\":{},\
             \"cmds_per_round\":{:.4},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.clients,
            self.batch_cap,
            self.committed_cmds,
            self.rounds,
            self.cmds_per_round,
            self.p50,
            self.p90,
            self.p99,
            self.p999,
        );
        s
    }
}

/// One row of the real-net benchmark (E9): the same workloads and
/// histogram as [`BenchRow`], but over an actual transport with wall-clock
/// units — latency in microseconds, throughput in commands per second —
/// plus the matching simulated throughput so sim-vs-wire is one file.
#[derive(Clone, Debug, PartialEq)]
pub struct NetRow {
    /// Algorithm name (`Paxos`, `PBFT`, …).
    pub algo: String,
    /// Its class in Table 1.
    pub class: String,
    /// System size.
    pub n: usize,
    /// Byzantine bound b.
    pub b: usize,
    /// Crash bound f.
    pub f: usize,
    /// Mesh transport (`Channel`, `Tcp`).
    pub transport: String,
    /// Workload shape (`closed(k=4)`, `poisson(2.0)`).
    pub workload: String,
    /// Total clients across replicas.
    pub clients: usize,
    /// Batch cap.
    pub batch_cap: usize,
    /// Commands applied at the measurement replica.
    pub committed_cmds: u64,
    /// Rounds the measurement replica executed.
    pub rounds: u64,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Throughput in commands per second.
    pub cmds_per_sec: f64,
    /// Median submit→apply latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Throughput of the same configuration in the lock-step simulator
    /// (commands per round), for sim-vs-wire comparison.
    pub sim_cmds_per_round: f64,
}

impl JsonRow for NetRow {
    fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_str_field(&mut s, "algo", &self.algo);
        s.push(',');
        push_str_field(&mut s, "class", &self.class);
        let _ = write!(s, ",\"n\":{},\"b\":{},\"f\":{},", self.n, self.b, self.f);
        push_str_field(&mut s, "transport", &self.transport);
        s.push(',');
        push_str_field(&mut s, "workload", &self.workload);
        let _ = write!(
            s,
            ",\"clients\":{},\"batch_cap\":{},\"committed_cmds\":{},\"rounds\":{},\
             \"wall_ms\":{:.3},\"cmds_per_sec\":{:.1},\"p50_us\":{},\"p90_us\":{},\
             \"p99_us\":{},\"p999_us\":{},\"sim_cmds_per_round\":{:.4}}}",
            self.clients,
            self.batch_cap,
            self.committed_cmds,
            self.rounds,
            self.wall_ms,
            self.cmds_per_sec,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.sim_cmds_per_round,
        );
        s
    }
}

/// One row of the durability benchmark (E10): the same clients and
/// histogram as [`NetRow`], with the storage layer in the loop — latency
/// is submit→**ack** (durable-ack waits for fsync/snapshot coverage) and
/// the storage columns show what the durability cost bought.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreRow {
    /// Algorithm name (`Paxos`, `PBFT`, …).
    pub algo: String,
    /// Its class in Table 1.
    pub class: String,
    /// System size.
    pub n: usize,
    /// Byzantine bound b.
    pub b: usize,
    /// Crash bound f.
    pub f: usize,
    /// Storage mode (`memory`, `durable(durable-ack,fsync=5ms)`, …).
    pub mode: String,
    /// Workload shape.
    pub workload: String,
    /// Total clients across replicas.
    pub clients: usize,
    /// Batch cap.
    pub batch_cap: usize,
    /// Commands applied at the measurement replica.
    pub committed_cmds: u64,
    /// Commands acked at the measurement replica.
    pub acked_cmds: u64,
    /// Rounds the measurement replica executed.
    pub rounds: u64,
    /// Wall-clock milliseconds for the serving window.
    pub wall_ms: f64,
    /// Acked commands per second.
    pub cmds_per_sec: f64,
    /// Median submit→ack latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// WAL payload bytes appended across the cluster.
    pub wal_bytes: u64,
    /// fsyncs across the cluster (group commit keeps this ≪ slots).
    pub wal_syncs: u64,
    /// Snapshots taken across the cluster.
    pub snapshots: u64,
    /// This mode's throughput relative to the in-memory baseline of the
    /// same configuration (1.0 = no slowdown).
    pub vs_memory: f64,
    /// Frames the measurement replica's ingest stage decoded (0 when the
    /// per-stage registry is not attached).
    pub ingest_frames: u64,
    /// Median order-stage (consensus round) latency at the measurement
    /// replica, microseconds.
    pub order_us_p50: u64,
    /// Median persist-stage fsync latency at the measurement replica,
    /// microseconds (0 in memory mode).
    pub fsync_us_p50: u64,
    /// Rounds the measurement replica's order stage spent blocked on a
    /// full persist queue.
    pub persist_stalls: u64,
    /// Slot spans assembled from the measurement replica's flight
    /// recorder (0 when the run was untraced).
    pub spans: u64,
    /// Per-slot proposed→decided segment, median µs (consensus time).
    pub span_order_p50_us: u64,
    /// Per-slot proposed→decided segment, p99 µs.
    pub span_order_p99_us: u64,
    /// Per-slot decided→persist-enqueue segment (queue wait), median µs.
    pub span_persist_wait_p50_us: u64,
    /// Per-slot persist queue wait, p99 µs.
    pub span_persist_wait_p99_us: u64,
    /// Per-slot group-commit (append + fsync) segment, median µs.
    pub span_persist_svc_p50_us: u64,
    /// Per-slot group-commit segment, p99 µs.
    pub span_persist_svc_p99_us: u64,
}

impl JsonRow for StoreRow {
    fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_str_field(&mut s, "algo", &self.algo);
        s.push(',');
        push_str_field(&mut s, "class", &self.class);
        let _ = write!(s, ",\"n\":{},\"b\":{},\"f\":{},", self.n, self.b, self.f);
        push_str_field(&mut s, "mode", &self.mode);
        s.push(',');
        push_str_field(&mut s, "workload", &self.workload);
        let _ = write!(
            s,
            ",\"clients\":{},\"batch_cap\":{},\"committed_cmds\":{},\"acked_cmds\":{},\
             \"rounds\":{},\"wall_ms\":{:.3},\"cmds_per_sec\":{:.1},\"p50_us\":{},\
             \"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"wal_bytes\":{},\"wal_syncs\":{},\
             \"snapshots\":{},\"vs_memory\":{:.4},\"ingest_frames\":{},\"order_us_p50\":{},\
             \"fsync_us_p50\":{},\"persist_stalls\":{},\"spans\":{},\
             \"span_order_p50_us\":{},\"span_order_p99_us\":{},\
             \"span_persist_wait_p50_us\":{},\"span_persist_wait_p99_us\":{},\
             \"span_persist_svc_p50_us\":{},\"span_persist_svc_p99_us\":{}}}",
            self.clients,
            self.batch_cap,
            self.committed_cmds,
            self.acked_cmds,
            self.rounds,
            self.wall_ms,
            self.cmds_per_sec,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.wal_bytes,
            self.wal_syncs,
            self.snapshots,
            self.vs_memory,
            self.ingest_frames,
            self.order_us_p50,
            self.fsync_us_p50,
            self.persist_stalls,
            self.spans,
            self.span_order_p50_us,
            self.span_order_p99_us,
            self.span_persist_wait_p50_us,
            self.span_persist_wait_p99_us,
            self.span_persist_svc_p50_us,
            self.span_persist_svc_p99_us,
        );
        s
    }
}

/// One row of the application-layer benchmark (E11): snapshot size vs
/// history length for a folding application, plus the wiped-node chunked
/// state-transfer proof.
#[derive(Clone, Debug, PartialEq)]
pub struct AppRow {
    /// Application name (`kv`, `bank`, `log`).
    pub app: String,
    /// Measurement (`growth`, `transfer`).
    pub mode: String,
    /// Total commands applied.
    pub commands: u64,
    /// Live keys (or accounts) at the end — what the fold's size tracks.
    pub live_keys: u64,
    /// Bytes of the first periodic snapshot.
    pub first_snapshot_bytes: u64,
    /// Bytes of the last periodic snapshot.
    pub last_snapshot_bytes: u64,
    /// `last / first` — 1.0 is perfectly flat; PR 4's full-history mode
    /// grows linearly with `commands`.
    pub growth_ratio: f64,
    /// Snapshots sampled (growth) or installed via transfer (transfer).
    pub snapshots: u64,
    /// Verified chunks fetched during state transfer (0 in growth mode).
    pub chunks_fetched: u64,
    /// Whether every node's app state hash agreed (always true in
    /// growth mode, which has one node).
    pub hashes_agree: bool,
    /// Commands ingested per second.
    pub cmds_per_sec: f64,
}

impl JsonRow for AppRow {
    fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_str_field(&mut s, "app", &self.app);
        s.push(',');
        push_str_field(&mut s, "mode", &self.mode);
        let _ = write!(
            s,
            ",\"commands\":{},\"live_keys\":{},\"first_snapshot_bytes\":{},\
             \"last_snapshot_bytes\":{},\"growth_ratio\":{:.4},\"snapshots\":{},\
             \"chunks_fetched\":{},\"hashes_agree\":{},\"cmds_per_sec\":{:.1}}}",
            self.commands,
            self.live_keys,
            self.first_snapshot_bytes,
            self.last_snapshot_bytes,
            self.growth_ratio,
            self.snapshots,
            self.chunks_fetched,
            self.hashes_agree,
            self.cmds_per_sec,
        );
        s
    }
}

/// Accumulates rows ([`BenchRow`] by default) and writes them as one JSON
/// array.
#[derive(Clone, Debug)]
pub struct ResultsWriter<R: JsonRow = BenchRow> {
    rows: Vec<R>,
}

impl<R: JsonRow> Default for ResultsWriter<R> {
    fn default() -> Self {
        ResultsWriter::new()
    }
}

impl<R: JsonRow> ResultsWriter<R> {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ResultsWriter { rows: Vec::new() }
    }

    /// Appends a row.
    pub fn push(&mut self, row: R) {
        self.rows.push(row);
    }

    /// Rows collected so far.
    #[must_use]
    pub fn rows(&self) -> &[R] {
        &self.rows
    }

    /// Renders all rows as a pretty-enough JSON array (one row per line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            s.push_str("  ");
            s.push_str(&row.to_json());
            if i + 1 < self.rows.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push(']');
        s.push('\n');
        s
    }

    /// Writes the JSON array to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `std::fs::write` error.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> BenchRow {
        BenchRow {
            algo: "Paxos".into(),
            class: "class 2".into(),
            n: 3,
            b: 0,
            f: 1,
            network: "Gst(8,0.5)".into(),
            faults: "none".into(),
            workload: "closed(k=4)".into(),
            clients: 12,
            batch_cap: 8,
            committed_cmds: 240,
            rounds: 90,
            cmds_per_round: 240.0 / 90.0,
            p50: 4,
            p90: 6,
            p99: 9,
            p999: 12,
        }
    }

    #[test]
    fn row_renders_every_field() {
        let j = row().to_json();
        for needle in [
            "\"algo\":\"Paxos\"",
            "\"class\":\"class 2\"",
            "\"n\":3",
            "\"b\":0",
            "\"f\":1",
            "\"network\":\"Gst(8,0.5)\"",
            "\"faults\":\"none\"",
            "\"workload\":\"closed(k=4)\"",
            "\"clients\":12",
            "\"batch_cap\":8",
            "\"committed_cmds\":240",
            "\"rounds\":90",
            "\"cmds_per_round\":2.6667",
            "\"p50\":4",
            "\"p999\":12",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = row();
        r.algo = "we\"ird\\name\n".into();
        let j = r.to_json();
        assert!(j.contains("we\\\"ird\\\\name\\u000a"), "{j}");
    }

    #[test]
    fn net_row_renders_every_field() {
        let j = NetRow {
            algo: "PBFT".into(),
            class: "class 3".into(),
            n: 4,
            b: 1,
            f: 1,
            transport: "Tcp".into(),
            workload: "closed(k=4)".into(),
            clients: 16,
            batch_cap: 64,
            committed_cmds: 1200,
            rounds: 88,
            wall_ms: 412.5,
            cmds_per_sec: 2909.1,
            p50_us: 5200,
            p90_us: 9100,
            p99_us: 15000,
            p999_us: 19000,
            sim_cmds_per_round: 13.3333,
        }
        .to_json();
        for needle in [
            "\"algo\":\"PBFT\"",
            "\"transport\":\"Tcp\"",
            "\"wall_ms\":412.500",
            "\"cmds_per_sec\":2909.1",
            "\"p50_us\":5200",
            "\"p999_us\":19000",
            "\"sim_cmds_per_round\":13.3333",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        // Writers are generic: a NetRow writer serializes the same shape.
        let mut w: ResultsWriter<NetRow> = ResultsWriter::new();
        assert_eq!(w.to_json(), "[\n]\n");
        w.push(NetRow {
            algo: "Paxos".into(),
            class: "class 2".into(),
            n: 4,
            b: 0,
            f: 1,
            transport: "Channel".into(),
            workload: "closed(k=4)".into(),
            clients: 16,
            batch_cap: 64,
            committed_cmds: 1200,
            rounds: 70,
            wall_ms: 120.0,
            cmds_per_sec: 10_000.0,
            p50_us: 900,
            p90_us: 1500,
            p99_us: 2100,
            p999_us: 3000,
            sim_cmds_per_round: 17.0,
        });
        assert!(w.to_json().contains("\"transport\":\"Channel\""));
    }

    #[test]
    fn store_row_renders_per_stage_fields() {
        let j = StoreRow {
            algo: "PBFT".into(),
            class: "class 3".into(),
            n: 4,
            b: 1,
            f: 1,
            mode: "durable(durable-ack,fsync=5ms)".into(),
            workload: "closed(k=4)".into(),
            clients: 16,
            batch_cap: 64,
            committed_cmds: 1500,
            acked_cmds: 1500,
            rounds: 120,
            wall_ms: 600.0,
            cmds_per_sec: 2500.0,
            p50_us: 4000,
            p90_us: 8000,
            p99_us: 12000,
            p999_us: 16000,
            wal_bytes: 65536,
            wal_syncs: 40,
            snapshots: 6,
            vs_memory: 0.82,
            ingest_frames: 900,
            order_us_p50: 350,
            fsync_us_p50: 180,
            persist_stalls: 2,
            spans: 300,
            span_order_p50_us: 410,
            span_order_p99_us: 1900,
            span_persist_wait_p50_us: 12,
            span_persist_wait_p99_us: 95,
            span_persist_svc_p50_us: 210,
            span_persist_svc_p99_us: 4100,
        }
        .to_json();
        for needle in [
            "\"mode\":\"durable(durable-ack,fsync=5ms)\"",
            "\"acked_cmds\":1500",
            "\"wal_syncs\":40",
            "\"vs_memory\":0.8200",
            "\"ingest_frames\":900",
            "\"order_us_p50\":350",
            "\"fsync_us_p50\":180",
            "\"persist_stalls\":2",
            "\"spans\":300",
            "\"span_order_p50_us\":410",
            "\"span_order_p99_us\":1900",
            "\"span_persist_wait_p50_us\":12",
            "\"span_persist_wait_p99_us\":95",
            "\"span_persist_svc_p50_us\":210",
            "\"span_persist_svc_p99_us\":4100",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn writer_emits_valid_array_shape() {
        let mut w = ResultsWriter::new();
        assert_eq!(w.to_json(), "[\n]\n");
        w.push(row());
        w.push(row());
        let j = w.to_json();
        assert_eq!(w.rows().len(), 2);
        assert!(j.starts_with("[\n  {"));
        assert!(j.trim_end().ends_with(']'));
        assert_eq!(j.matches("\"algo\"").count(), 2);
        assert_eq!(j.matches("},\n").count(), 1, "comma between rows only");
    }

    #[test]
    fn writer_round_trips_through_fs() {
        let mut w = ResultsWriter::new();
        w.push(row());
        let path = std::env::temp_dir().join("gencon_load_results_test.json");
        w.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, w.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
