//! A log-bucketed, mergeable latency histogram.
//!
//! HDR-style log-linear bucketing: values below 2·2⁵ = 64 are recorded
//! exactly; above, each power-of-two octave is split into 2⁵ = 32
//! sub-buckets, bounding the relative quantile error at 1/32 ≈ 3.1% while
//! keeping the whole `u64` range in under 2k fixed-size buckets. Histograms
//! merge by bucket-wise addition, so per-shard recordings aggregate without
//! loss beyond the shared bucketing.

/// Sub-bucket resolution: 2^SUB sub-buckets per octave.
const SUB: u32 = 5;
/// Values below this are their own bucket (exact).
const LINEAR_MAX: u64 = 1 << (SUB + 1);

/// Log-bucketed histogram of `u64` samples (latencies in rounds, micros, …).
///
/// ```
/// use gencon_load::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.quantile(0.5), 50);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index of `v`.
fn index_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB + 1
    let octave = msb - SUB; // ≥ 1
    let sub = (v >> (msb - SUB)) as usize - (1 << SUB); // 0..2^SUB
    LINEAR_MAX as usize + ((octave as usize - 1) << SUB) + sub
}

/// Upper edge of bucket `idx` (the value a quantile in this bucket reports —
/// conservative: never underestimates the true sample).
fn value_of(idx: usize) -> u64 {
    if (idx as u64) < LINEAR_MAX {
        return idx as u64;
    }
    let rel = idx - LINEAR_MAX as usize;
    let octave = (rel >> SUB) as u32 + 1;
    let sub = (rel & ((1 << SUB) - 1)) as u64;
    let width = 1u64 << octave; // bucket width in this octave
    let lower = ((1u64 << SUB) + sub) << octave;
    // (width - 1) first: for the top bucket `lower + width` is 2^64.
    lower + (width - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = index_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the smallest bucket upper edge
    /// such that at least `⌈q·count⌉` samples fall at or below it. Exact
    /// below 64; within 3.2% above. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report beyond the true max (upper edges round up).
                return value_of(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..LINEAR_MAX {
            assert_eq!(value_of(index_of(v)), v);
        }
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 25);
        assert_eq!(h.quantile(1.0), 50);
        assert_eq!(h.quantile(0.02), 1);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 25.5).abs() < 1e-9);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.9), u64::MAX);
        assert_eq!(h.quantile(0.01), 1);
    }

    #[test]
    fn large_values_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            let idx = index_of(v);
            let rep = value_of(idx);
            assert!(rep >= v, "upper edge covers the sample: {rep} >= {v}");
            assert!(
                (rep - v) as f64 <= v as f64 / 16.0,
                "{v} → {rep} exceeds bucket error"
            );
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), u64::MAX / 2);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 100_000;
            h.record(x);
        }
        let qs: Vec<u64> = [0.1, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99() && h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 1..=500u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v * 100);
            }
            all.record(if v % 2 == 0 { v } else { v * 100 });
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.min(), all.min());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn record_n_counts() {
        let mut h = LatencyHistogram::new();
        h.record_n(7, 99);
        h.record_n(9, 0);
        h.record(1000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 7);
        assert!(h.p999() >= 1000);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bad_q() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }
}
