//! The cluster-monitoring load driver: experiment **E14**'s engine.
//!
//! [`run_mon_load`] runs a durable cluster like
//! [`run_store_load`](crate::run_store_load) — one event-loop node
//! thread per replica over an in-process channel mesh, each wrapping a
//! real [`FileWal`](gencon_store::FileWal) — but gives **every** node
//! its own metrics registry, history sampler, state-hash cell and admin
//! endpoint, then attaches a [`Monitor`](gencon_server::mon::Monitor)
//! that polls the cluster exactly as the `gencon-mon` binary would.
//!
//! Mid-run the driver rehearses a node death: it flips the victim's
//! admin endpoint offline (accepted connections are dropped — to the
//! monitor the node is gone), waits for the watchdog's `unreachable`
//! alert, brings the endpoint back, and waits for
//! `straggler-recovered`. The final report then proves the other half
//! of the tentpole: every node published state hashes at the same
//! snapshot-boundary applied counts, and they agree at the max common
//! one — the cluster is demonstrably *not* diverging, with the evidence
//! in one JSON object.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gencon_app::{Folder, LogApp};
use gencon_core::Params;
use gencon_metrics::{HistoryRing, Registry};
use gencon_net::{ChannelTransport, Transport};
use gencon_server::mon::{
    trace_pull, Alert, AlertKind, ClusterReport, MonConfig, Monitor, TracePull,
    CLOCK_SAMPLES_DEFAULT,
};
use gencon_server::{
    run_smr_node_observed, spawn_admin_gated, AdminState, DurableConfig, DurableNode, NodeHook,
    NodeStats, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{FileWal, WalConfig};
use gencon_trace::{FlightRecorder, HashCell, PeerTable};

use crate::workload::{ClosedLoop, Workload};

/// One monitored-cluster run configuration.
#[derive(Clone, Debug)]
pub struct MonLoadProfile {
    /// Clients attached to each replica (closed loop).
    pub clients_per_replica: u16,
    /// Outstanding commands per client.
    pub outstanding: u32,
    /// Max commands per proposed batch.
    pub batch_cap: usize,
    /// Slot pipelining window.
    pub window: usize,
    /// Commands each replica must ack before reporting done.
    pub commit_target: usize,
    /// Hard stop, in rounds per node.
    pub max_rounds: u64,
    /// Group-commit window for each node's WAL.
    pub fsync_interval: Duration,
    /// Snapshot + hash-publication period in slots.
    pub snapshot_every: u64,
    /// Monitor poll cadence (also the history sampler interval).
    pub poll_interval: Duration,
    /// Node whose admin endpoint the driver takes down mid-run.
    pub kill_node: usize,
    /// Healthy polls before the endpoint goes dark.
    pub polls_before_kill: u64,
    /// Cap on polls spent waiting for each watchdog transition.
    pub max_wait_polls: u64,
    /// Data-dir root (a fresh subdir per node); a process-unique temp
    /// dir when `None`.
    pub data_root: Option<PathBuf>,
    /// Flight-recorder ring capacity per node (events). Must cover the
    /// whole run for the post-run stitch to see every committed slot.
    pub trace_events: usize,
}

impl MonLoadProfile {
    /// A sensible default for in-process smoke runs.
    #[must_use]
    pub fn new(commit_target: usize) -> Self {
        MonLoadProfile {
            clients_per_replica: 4,
            outstanding: 4,
            batch_cap: 16,
            window: 4,
            commit_target,
            max_rounds: 200_000,
            fsync_interval: Duration::from_millis(5),
            snapshot_every: 32,
            poll_interval: Duration::from_millis(100),
            kill_node: 1,
            polls_before_kill: 2,
            max_wait_polls: 100,
            data_root: None,
            trace_events: 1 << 17,
        }
    }
}

/// What one [`run_mon_load`] execution produced.
#[derive(Clone, Debug)]
pub struct MonLoadReport {
    /// Every alert the watchdog raised, in firing order.
    pub alerts: Vec<Alert>,
    /// The last cluster report, taken after every node finished.
    pub final_report: ClusterReport,
    /// Polls the monitor ran.
    pub polls: u64,
    /// Whether every replica acked at least the commit target.
    pub all_reached_target: bool,
    /// Whether the final report found state hashes agreeing at a common
    /// applied count across all nodes.
    pub hashes_agree: bool,
    /// Per-node event-loop statistics.
    pub stats: Vec<NodeStats>,
    /// The post-run cross-node trace pull: clock estimates and stitched
    /// cluster slot spans (experiment E15).
    pub trace: TracePull,
    /// Stitched cluster spans ÷ max committed slots — how much of the
    /// run the autopsy actually explains.
    pub stitched_ratio: f64,
}

impl MonLoadReport {
    /// Whether the kill choreography played out: `unreachable` fired
    /// for the victim, then `straggler-recovered` after it came back.
    #[must_use]
    pub fn saw_kill_and_recovery(&self, victim: usize) -> bool {
        let died = self
            .alerts
            .iter()
            .position(|a| a.kind == AlertKind::Unreachable && a.node == Some(victim));
        let back = self
            .alerts
            .iter()
            .position(|a| a.kind == AlertKind::StragglerRecovered && a.node == Some(victim));
        matches!((died, back), (Some(d), Some(b)) if d < b)
    }

    /// Decide-skew `(p50, p99)` in µs over the stitched spans.
    #[must_use]
    pub fn decide_skew_pcts(&self) -> (Option<u64>, Option<u64>) {
        let mut v = self.trace.decide_skews();
        (
            gencon_trace::percentile_us(&mut v, 50.0),
            gencon_trace::percentile_us(&mut v, 99.0),
        )
    }

    /// Worst-node quorum-wait `(p50, p99)` in µs over the stitched
    /// spans.
    #[must_use]
    pub fn quorum_wait_pcts(&self) -> (Option<u64>, Option<u64>) {
        let mut v = self.trace.quorum_waits();
        (
            gencon_trace::percentile_us(&mut v, 50.0),
            gencon_trace::percentile_us(&mut v, 99.0),
        )
    }
}

/// Closed-loop workload + done-counting hook (the gate makes "acked"
/// mean durably acked, as in `run_store_load`).
struct MonLoadHook {
    workload: ClosedLoop,
    gate: Arc<AtomicU64>,
    target: usize,
    n: usize,
    marked_done: bool,
    done: Arc<AtomicUsize>,
}

impl NodeHook<u64> for MonLoadHook {
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<u64>) {
        let arrivals =
            self.workload
                .arrivals_from(round, replica.applied_base(), replica.applied());
        if !arrivals.is_empty() {
            replica.submit_all(arrivals);
        }
    }

    fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
        let acked = (self.gate.load(Ordering::SeqCst) as usize).min(replica.applied_len());
        if !self.marked_done && acked >= self.target {
            self.marked_done = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        self.done.load(Ordering::SeqCst) >= self.n
    }
}

/// Runs a durable cluster with per-node admin endpoints and a live
/// monitor, rehearsing an admin-endpoint death mid-run (see the module
/// docs).
///
/// # Panics
///
/// Panics if a data dir or admin endpoint cannot be created, or a node
/// thread dies.
#[allow(clippy::too_many_lines)]
pub fn run_mon_load(params: &Params<Batch<u64>>, profile: &MonLoadProfile) -> MonLoadReport {
    let n = params.cfg.n();
    assert!(profile.kill_node < n, "kill_node out of range");
    let done = Arc::new(AtomicUsize::new(0));
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(30),
        min_round_timeout: Duration::from_millis(1),
        max_round_timeout: Duration::from_millis(500),
        max_rounds: profile.max_rounds,
        stop_after_commands: None,
    };
    let data_root = profile.data_root.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("gencon-mon-load-{}", std::process::id()))
    });

    // Every node gets the full observability kit: registry, sampler,
    // hash cell, peer table, and a gated admin endpoint on its own port.
    let mut addrs = Vec::with_capacity(n);
    let mut offline = Vec::with_capacity(n);
    let mut kits = Vec::with_capacity(n);
    for node_id in 0..n {
        let registry = Registry::new();
        let peers = PeerTable::new(n);
        let hashes = HashCell::new();
        let history = HistoryRing::new(64);
        history.spawn_sampler(registry.clone(), profile.poll_interval);
        let gate = Arc::new(AtomicBool::new(false));
        // The recorder is shared between the node (which records into
        // it) and the admin endpoint (whose `spans`/`clock` commands
        // the post-run trace pull reads).
        let recorder = FlightRecorder::new(profile.trace_events);
        let state = AdminState {
            node_id,
            registry: registry.clone(),
            recorder: recorder.clone(),
            peers: peers.clone(),
            history,
            hashes: hashes.clone(),
            slow_cmds: gencon_trace::SlowCmdRing::new(),
            io_timeout: Duration::from_secs(2),
        };
        let addr = spawn_admin_gated("127.0.0.1:0".parse().expect("addr"), state, gate.clone())
            .expect("bind admin endpoint");
        addrs.push(addr);
        offline.push(gate);
        kits.push((registry, peers, hashes, recorder));
    }

    let mut handles = Vec::with_capacity(n);
    for (i, tr) in ChannelTransport::mesh(n).into_iter().enumerate() {
        let params = params.clone();
        let profile = profile.clone();
        let dir = data_root.join(format!("node{i}"));
        let (registry, peers, hashes, recorder) = kits[i].clone();
        let gate = Arc::new(AtomicU64::new(0));
        let hook = MonLoadHook {
            workload: ClosedLoop::new(i as u16, profile.clients_per_replica, profile.outstanding),
            gate: Arc::clone(&gate),
            target: profile.commit_target,
            n,
            marked_done: false,
            done: Arc::clone(&done),
        };
        handles.push(std::thread::spawn(move || {
            let replica = BatchingReplica::new(tr.local(), params, profile.batch_cap, usize::MAX)
                .expect("validated params")
                .with_window(profile.window);
            let (wal, _recovery) = FileWal::open(
                &dir,
                WalConfig {
                    fsync_interval: profile.fsync_interval,
                    ..WalConfig::default()
                },
            )
            .expect("open wal");
            let node = DurableNode::new(
                wal,
                DurableConfig {
                    snapshot_every: profile.snapshot_every,
                    snapshot_tail: 32,
                    durable_ack: true,
                },
                Folder::<LogApp<u64>>::default(),
                hook,
            )
            .with_gate(gate)
            .with_metrics(&registry)
            .with_hash_cell(hashes);
            let (replica, _t, stats, _node) = run_smr_node_observed(
                replica,
                tr,
                cfg,
                node,
                Some(&registry),
                Some(&recorder),
                Some(&peers),
            );
            (replica, stats)
        }));
    }

    // The monitor runs in this thread, exactly as gencon-mon would:
    // healthy polls, then the kill choreography, then drain to the end.
    let admin_addrs = addrs.clone();
    let mut mon = Monitor::new(
        addrs,
        MonConfig {
            interval: profile.poll_interval,
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(1_000),
            stall_polls: 5,
            // In-process nodes march in lockstep; only the rehearsed
            // death should alert, not scheduling jitter.
            straggler_slots: u64::MAX,
            straggler_rounds: u64::MAX,
            ..MonConfig::default()
        },
    );
    let mut alerts: Vec<Alert> = Vec::new();
    let poll = |mon: &mut Monitor, alerts: &mut Vec<Alert>| {
        let report = mon.poll_once();
        alerts.extend(report.alerts.iter().cloned());
        std::thread::sleep(profile.poll_interval);
        report
    };

    for _ in 0..profile.polls_before_kill {
        poll(&mut mon, &mut alerts);
    }
    offline[profile.kill_node].store(true, Ordering::Relaxed);
    let mut waited = 0;
    while waited < profile.max_wait_polls
        && !alerts
            .iter()
            .any(|a| a.kind == AlertKind::Unreachable && a.node == Some(profile.kill_node))
    {
        poll(&mut mon, &mut alerts);
        waited += 1;
    }
    offline[profile.kill_node].store(false, Ordering::Relaxed);
    waited = 0;
    while waited < profile.max_wait_polls
        && !alerts
            .iter()
            .any(|a| a.kind == AlertKind::StragglerRecovered && a.node == Some(profile.kill_node))
    {
        poll(&mut mon, &mut alerts);
        waited += 1;
    }
    while handles.iter().any(|h| !h.is_finished()) {
        poll(&mut mon, &mut alerts);
    }

    let results: Vec<(BatchingReplica<u64>, NodeStats)> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();

    // E15: with the cluster quiesced (recorders hold the whole run),
    // estimate every node's clock and stitch the cross-node autopsy —
    // exactly what `gencon-mon trace-pull` does against live nodes.
    let trace = trace_pull(
        &admin_addrs,
        profile.trace_events,
        CLOCK_SAMPLES_DEFAULT,
        &MonConfig::default(),
    );

    // One last poll against the quiesced cluster: gauges and hash cells
    // hold their final values, so this is the run's verdict.
    let final_report = poll(&mut mon, &mut alerts);
    let hashes_agree = final_report
        .agreement
        .as_ref()
        .is_some_and(|a| a.agreed && a.hashes.len() == n);
    let all_reached_target = results
        .iter()
        .all(|(rep, _)| rep.applied_len() >= profile.commit_target);

    if profile.data_root.is_none() {
        std::fs::remove_dir_all(&data_root).ok();
    }
    let stitched_ratio = if final_report.max_committed == 0 {
        0.0
    } else {
        trace.spans.len() as f64 / final_report.max_committed as f64
    };
    MonLoadReport {
        alerts,
        polls: final_report.poll,
        final_report,
        all_reached_target,
        hashes_agree,
        stats: results.into_iter().map(|(_, s)| s).collect(),
        trace,
        stitched_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::pbft;

    #[test]
    fn monitored_cluster_sees_kill_recovery_and_hash_agreement() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let mut profile = MonLoadProfile::new(240);
        profile.poll_interval = Duration::from_millis(50);
        let report = run_mon_load(&spec.params, &profile);

        assert!(report.all_reached_target, "stats: {:?}", report.stats);
        assert!(
            report.saw_kill_and_recovery(profile.kill_node),
            "alerts: {:?}",
            report.alerts
        );
        assert!(
            report.hashes_agree,
            "final agreement: {:?}",
            report.final_report.agreement
        );
        // No divergence anywhere: honest replicas fold identical states.
        assert!(
            report
                .alerts
                .iter()
                .all(|a| a.kind != AlertKind::Divergence),
            "alerts: {:?}",
            report.alerts
        );
        // The final report serializes with the agreement evidence.
        let json = report.final_report.to_json();
        assert!(json.contains("\"agreed\":true"), "{json}");

        // E15: the post-run trace pull explains (nearly) the whole run —
        // every node reachable with a clock estimate, ≥90 % of committed
        // slots stitched, and finite cross-node latency percentiles.
        assert!(
            report.trace.nodes.iter().all(|p| p.reachable),
            "trace pull missed nodes: {:?}",
            report.trace.nodes
        );
        assert!(
            report.trace.nodes.iter().all(|p| p.clock.is_some()),
            "clock estimate missing: {:?}",
            report.trace.nodes
        );
        assert!(
            report.stitched_ratio >= 0.9,
            "stitched {} spans for {} committed slots",
            report.trace.spans.len(),
            report.final_report.max_committed
        );
        let (skew_p50, skew_p99) = report.decide_skew_pcts();
        assert!(
            skew_p50.is_some() && skew_p99.is_some(),
            "no decide-skew percentiles from {} spans",
            report.trace.spans.len()
        );
        let (wait_p50, _) = report.quorum_wait_pcts();
        assert!(
            wait_p50.is_some(),
            "no quorum-wait percentiles from {} spans",
            report.trace.spans.len()
        );
    }
}
