//! The command-path tracing driver: experiment **E16**'s engine.
//!
//! [`run_cmd_load`] runs an in-process cluster whose gateways are the
//! real thing — every node serves clients over localhost TCP through a
//! [`ClientGateway`], exactly as `gencon-server` does — and drives two
//! closed-loop client populations against it:
//!
//! * the **coordinator population** submits to node 0 (whose queued
//!   commands ride its own proposals most rounds), and
//! * the **relay population** submits to node `n-1` (a follower most
//!   rounds, so its commands reach the log by relay: `Relayed` at the
//!   follower, `RelayMerged` at whoever batches them).
//!
//! With tracing on, every command's lifecycle is stamped from `Submitted`
//! to `CmdAcked`; post-run the driver assembles per-node
//! [`CmdSpan`]s, splits the two populations by command namespace, and
//! reports per-segment p50/p99 for each — the relay-path latency
//! penalty versus the coordinator path, measured, not guessed. The same
//! run is then pulled and stitched cluster-wide through the admin
//! endpoints via [`trace_pull_cmds`], mapping relay hops across nodes
//! with the clock uncertainty carried.
//!
//! With tracing off the run is otherwise identical, which is how the
//! `loadgen_cmd` binary quantifies the tracing overhead itself.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use gencon_app::{Applier, LogApp};
use gencon_core::Params;
use gencon_metrics::{HistoryRing, Registry, SloTracker};
use gencon_net::{ChannelTransport, Transport};
use gencon_server::mon::{trace_pull_cmds, CmdPull, MonConfig, CLOCK_SAMPLES_DEFAULT};
use gencon_server::{
    read_frame, spawn_admin, write_frame, AdminState, ClientGateway, ClientRequest, ClientResponse,
    GatewayConfig, NodeStats, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_trace::{
    assemble_cmd_spans, assemble_spans, percentile_us, CmdSpan, FlightRecorder, HashCell,
    PeerTable, SlowCmdRing,
};

use crate::workload::encode_cmd;

/// One command-tracing run configuration.
#[derive(Clone, Debug)]
pub struct CmdLoadProfile {
    /// Logical clients per population (each population drives one node).
    pub clients: u16,
    /// Outstanding commands per client.
    pub outstanding: u32,
    /// Commands each population submits in total.
    pub count: u64,
    /// Max commands per proposed batch.
    pub batch_cap: usize,
    /// Slot pipelining window.
    pub window: usize,
    /// Hard stop, in rounds per node.
    pub max_rounds: u64,
    /// Whether the flight recorders (and command stamps) are attached.
    pub traced: bool,
    /// Flight-recorder ring capacity per node (events); must cover the
    /// run for the post-run assembly to see every command.
    pub trace_events: usize,
    /// SLO p99 budget handed to the gateways' [`SloTracker`]s, in µs
    /// (0 disables).
    pub slo_p99_us: u64,
    /// History sampler cadence (backs the admin `history` command the
    /// SLO burn windows read).
    pub history_interval: Duration,
    /// Client-side wait ceiling for the next ack.
    pub ack_timeout: Duration,
}

impl CmdLoadProfile {
    /// A sensible default for in-process smoke runs.
    #[must_use]
    pub fn new(count: u64) -> Self {
        CmdLoadProfile {
            clients: 4,
            outstanding: 4,
            count,
            batch_cap: 16,
            window: 4,
            max_rounds: 400_000,
            traced: true,
            trace_events: 1 << 17,
            slo_p99_us: 0,
            history_interval: Duration::from_millis(100),
            ack_timeout: Duration::from_secs(60),
        }
    }
}

/// `(p50, p99)` in µs over one [`CmdSpan`] segment, with the sample
/// count the percentiles rest on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentPcts {
    /// Spans that carried the segment.
    pub count: usize,
    /// Median, µs.
    pub p50_us: Option<u64>,
    /// 99th percentile, µs.
    pub p99_us: Option<u64>,
}

impl SegmentPcts {
    fn over(spans: &[CmdSpan], seg: impl Fn(&CmdSpan) -> Option<u64>) -> SegmentPcts {
        let mut v: Vec<u64> = spans.iter().filter_map(seg).collect();
        SegmentPcts {
            count: v.len(),
            p50_us: percentile_us(&mut v, 50.0),
            p99_us: percentile_us(&mut v, 99.0),
        }
    }

    fn to_json(self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
            self.count,
            opt(self.p50_us),
            opt(self.p99_us)
        )
    }
}

/// What one client population measured, client side and span side.
#[derive(Clone, Debug)]
pub struct PopulationStats {
    /// `"coordinator"` or `"relay"`.
    pub label: String,
    /// Node the population's clients connected to.
    pub node: usize,
    /// Commands acked back to the clients.
    pub acked: u64,
    /// Backpressure bounces the clients absorbed.
    pub backpressured: u64,
    /// Client-observed submit→ack latency `(p50, p99)` µs.
    pub client_e2e: SegmentPcts,
    /// Spans assembled for the population at its gateway node.
    pub spans: usize,
    /// Of those, spans that left on the relay path.
    pub relayed_spans: usize,
    /// Gateway-queue wait (submitted→queued).
    pub queue_wait: SegmentPcts,
    /// Queued→batched (how long the command sat before a proposal took
    /// it — absent for commands batched elsewhere).
    pub batch_wait: SegmentPcts,
    /// Batched→decided (consensus).
    pub order: SegmentPcts,
    /// Decided→durable-gate clearance (absent in memory mode).
    pub persist_gate_wait: SegmentPcts,
    /// Gate clearance→acked.
    pub ack: SegmentPcts,
    /// Submitted→acked, from the stamps.
    pub e2e: SegmentPcts,
}

impl PopulationStats {
    /// The population as one flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"node\":{},\"acked\":{},\"backpressured\":{},\
             \"client_e2e\":{},\"spans\":{},\"relayed_spans\":{},\"queue_wait\":{},\
             \"batch_wait\":{},\"order\":{},\"persist_gate_wait\":{},\"ack\":{},\"e2e\":{}}}",
            self.label,
            self.node,
            self.acked,
            self.backpressured,
            self.client_e2e.to_json(),
            self.spans,
            self.relayed_spans,
            self.queue_wait.to_json(),
            self.batch_wait.to_json(),
            self.order.to_json(),
            self.persist_gate_wait.to_json(),
            self.ack.to_json(),
            self.e2e.to_json(),
        )
    }
}

/// What one [`run_cmd_load`] execution produced.
#[derive(Clone, Debug)]
pub struct CmdLoadReport {
    /// The population submitting at node 0.
    pub coordinator: PopulationStats,
    /// The population submitting at node `n-1`.
    pub relay: PopulationStats,
    /// The cluster-wide pull and stitch through the admin endpoints
    /// (empty when the run was untraced).
    pub pull: CmdPull,
    /// Commands acked across both populations.
    pub acked: u64,
    /// Wall clock from first client byte to last ack.
    pub wall: Duration,
    /// Per-node event-loop statistics.
    pub stats: Vec<NodeStats>,
}

impl CmdLoadReport {
    /// Acked commands per second across both populations.
    #[must_use]
    pub fn cmds_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.acked as f64 / secs
        }
    }
}

/// What one population's client threads brought home.
struct ClientsReport {
    acked: u64,
    backpressured: u64,
    latencies_us: Vec<u64>,
}

/// Drives one closed-loop population against a gateway over real TCP:
/// `clients` logical clients multiplexed on one connection, each keeping
/// `outstanding` commands in flight, until `count` commands are acked.
fn drive_population(addr: SocketAddr, namespace: u16, profile: &CmdLoadProfile) -> ClientsReport {
    let mut stream = TcpStream::connect(addr).expect("connect gateway");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(profile.ack_timeout))
        .expect("read timeout");
    let mut next_seq = vec![0u32; profile.clients as usize];
    let mut submitted: HashMap<u64, Instant> = HashMap::new();
    let mut latencies_us = Vec::with_capacity(profile.count as usize);
    let mut backpressured: u64 = 0;
    let mut issued: u64 = 0;

    let submit = |stream: &mut TcpStream, submitted: &mut HashMap<u64, Instant>, cmd: u64| {
        submitted.entry(cmd).or_insert_with(Instant::now);
        write_frame(stream, &ClientRequest::Submit { cmd }).expect("gateway connection");
    };
    'prime: for c in 0..profile.clients {
        for _ in 0..profile.outstanding {
            if issued >= profile.count {
                break 'prime;
            }
            let cmd = encode_cmd(namespace, c, next_seq[c as usize]);
            next_seq[c as usize] += 1;
            issued += 1;
            submit(&mut stream, &mut submitted, cmd);
        }
    }

    while (latencies_us.len() as u64) < profile.count {
        let resp: ClientResponse<u64, u64> = read_frame(&mut stream).expect("ack within timeout");
        match resp {
            ClientResponse::Committed { cmd, .. } => {
                let Some(sent) = submitted.remove(&cmd) else {
                    continue; // duplicate ack
                };
                latencies_us.push(sent.elapsed().as_micros().max(1) as u64);
                if issued < profile.count {
                    let c = ((cmd >> 32) & 0xFFFF) as u16;
                    let next = encode_cmd(namespace, c, next_seq[c as usize]);
                    next_seq[c as usize] += 1;
                    issued += 1;
                    submit(&mut stream, &mut submitted, next);
                }
            }
            ClientResponse::Backpressure { cmd, .. } => {
                backpressured += 1;
                std::thread::sleep(Duration::from_millis(1 << backpressured.min(6)));
                submit(&mut stream, &mut submitted, cmd);
            }
            ClientResponse::Redirect { .. } => {
                unreachable!("no redirect configured in the cmd driver")
            }
        }
    }
    ClientsReport {
        acked: latencies_us.len() as u64,
        backpressured,
        latencies_us,
    }
}

/// Splits one node's assembled spans down to a population and summarizes
/// every segment.
fn population_stats(
    label: &str,
    node: usize,
    namespace: u16,
    spans: &[CmdSpan],
    clients: &ClientsReport,
) -> PopulationStats {
    let own: Vec<CmdSpan> = spans
        .iter()
        .filter(|s| (s.cmd >> 48) as u16 == namespace)
        .cloned()
        .collect();
    let mut lat = clients.latencies_us.clone();
    PopulationStats {
        label: label.to_string(),
        node,
        acked: clients.acked,
        backpressured: clients.backpressured,
        client_e2e: SegmentPcts {
            count: lat.len(),
            p50_us: percentile_us(&mut lat, 50.0),
            p99_us: percentile_us(&mut lat, 99.0),
        },
        spans: own.len(),
        relayed_spans: own.iter().filter(|s| s.relayed_ts_us.is_some()).count(),
        queue_wait: SegmentPcts::over(&own, |s| s.queue_wait_us),
        batch_wait: SegmentPcts::over(&own, |s| s.batch_wait_us),
        order: SegmentPcts::over(&own, |s| s.order_us),
        persist_gate_wait: SegmentPcts::over(&own, |s| s.persist_gate_wait_us),
        ack: SegmentPcts::over(&own, |s| s.ack_us),
        e2e: SegmentPcts::over(&own, |s| s.e2e_us),
    }
}

/// Runs the two-population traced cluster (see the module docs).
///
/// # Panics
///
/// Panics if an endpoint cannot be bound, a client loses its gateway, or
/// a node thread dies.
#[allow(clippy::too_many_lines)]
pub fn run_cmd_load(params: &Params<Batch<u64>>, profile: &CmdLoadProfile) -> CmdLoadReport {
    let n = params.cfg.n();
    assert!(n >= 2, "the relay population needs a second node");
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(30),
        min_round_timeout: Duration::from_millis(1),
        max_round_timeout: Duration::from_millis(500),
        max_rounds: profile.max_rounds,
        // Every command reaches every log; nodes quiesce when both
        // populations' commands are applied.
        stop_after_commands: Some(usize::try_from(profile.count * 2).expect("count fits")),
    };
    let gateway_cfg = GatewayConfig {
        backpressure_limit: 65_536,
        redirect_to: None,
        write_timeout: Duration::from_millis(500),
        reack_index_cap: 1 << 20,
    };

    // Every node: registry, recorder, slow ring, admin endpoint, and a
    // real TCP gateway — the full `gencon-server` observability kit.
    let mut admin_addrs = Vec::with_capacity(n);
    let mut client_addrs = Vec::with_capacity(n);
    let mut gateways = Vec::with_capacity(n);
    let mut kits = Vec::with_capacity(n);
    for node_id in 0..n {
        let registry = Registry::new();
        let peers = PeerTable::new(n);
        let recorder = FlightRecorder::new(profile.trace_events);
        let slow_ring = SlowCmdRing::new();
        let history = HistoryRing::new(64);
        history.spawn_sampler(registry.clone(), profile.history_interval);
        let state = AdminState {
            node_id,
            registry: registry.clone(),
            recorder: recorder.clone(),
            peers: peers.clone(),
            history,
            hashes: HashCell::new(),
            slow_cmds: slow_ring.clone(),
            io_timeout: Duration::from_secs(2),
        };
        let addr =
            spawn_admin("127.0.0.1:0".parse().expect("addr"), state).expect("bind admin endpoint");
        admin_addrs.push(addr);

        let mut gateway =
            ClientGateway::<LogApp<u64>>::listen("127.0.0.1:0".parse().expect("addr"), gateway_cfg)
                .expect("bind gateway")
                .with_metrics(&registry)
                .with_slow_ring(slow_ring);
        if profile.traced {
            gateway = gateway.with_trace(recorder.clone());
        }
        if profile.slo_p99_us > 0 {
            gateway = gateway.with_slo(SloTracker::new(&registry, profile.slo_p99_us));
        }
        let gateway = gateway.with_applier(Applier::default());
        client_addrs.push(gateway.local_addr());
        gateways.push(Some(gateway));
        kits.push((registry, peers, recorder));
    }

    let mut handles = Vec::with_capacity(n);
    for (i, tr) in ChannelTransport::mesh(n).into_iter().enumerate() {
        let params = params.clone();
        let profile = profile.clone();
        let gateway = gateways[i].take().expect("gateway built above");
        let (registry, peers, recorder) = kits[i].clone();
        let traced = profile.traced;
        handles.push(std::thread::spawn(move || {
            let replica = BatchingReplica::new(tr.local(), params, profile.batch_cap, usize::MAX)
                .expect("validated params")
                .with_window(profile.window);
            let (_replica, _t, stats, _gateway) = gencon_server::run_smr_node_observed(
                replica,
                tr,
                cfg,
                gateway,
                Some(&registry),
                traced.then_some(&recorder),
                Some(&peers),
            );
            stats
        }));
    }

    // The two populations, on their own threads speaking real TCP.
    let started = Instant::now();
    let relay_node = n - 1;
    let coord = {
        let addr = client_addrs[0];
        let profile = profile.clone();
        std::thread::spawn(move || drive_population(addr, 0, &profile))
    };
    let relay = {
        let addr = client_addrs[relay_node];
        let profile = profile.clone();
        let ns = relay_node as u16;
        std::thread::spawn(move || drive_population(addr, ns, &profile))
    };
    let coord = coord.join().expect("coordinator population");
    let relay = relay.join().expect("relay population");
    let wall = started.elapsed();

    // Cluster stitch first (the admin endpoints die with the process,
    // not the node threads, so order only matters for clarity), then
    // join the nodes and assemble each population's local spans.
    let pull = if profile.traced {
        trace_pull_cmds(
            &admin_addrs,
            profile.trace_events,
            CLOCK_SAMPLES_DEFAULT,
            &MonConfig::default(),
        )
    } else {
        CmdPull {
            nodes: Vec::new(),
            spans: Vec::new(),
            slowest: Vec::new(),
        }
    };
    let stats: Vec<NodeStats> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();

    let spans_at = |node: usize| -> Vec<CmdSpan> {
        if !profile.traced {
            return Vec::new();
        }
        let events = kits[node].2.tail(profile.trace_events);
        let slots = assemble_spans(&events);
        assemble_cmd_spans(&events, &slots)
    };
    let coordinator = population_stats("coordinator", 0, 0, &spans_at(0), &coord);
    let relay = population_stats(
        "relay",
        relay_node,
        relay_node as u16,
        &spans_at(relay_node),
        &relay,
    );

    CmdLoadReport {
        acked: coordinator.acked + relay.acked,
        coordinator,
        relay,
        pull,
        wall,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::pbft;

    #[test]
    fn traced_cluster_spans_both_paths_and_stitches_relay_hops() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let mut profile = CmdLoadProfile::new(240);
        profile.slo_p99_us = 5_000_000; // generous: every ack is "good"
        let report = run_cmd_load(&spec.params, &profile);

        assert_eq!(report.coordinator.acked, 240);
        assert_eq!(report.relay.acked, 240);
        assert!(report.cmds_per_sec() > 0.0);

        // Every locally-acked command produced a span with the e2e
        // segment, and the populations split cleanly by namespace.
        assert!(
            report.coordinator.spans >= 200,
            "coordinator spans: {:?}",
            report.coordinator
        );
        assert!(report.relay.spans >= 200, "relay spans: {:?}", report.relay);
        assert!(report.coordinator.e2e.p50_us.is_some());
        assert!(report.relay.e2e.p50_us.is_some());
        assert!(report.coordinator.queue_wait.count > 0);

        // The follower population actually exercised the relay path.
        assert!(
            report.relay.relayed_spans > 0,
            "no relayed spans at the follower: {:?}",
            report.relay
        );

        // The cluster pull stitched commands with at least one relay
        // hop mapped across nodes, uncertainty carried.
        assert!(!report.pull.spans.is_empty());
        let hops: usize = report.pull.spans.iter().map(|s| s.hops.len()).sum();
        assert!(
            hops > 0,
            "no relay hops stitched: {}",
            report.pull.summary_json()
        );
        let summary = report.pull.summary_json();
        assert!(summary.contains("\"relay_e2e_p50_us\":"), "{summary}");
        assert!(summary.contains("\"max_uncertainty_us\":"), "{summary}");

        // The gateways fed the exemplar rings; the pull merged them.
        assert!(!report.pull.slowest.is_empty());

        // JSON rendering holds every population segment.
        let j = report.relay.to_json();
        for needle in [
            "\"queue_wait\":{",
            "\"order\":{",
            "\"e2e\":{",
            "\"relayed_spans\":",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn untraced_run_still_serves_both_populations() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let mut profile = CmdLoadProfile::new(120);
        profile.traced = false;
        let report = run_cmd_load(&spec.params, &profile);
        assert_eq!(report.acked, 240);
        assert_eq!(report.coordinator.spans, 0);
        assert!(report.pull.spans.is_empty());
        assert!(report.coordinator.client_e2e.p50_us.is_some());
    }
}
