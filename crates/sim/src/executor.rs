//! The lock-step round executor.
//!
//! [`Simulation`] drives a set of participants — honest [`RoundProcess`]es,
//! Byzantine [`Adversary`]s, and crash-scheduled processes — through closed
//! rounds over a [`NetworkModel`]. It enforces the system model of §2.1:
//!
//! * rounds are closed (messages live exactly one round);
//! * honest processes cannot be impersonated (messages are attributed to
//!   their true senders by construction);
//! * in *good* rounds the communication predicate the algorithm declares
//!   ([`RoundProcess::requirement`]) is enforced: `Pgood` by full delivery,
//!   `Pcons` by additionally canonicalizing Byzantine equivocation (every
//!   process sees the same message from each Byzantine sender — what a real
//!   `Pcons` implementation such as \[17]'s coordinated echo achieves);
//! * in *bad* rounds the network plan (loss) and adversaries are
//!   unconstrained — safety must hold regardless.

// Index-driven loops mirror the paper's n x n delivery matrices; an
// iterator rewrite would obscure the sender/receiver indices.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;

use gencon_rounds::{Adversary, HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{Config, ProcessId, ProcessSet, Round};

use gencon_rounds::predicate::RoundRecord;

use crate::faults::CrashPlan;
use crate::network::NetworkModel;
use crate::outcome::Outcome;
use crate::trace::{Trace, TracedRound};

/// A participant slot.
enum Slot<M, O> {
    Honest(Box<dyn RoundProcess<Msg = M, Output = O>>),
    Byzantine(Box<dyn Adversary<Msg = M>>),
}

/// Error assembling a [`Simulation`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A participant id falls outside `0..n`.
    IdOutOfRange {
        /// Offending id.
        id: ProcessId,
        /// System size.
        n: usize,
    },
    /// Two participants claim the same id.
    DuplicateId {
        /// Offending id.
        id: ProcessId,
    },
    /// Not every slot `0..n` was filled.
    MissingParticipant {
        /// First unfilled id.
        id: ProcessId,
    },
    /// More Byzantine participants than the configuration's `b`.
    TooManyByzantine {
        /// Provided count.
        got: usize,
        /// Configured bound.
        bound: usize,
    },
    /// More scheduled crashes than the configuration's `f`.
    TooManyCrashes {
        /// Provided count.
        got: usize,
        /// Configured bound.
        bound: usize,
    },
    /// A crash was scheduled for a Byzantine participant.
    CrashOnByzantine {
        /// Offending id.
        id: ProcessId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::IdOutOfRange { id, n } => {
                write!(f, "participant {id} outside the system of {n} processes")
            }
            SimError::DuplicateId { id } => write!(f, "duplicate participant {id}"),
            SimError::MissingParticipant { id } => write!(f, "no participant provided for {id}"),
            SimError::TooManyByzantine { got, bound } => {
                write!(
                    f,
                    "{got} Byzantine participants exceed the configured b = {bound}"
                )
            }
            SimError::TooManyCrashes { got, bound } => {
                write!(
                    f,
                    "{got} scheduled crashes exceed the configured f = {bound}"
                )
            }
            SimError::CrashOnByzantine { id } => {
                write!(
                    f,
                    "crash scheduled for Byzantine participant {id} (crashes model honest faults)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Builder for [`Simulation`].
pub struct SimBuilder<M, O> {
    cfg: Config,
    slots: Vec<Option<Slot<M, O>>>,
    network: Box<dyn NetworkModel>,
    crashes: CrashPlan,
    enforce_predicates: bool,
    record_trace: bool,
    duplicate: Option<ProcessId>,
}

impl<M, O> SimBuilder<M, O>
where
    M: Clone + Send + 'static,
    O: Clone + Send + 'static,
{
    /// Starts a builder over a fully synchronous network with no faults.
    #[must_use]
    pub fn new(cfg: Config) -> Self {
        SimBuilder {
            cfg,
            slots: (0..cfg.n()).map(|_| None).collect(),
            network: Box::new(crate::network::AlwaysGood),
            crashes: CrashPlan::none(),
            enforce_predicates: true,
            record_trace: false,
            duplicate: None,
        }
    }

    fn place(&mut self, id: ProcessId, slot: Slot<M, O>) {
        if id.index() < self.slots.len() {
            if self.slots[id.index()].is_some() && self.duplicate.is_none() {
                self.duplicate = Some(id);
            }
            self.slots[id.index()] = Some(slot);
        } else {
            // remembered as an out-of-range error at build time
            self.slots.push(Some(slot));
        }
    }

    /// Adds an honest participant (its id comes from [`RoundProcess::id`]).
    #[must_use]
    pub fn honest(mut self, proc: impl RoundProcess<Msg = M, Output = O> + 'static) -> Self {
        let id = proc.id();
        self.place(id, Slot::Honest(Box::new(proc)));
        self
    }

    /// Adds an honest participant driven by a per-round client-arrival
    /// hook: `hook` runs with typed mutable access to `proc` before every
    /// sending step (and, for full [`crate::RoundHook`] implementations,
    /// after every transition step) — the way open-ended workloads reach a
    /// replica mid-execution. See [`crate::Driven`].
    #[must_use]
    pub fn honest_driven<P, H>(self, proc: P, hook: H) -> Self
    where
        P: RoundProcess<Msg = M, Output = O> + 'static,
        H: crate::RoundHook<P> + 'static,
    {
        self.honest(crate::Driven::new(proc, hook))
    }

    /// Adds a Byzantine participant.
    #[must_use]
    pub fn byzantine(mut self, adv: impl Adversary<Msg = M> + 'static) -> Self {
        let id = adv.id();
        self.place(id, Slot::Byzantine(Box::new(adv)));
        self
    }

    /// Records a full [`Trace`] for post-hoc predicate auditing.
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Sets the network model (default: [`AlwaysGood`](crate::AlwaysGood)).
    #[must_use]
    pub fn network(mut self, network: impl NetworkModel + 'static) -> Self {
        self.network = Box::new(network);
        self
    }

    /// Sets the crash schedule.
    #[must_use]
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crashes = plan;
        self
    }

    /// Disables predicate enforcement in good rounds (for experiments that
    /// drive predicates through a real `Pcons` stack instead).
    #[must_use]
    pub fn enforce_predicates(mut self, on: bool) -> Self {
        self.enforce_predicates = on;
        self
    }

    /// Assembles the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the participants do not exactly fill
    /// `0..n`, or the fault counts exceed the configuration's bounds.
    pub fn build(self) -> Result<Simulation<M, O>, SimError> {
        let n = self.cfg.n();
        if let Some(id) = self.duplicate {
            return Err(SimError::DuplicateId { id });
        }
        if self.slots.len() > n {
            // find the out-of-range participant for the error message
            for (i, s) in self.slots.iter().enumerate().skip(n) {
                if s.is_some() {
                    return Err(SimError::IdOutOfRange {
                        id: ProcessId::new(i),
                        n,
                    });
                }
            }
        }
        let mut slots = Vec::with_capacity(n);
        let mut byz = ProcessSet::new();
        for (i, slot) in self.slots.into_iter().enumerate().take(n) {
            match slot {
                Some(s) => {
                    if matches!(s, Slot::Byzantine(_)) {
                        byz.insert(ProcessId::new(i));
                    }
                    slots.push(s);
                }
                None => {
                    return Err(SimError::MissingParticipant {
                        id: ProcessId::new(i),
                    })
                }
            }
        }
        if slots.len() < n {
            return Err(SimError::MissingParticipant {
                id: ProcessId::new(slots.len()),
            });
        }
        if byz.len() > self.cfg.b() {
            return Err(SimError::TooManyByzantine {
                got: byz.len(),
                bound: self.cfg.b(),
            });
        }
        if self.crashes.len() > self.cfg.f() {
            return Err(SimError::TooManyCrashes {
                got: self.crashes.len(),
                bound: self.cfg.f(),
            });
        }
        for (p, _) in self.crashes.iter() {
            if byz.contains(p) {
                return Err(SimError::CrashOnByzantine { id: p });
            }
        }
        Ok(Simulation {
            cfg: self.cfg,
            slots,
            byzantine: byz,
            network: self.network,
            crashes: self.crashes,
            crashed: ProcessSet::new(),
            enforce_predicates: self.enforce_predicates,
            next_round: Round::FIRST,
            decision_rounds: vec![None; n],
            messages_sent: 0,
            messages_delivered: 0,
            trace: self.record_trace.then(Trace::new),
        })
    }
}

/// A lock-step simulation of one consensus instance.
pub struct Simulation<M, O> {
    cfg: Config,
    slots: Vec<Slot<M, O>>,
    byzantine: ProcessSet,
    network: Box<dyn NetworkModel>,
    crashes: CrashPlan,
    crashed: ProcessSet,
    enforce_predicates: bool,
    next_round: Round,
    decision_rounds: Vec<Option<Round>>,
    messages_sent: u64,
    messages_delivered: u64,
    trace: Option<Trace<M>>,
}

impl<M, O> Simulation<M, O>
where
    M: Clone + Send + 'static,
    O: Clone + Send + 'static,
{
    /// Starts a builder.
    #[must_use]
    pub fn builder(cfg: Config) -> SimBuilder<M, O> {
        SimBuilder::new(cfg)
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The next round to execute.
    #[must_use]
    pub fn round(&self) -> Round {
        self.next_round
    }

    /// The set of processes correct *so far* (honest and not crashed).
    #[must_use]
    pub fn correct(&self) -> ProcessSet {
        self.cfg
            .all_processes()
            .difference(self.byzantine)
            .difference(self.crashed)
    }

    /// Executes one round; returns the executed round number.
    pub fn step(&mut self) -> Round {
        let r = self.next_round;
        let n = self.cfg.n();

        // --- sending step (S_p^r) ---
        let mut outgoing: Vec<Outgoing<M>> = Vec::with_capacity(n);
        let mut crash_limits: Vec<usize> = vec![usize::MAX; n];
        let mut crashing_now = ProcessSet::new();
        for i in 0..n {
            let id = ProcessId::new(i);
            if self.crashed.contains(id) {
                outgoing.push(Outgoing::Silent);
                continue;
            }
            if let Some(at) = self.crashes.for_process(id) {
                if at.round == r {
                    crash_limits[i] = at.partial_sends;
                    crashing_now.insert(id);
                }
            }
            let out = match &mut self.slots[i] {
                Slot::Honest(p) => p.send(r),
                Slot::Byzantine(a) => a.send(r),
            };
            self.messages_sent += out.fanout(n) as u64;
            outgoing.push(out);
        }

        // --- network plan ---
        let senders: ProcessSet = (0..n)
            .filter(|&i| {
                !self.crashed.contains(ProcessId::new(i))
                    && !matches!(outgoing[i], Outgoing::Silent)
            })
            .map(ProcessId::new)
            .collect();
        let good = self.network.is_good(r);
        let plan = self.network.plan(r, &senders, n);

        // Which predicate do the honest participants need this round?
        let requirement = self.honest_requirement(r);
        let canonicalize = self.enforce_predicates && good && requirement == Predicate::Cons;

        // Canonical Byzantine payloads for Pcons rounds: the message the
        // adversary addressed to the lowest-id correct process.
        let canonical_byz: BTreeMap<usize, M> = if canonicalize {
            let correct = self.correct();
            let mut map = BTreeMap::new();
            for b in self.byzantine.iter() {
                let msg = correct
                    .iter()
                    .find_map(|c| outgoing[b.index()].message_for(c))
                    .or_else(|| {
                        self.cfg
                            .all_processes()
                            .iter()
                            .find_map(|c| outgoing[b.index()].message_for(c))
                    });
                if let Some(m) = msg {
                    map.insert(b.index(), m);
                }
            }
            map
        } else {
            BTreeMap::new()
        };

        // --- delivery ---
        let mut heard: Vec<HeardOf<M>> = (0..n).map(|_| HeardOf::empty(n)).collect();
        for from in 0..n {
            let sender = ProcessId::new(from);
            if self.crashed.contains(sender) {
                continue;
            }
            let is_byz = self.byzantine.contains(sender);
            // Count destinations served before the crash cut-off, in id order.
            let mut served = 0usize;
            for to in 0..n {
                let dest = ProcessId::new(to);
                let msg = if is_byz && canonicalize {
                    canonical_byz.get(&from).cloned()
                } else {
                    outgoing[from].message_for(dest)
                };
                let Some(m) = msg else { continue };
                // Crash cut-off applies to honest senders only.
                if !is_byz && served >= crash_limits[from] {
                    break;
                }
                served += 1;
                // In canonicalized (Pcons) or plain good rounds the plan is
                // full delivery; in bad rounds the plan decides. A sender
                // crashing mid-round breaks the predicate — which is exactly
                // why the paper's good phases exclude crashes; tests that
                // need termination schedule crashes before GST.
                let delivered = if canonicalize && is_byz {
                    true // same canonical message for everyone
                } else {
                    plan.delivered(sender, dest)
                };
                if delivered {
                    heard[to].put(sender, m);
                    self.messages_delivered += 1;
                }
            }
        }

        // --- trace recording (before transitions consume the vectors) ---
        if self.trace.is_some() {
            let all = self.cfg.all_processes();
            let sent: Vec<Option<M>> = (0..n)
                .map(|i| {
                    let id = ProcessId::new(i);
                    if self.byzantine.contains(id) || self.crashed.contains(id) {
                        return None; // no meaningful "state" (footnote 2)
                    }
                    if crash_limits[i] != usize::MAX {
                        return None; // partial send: imposes nothing
                    }
                    match &outgoing[i] {
                        Outgoing::Broadcast(m) => Some(m.clone()),
                        // A multicast to the whole set is a broadcast.
                        Outgoing::Multicast { dests, msg } if *dests == all => Some(msg.clone()),
                        _ => None,
                    }
                })
                .collect();
            let record = RoundRecord {
                sent,
                received: heard.clone(),
            };
            let correct = self
                .cfg
                .all_processes()
                .difference(self.byzantine)
                .difference(self.crashed)
                .difference(crashing_now);
            let honest = self.cfg.all_processes().difference(self.byzantine);
            if let Some(trace) = &mut self.trace {
                trace.push(TracedRound {
                    round: r,
                    good,
                    requirement,
                    correct,
                    honest,
                    record,
                });
            }
        }

        // --- transition step (T_p^r) ---
        for i in 0..n {
            let id = ProcessId::new(i);
            if self.crashed.contains(id) {
                continue;
            }
            if crashing_now.contains(id) {
                // The crash happened during the send: no transition.
                self.crashed.insert(id);
                continue;
            }
            match &mut self.slots[i] {
                Slot::Honest(p) => {
                    p.receive(r, &heard[i]);
                    if self.decision_rounds[i].is_none() && p.output().is_some() {
                        self.decision_rounds[i] = Some(r);
                    }
                }
                Slot::Byzantine(a) => a.observe(r, &heard[i]),
            }
        }

        self.next_round = r.next();
        r
    }

    /// The recorded trace, when [`SimBuilder::record_trace`] was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace<M>> {
        self.trace.as_ref()
    }

    /// Runs until every correct process has produced an output, or
    /// `max_rounds` rounds have executed. Returns the final [`Outcome`].
    pub fn run(&mut self, max_rounds: u64) -> Outcome<O> {
        for _ in 0..max_rounds {
            self.step();
            if self.all_correct_decided() {
                break;
            }
        }
        self.outcome()
    }

    /// Whether every correct process has an output.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.correct()
            .iter()
            .all(|p| matches!(&self.slots[p.index()], Slot::Honest(h) if h.output().is_some()))
    }

    /// The current outputs of honest participants (`None` for Byzantine
    /// slots and undecided processes).
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<O>> {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Honest(h) => h.output(),
                Slot::Byzantine(_) => None,
            })
            .collect()
    }

    /// Snapshot of the execution result.
    #[must_use]
    pub fn outcome(&self) -> Outcome<O> {
        Outcome {
            n: self.cfg.n(),
            byzantine: self.byzantine,
            crashed: self.crashed,
            outputs: self.outputs(),
            decision_rounds: self.decision_rounds.clone(),
            rounds_executed: self.next_round.number() - 1,
            messages_sent: self.messages_sent,
            messages_delivered: self.messages_delivered,
            all_correct_decided: self.all_correct_decided(),
        }
    }

    /// Immutable access to an honest participant (tests, assertions).
    #[must_use]
    pub fn honest(&self, id: ProcessId) -> Option<&dyn RoundProcess<Msg = M, Output = O>> {
        match &self.slots[id.index()] {
            Slot::Honest(h) => Some(h.as_ref()),
            Slot::Byzantine(_) => None,
        }
    }

    /// The requirement declared by the first live honest participant (all
    /// honest participants run the same algorithm, hence agree).
    fn honest_requirement(&self, r: Round) -> Predicate {
        for (i, s) in self.slots.iter().enumerate() {
            if self.crashed.contains(ProcessId::new(i)) {
                continue;
            }
            if let Slot::Honest(h) = s {
                return h.requirement(r);
            }
        }
        Predicate::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::CrashAt;
    use crate::network::{DeliveryPlan as DP, Scripted};
    use gencon_rounds::Predicate;

    /// A trivial protocol: everyone broadcasts its id+round, decides after
    /// hearing a majority three times.
    struct Echo {
        id: ProcessId,
        heard_rounds: usize,
        n: usize,
        decided: Option<u64>,
    }

    impl Echo {
        fn new(i: usize, n: usize) -> Self {
            Echo {
                id: ProcessId::new(i),
                heard_rounds: 0,
                n,
                decided: None,
            }
        }
    }

    impl RoundProcess for Echo {
        type Msg = u64;
        type Output = u64;

        fn id(&self) -> ProcessId {
            self.id
        }

        fn requirement(&self, _r: Round) -> Predicate {
            Predicate::Good
        }

        fn send(&mut self, r: Round) -> Outgoing<u64> {
            Outgoing::Broadcast(r.number() * 100 + self.id.index() as u64)
        }

        fn receive(&mut self, _r: Round, heard: &HeardOf<u64>) {
            if 2 * heard.count() > self.n {
                self.heard_rounds += 1;
            }
            if self.heard_rounds >= 3 && self.decided.is_none() {
                self.decided = Some(self.heard_rounds as u64);
            }
        }

        fn output(&self) -> Option<u64> {
            self.decided
        }
    }

    fn echo_sim(n: usize, f: usize) -> SimBuilder<u64, u64> {
        let cfg = Config::new(n, f, 0).unwrap();
        let mut b = Simulation::builder(cfg);
        for i in 0..n {
            b = b.honest(Echo::new(i, n));
        }
        b
    }

    #[test]
    fn all_honest_synchronous_run_decides() {
        let mut sim = echo_sim(4, 0).build().unwrap();
        let out = sim.run(10);
        assert!(out.all_correct_decided);
        assert_eq!(out.rounds_executed, 3);
        assert_eq!(out.outputs, vec![Some(3); 4]);
        assert_eq!(out.decision_rounds, vec![Some(Round::new(3)); 4]);
        // 4 processes broadcasting for 3 rounds
        assert_eq!(out.messages_sent, 4 * 4 * 3);
        assert_eq!(out.messages_delivered, 4 * 4 * 3);
    }

    #[test]
    fn builder_rejects_missing_slot() {
        let cfg = Config::new(3, 0, 0).unwrap();
        let b: SimBuilder<u64, u64> = Simulation::builder(cfg)
            .honest(Echo::new(0, 3))
            .honest(Echo::new(2, 3));
        assert_eq!(
            b.build().err(),
            Some(SimError::MissingParticipant {
                id: ProcessId::new(1)
            })
        );
    }

    #[test]
    fn builder_rejects_excess_crashes() {
        let b = echo_sim(3, 0)
            .crashes(CrashPlan::none().with(ProcessId::new(0), CrashAt::silent(Round::new(1))));
        assert_eq!(
            b.build().err(),
            Some(SimError::TooManyCrashes { got: 1, bound: 0 })
        );
    }

    #[test]
    fn crash_silences_process() {
        let mut sim = echo_sim(4, 1)
            .crashes(CrashPlan::none().with(ProcessId::new(3), CrashAt::silent(Round::new(2))))
            .build()
            .unwrap();
        let out = sim.run(10);
        // p3 crashed in round 2; the other three still hear a majority
        // (3 of 4) every round and decide at round 3.
        assert!(out.all_correct_decided);
        assert_eq!(out.outputs[0], Some(3));
        assert_eq!(out.outputs[3], None, "crashed process never decided");
        assert!(out.crashed.contains(ProcessId::new(3)));
        assert_eq!(out.correct_set().len(), 3);
    }

    #[test]
    fn mid_send_crash_delivers_prefix_only() {
        // p0 crashes in round 1 after serving 2 destinations (p0, p1).
        let mut sim = echo_sim(3, 1)
            .crashes(CrashPlan::none().with(ProcessId::new(0), CrashAt::mid_send(Round::new(1), 2)))
            .build()
            .unwrap();
        sim.step();
        // p2 heard only p1, p2 → 2 of 3 majority? 2*2 > 3 → still majority.
        // Check the deliver accounting instead: 3 broadcasts sent (9), but
        // p0 delivered only 2.
        let out = sim.outcome();
        assert_eq!(out.messages_sent, 9);
        assert_eq!(out.messages_delivered, 8);
        assert!(out.crashed.contains(ProcessId::new(0)));
    }

    #[test]
    fn lossy_rounds_block_progress_until_good() {
        // Nothing delivered in rounds 1–5 (except self), then full delivery.
        let net = Scripted::new(
            |r: Round, n| {
                if r.number() <= 5 {
                    let mut p = DP::empty(n);
                    for i in 0..n {
                        p.set(ProcessId::new(i), ProcessId::new(i), true);
                    }
                    p
                } else {
                    DP::full(n)
                }
            },
            |r| r.number() > 5,
        );
        let mut sim = echo_sim(4, 0).network(net).build().unwrap();
        let out = sim.run(20);
        assert!(out.all_correct_decided);
        assert_eq!(out.rounds_executed, 8, "3 good rounds needed after GST=6");
    }

    #[test]
    fn outputs_before_decision_are_none() {
        let mut sim = echo_sim(3, 0).build().unwrap();
        sim.step();
        assert_eq!(sim.outputs(), vec![None, None, None]);
        assert!(!sim.all_correct_decided());
        assert_eq!(sim.round(), Round::new(2));
    }

    #[test]
    fn correct_set_excludes_byzantine_and_crashed() {
        // Byzantine adversary that stays silent.
        struct Mute(ProcessId);
        impl Adversary for Mute {
            type Msg = u64;
            fn id(&self) -> ProcessId {
                self.0
            }
            fn send(&mut self, _r: Round) -> Outgoing<u64> {
                Outgoing::Silent
            }
            fn observe(&mut self, _r: Round, _h: &HeardOf<u64>) {}
        }
        let cfg = Config::new(4, 1, 1).unwrap();
        let mut b: SimBuilder<u64, u64> = Simulation::builder(cfg);
        for i in 0..3 {
            b = b.honest(Echo::new(i, 4));
        }
        let mut sim = b
            .byzantine(Mute(ProcessId::new(3)))
            .crashes(CrashPlan::none().with(ProcessId::new(2), CrashAt::silent(Round::new(1))))
            .build()
            .unwrap();
        sim.step();
        let correct = sim.correct();
        assert_eq!(correct.len(), 2);
        assert!(!correct.contains(ProcessId::new(3)));
        assert!(!correct.contains(ProcessId::new(2)));
    }

    #[test]
    fn duplicate_participants_rejected() {
        let cfg = Config::new(3, 0, 0).unwrap();
        let b: SimBuilder<u64, u64> = Simulation::builder(cfg)
            .honest(Echo::new(0, 3))
            .honest(Echo::new(1, 3))
            .honest(Echo::new(1, 3)) // duplicate!
            .honest(Echo::new(2, 3));
        assert_eq!(
            b.build().err(),
            Some(SimError::DuplicateId {
                id: ProcessId::new(1)
            })
        );
    }

    #[test]
    fn trace_recording_and_audit() {
        let mut sim = echo_sim(4, 0).record_trace(true).build().unwrap();
        let out = sim.run(10);
        assert!(out.all_correct_decided);
        let trace = sim.trace().expect("trace recorded");
        assert_eq!(trace.len(), out.rounds_executed as usize);
        let audit = trace.audit(sim.config());
        assert!(audit.is_clean(), "audit: {audit:?}");
        assert_eq!(audit.good_rounds, out.rounds_executed as usize);
    }

    #[test]
    fn trace_absent_by_default() {
        let mut sim = echo_sim(3, 0).build().unwrap();
        sim.step();
        assert!(sim.trace().is_none());
    }

    #[test]
    fn sim_error_messages() {
        assert!(SimError::TooManyByzantine { got: 2, bound: 1 }
            .to_string()
            .contains("b = 1"));
        assert!(SimError::DuplicateId {
            id: ProcessId::new(1)
        }
        .to_string()
        .contains("p1"));
    }
}
