//! Execution results and the consensus property checkers of §2.3.

use gencon_types::{ProcessSet, Round};

/// The result of a simulated execution.
#[derive(Clone, Debug)]
pub struct Outcome<O> {
    /// System size.
    pub n: usize,
    /// Byzantine participants.
    pub byzantine: ProcessSet,
    /// Processes that crashed during the run.
    pub crashed: ProcessSet,
    /// Final output (decision) of each process; `None` for Byzantine slots
    /// and processes that never decided.
    pub outputs: Vec<Option<O>>,
    /// Round in which each process first produced an output.
    pub decision_rounds: Vec<Option<Round>>,
    /// Rounds executed.
    pub rounds_executed: u64,
    /// Point-to-point messages handed to the network.
    pub messages_sent: u64,
    /// Point-to-point messages delivered.
    pub messages_delivered: u64,
    /// Whether every correct process decided.
    pub all_correct_decided: bool,
}

impl<O> Outcome<O> {
    /// The set of correct processes (honest and never crashed).
    #[must_use]
    pub fn correct_set(&self) -> ProcessSet {
        ProcessSet::range(0, self.n)
            .difference(self.byzantine)
            .difference(self.crashed)
    }

    /// The set of honest processes (correct + crashed, i.e. non-Byzantine).
    #[must_use]
    pub fn honest_set(&self) -> ProcessSet {
        ProcessSet::range(0, self.n).difference(self.byzantine)
    }

    /// Outputs of honest processes that decided.
    pub fn honest_decisions(&self) -> impl Iterator<Item = &O> {
        let honest = self.honest_set();
        self.outputs
            .iter()
            .enumerate()
            .filter(move |(i, _)| honest.contains(gencon_types::ProcessId::new(*i)))
            .filter_map(|(_, o)| o.as_ref())
    }

    /// The latest decision round among deciders (total latency in rounds).
    #[must_use]
    pub fn last_decision_round(&self) -> Option<Round> {
        self.decision_rounds.iter().flatten().max().copied()
    }

    /// The earliest decision round.
    #[must_use]
    pub fn first_decision_round(&self) -> Option<Round> {
        self.decision_rounds.iter().flatten().min().copied()
    }
}

/// Checkers for the four consensus properties of §2.3, evaluated on an
/// [`Outcome`]. The closure `value_of` projects an output to the decided
/// value (for `gencon-core` engines: `|d| &d.value`).
pub mod properties {
    use super::Outcome;

    /// **Agreement**: no two honest processes decide differently.
    #[must_use]
    pub fn agreement<O, V: PartialEq>(out: &Outcome<O>, value_of: impl Fn(&O) -> &V) -> bool {
        let mut decisions = out.honest_decisions().map(&value_of);
        match decisions.next() {
            None => true,
            Some(first) => decisions.all(|v| v == first),
        }
    }

    /// **Termination**: all correct processes eventually decide. (On a
    /// finite prefix this checks "have decided by now" — callers run long
    /// enough past the good phase.)
    #[must_use]
    pub fn termination<O>(out: &Outcome<O>) -> bool {
        out.all_correct_decided
    }

    /// **Validity**: if all processes are honest and an honest process
    /// decides `v`, then `v` is the initial value of some process.
    ///
    /// `inits[i]` is process i's initial value. Vacuously true when
    /// Byzantine processes exist (the paper's premise "all processes are
    /// honest" fails).
    #[must_use]
    pub fn validity<O, V: PartialEq>(
        out: &Outcome<O>,
        inits: &[V],
        value_of: impl Fn(&O) -> &V,
    ) -> bool {
        if !out.byzantine.is_empty() {
            return true;
        }
        out.honest_decisions()
            .map(&value_of)
            .all(|v| inits.iter().any(|i| i == v))
    }

    /// **Unanimity**: if all honest processes share the initial value `v`
    /// and an honest process decides, it decides `v`.
    ///
    /// `honest_inits` lists the initial values of honest processes only.
    #[must_use]
    pub fn unanimity<O, V: PartialEq>(
        out: &Outcome<O>,
        honest_inits: &[V],
        value_of: impl Fn(&O) -> &V,
    ) -> bool {
        let Some(first) = honest_inits.first() else {
            return true;
        };
        if !honest_inits.iter().all(|v| v == first) {
            return true; // premise fails
        }
        out.honest_decisions().map(&value_of).all(|v| v == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_types::ProcessId;

    fn outcome(outputs: Vec<Option<u64>>, byz: &[usize], crashed: &[usize]) -> Outcome<u64> {
        let n = outputs.len();
        Outcome {
            n,
            byzantine: byz.iter().map(|&i| ProcessId::new(i)).collect(),
            crashed: crashed.iter().map(|&i| ProcessId::new(i)).collect(),
            decision_rounds: outputs.iter().map(|o| o.map(|_| Round::new(3))).collect(),
            all_correct_decided: outputs.iter().all(|o| o.is_some()),
            outputs,
            rounds_executed: 3,
            messages_sent: 0,
            messages_delivered: 0,
        }
    }

    #[test]
    fn agreement_checks_honest_only() {
        let out = outcome(vec![Some(1), Some(1), Some(2)], &[2], &[]);
        assert!(properties::agreement(&out, |v| v));
        let bad = outcome(vec![Some(1), Some(2), None], &[], &[]);
        assert!(!properties::agreement(&bad, |v| v));
        let empty = outcome(vec![None, None], &[], &[]);
        assert!(properties::agreement(&empty, |v| v));
    }

    #[test]
    fn validity_requires_initial_value() {
        let out = outcome(vec![Some(5), Some(5), Some(5)], &[], &[]);
        assert!(properties::validity(&out, &[5, 6, 7], |v| v));
        assert!(!properties::validity(&out, &[1, 2, 3], |v| v));
        // vacuous with Byzantine present
        let byz = outcome(vec![Some(9), Some(9), None], &[2], &[]);
        assert!(properties::validity(&byz, &[1, 2, 3], |v| v));
    }

    #[test]
    fn unanimity_conditional_on_shared_input() {
        let out = outcome(vec![Some(4), Some(4), None], &[2], &[]);
        assert!(properties::unanimity(&out, &[4, 4], |v| v));
        assert!(!properties::unanimity(&out, &[3, 3], |v| v));
        // premise fails → vacuously true
        assert!(properties::unanimity(&out, &[3, 4], |v| v));
    }

    #[test]
    fn termination_tracks_correct_processes() {
        let mut out = outcome(vec![Some(1), Some(1), None], &[], &[2]);
        out.all_correct_decided = true;
        assert!(properties::termination(&out));
    }

    #[test]
    fn sets_and_rounds() {
        let out = outcome(vec![Some(1), None, Some(1), None], &[1], &[3]);
        assert_eq!(out.correct_set().len(), 2);
        assert_eq!(out.honest_set().len(), 3);
        assert_eq!(out.honest_decisions().count(), 2);
        assert_eq!(out.last_decision_round(), Some(Round::new(3)));
        assert_eq!(out.first_decision_round(), Some(Round::new(3)));
    }
}
