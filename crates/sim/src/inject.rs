//! Per-round client-arrival injection.
//!
//! A consensus instance is closed over its inputs, but a replicated state
//! machine is not: client commands keep arriving *while* the log runs. The
//! lock-step executor stays agnostic of process internals, so injection is
//! done where the concrete type is still known — at builder time.
//! [`SimBuilder::honest_driven`](crate::SimBuilder::honest_driven) wraps the
//! participant in a [`Driven`] adapter whose [`RoundHook`] gets typed,
//! mutable access to the process twice per round:
//!
//! * [`RoundHook::before_send`] — inject this round's client arrivals
//!   (e.g. `BatchingReplica::submit`) before the sending step `S_p^r`;
//! * [`RoundHook::after_receive`] — observe the post-transition state
//!   (e.g. harvest newly applied commands for latency accounting) after the
//!   transition step `T_p^r`.
//!
//! Plain closures work as hooks: any `FnMut(Round, &mut P)` is a
//! [`RoundHook`] that fires before the send step.

use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{ProcessId, Round};

/// A per-round hook with typed access to the wrapped process.
///
/// Both methods default to no-ops; implement whichever sides you need.
pub trait RoundHook<P>: Send {
    /// Called before the process's sending step of round `r` — the place to
    /// inject client arrivals for this round.
    fn before_send(&mut self, r: Round, proc: &mut P) {
        let _ = (r, proc);
    }

    /// Called after the process's transition step of round `r` — the place
    /// to observe what the round committed (runs even on the final round,
    /// which a before-send-only hook would never see).
    fn after_receive(&mut self, r: Round, proc: &mut P) {
        let _ = (r, proc);
    }
}

/// Any `FnMut(Round, &mut P)` closure is a before-send hook.
impl<P, F> RoundHook<P> for F
where
    F: FnMut(Round, &mut P) + Send,
{
    fn before_send(&mut self, r: Round, proc: &mut P) {
        self(r, proc)
    }
}

/// Wraps a [`RoundProcess`] with a [`RoundHook`]; the pair is itself a
/// `RoundProcess`, so the executor needs no special cases.
pub struct Driven<P, H> {
    proc: P,
    hook: H,
}

impl<P, H> Driven<P, H> {
    /// Couples `proc` with `hook`.
    pub fn new(proc: P, hook: H) -> Self {
        Driven { proc, hook }
    }

    /// The wrapped process.
    pub fn get_ref(&self) -> &P {
        &self.proc
    }

    /// Unwraps the process, discarding the hook.
    pub fn into_inner(self) -> P {
        self.proc
    }
}

impl<P, H> RoundProcess for Driven<P, H>
where
    P: RoundProcess,
    H: RoundHook<P>,
{
    type Msg = P::Msg;
    type Output = P::Output;

    fn id(&self) -> ProcessId {
        self.proc.id()
    }

    fn requirement(&self, r: Round) -> Predicate {
        self.proc.requirement(r)
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        self.hook.before_send(r, &mut self.proc);
        self.proc.send(r)
    }

    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        self.proc.receive(r, heard);
        self.hook.after_receive(r, &mut self.proc);
    }

    fn output(&self) -> Option<Self::Output> {
        self.proc.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use gencon_types::Config;

    /// Accumulates injected numbers; decides once the sum reaches 10.
    struct Acc {
        id: ProcessId,
        sum: u64,
    }

    impl RoundProcess for Acc {
        type Msg = u64;
        type Output = u64;

        fn id(&self) -> ProcessId {
            self.id
        }

        fn requirement(&self, _r: Round) -> Predicate {
            Predicate::Good
        }

        fn send(&mut self, _r: Round) -> Outgoing<u64> {
            Outgoing::Broadcast(self.sum)
        }

        fn receive(&mut self, _r: Round, _heard: &HeardOf<u64>) {}

        fn output(&self) -> Option<u64> {
            (self.sum >= 10).then_some(self.sum)
        }
    }

    #[test]
    fn closure_hook_injects_every_round() {
        let cfg = Config::new(2, 0, 0).unwrap();
        let mut sim = Simulation::builder(cfg)
            .honest_driven(
                Acc {
                    id: ProcessId::new(0),
                    sum: 0,
                },
                |_r: Round, p: &mut Acc| p.sum += 3,
            )
            .honest_driven(
                Acc {
                    id: ProcessId::new(1),
                    sum: 0,
                },
                |_r: Round, p: &mut Acc| p.sum += 5,
            )
            .build()
            .unwrap();
        let out = sim.run(10);
        assert!(out.all_correct_decided);
        // 3 per round → 4 rounds to reach 12; 5 per round reaches 10 in 2
        // but the sim runs until all decided.
        assert_eq!(out.outputs[0], Some(12));
        assert_eq!(out.outputs[1], Some(20));
    }

    #[test]
    fn after_receive_sees_final_round() {
        struct Spy {
            rounds: Vec<u64>,
        }
        impl RoundHook<Acc> for Spy {
            fn before_send(&mut self, _r: Round, p: &mut Acc) {
                p.sum += 10; // decide immediately
            }
            fn after_receive(&mut self, r: Round, _p: &mut Acc) {
                self.rounds.push(r.number());
            }
        }
        let driven = Driven::new(
            Acc {
                id: ProcessId::new(0),
                sum: 0,
            },
            Spy { rounds: Vec::new() },
        );
        assert_eq!(driven.get_ref().sum, 0);
        let cfg = Config::new(1, 0, 0).unwrap();
        let mut sim = Simulation::builder(cfg).honest(driven).build().unwrap();
        let out = sim.run(5);
        assert!(out.all_correct_decided);
        assert_eq!(out.rounds_executed, 1, "decided in the first round");
    }

    #[test]
    fn into_inner_returns_process() {
        let driven = Driven::new(
            Acc {
                id: ProcessId::new(0),
                sum: 7,
            },
            |_r: Round, _p: &mut Acc| {},
        );
        assert_eq!(driven.into_inner().sum, 7);
    }
}
