//! Network models: who hears whom, round by round.
//!
//! The paper's system model (§2.1) alternates between *bad periods*
//! (asynchronous: arbitrary loss) and *good periods* (synchronous: the
//! communication predicates hold). A [`NetworkModel`] decides, per round,
//! which point-to-point messages get through and whether the round is
//! "good" (predicate enforcement applies — see
//! [`Simulation`](crate::Simulation)).

// Index-driven loops mirror the paper's n x n delivery matrices; an
// iterator rewrite would obscure the sender/receiver indices.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gencon_types::{ProcessId, ProcessSet, Round};

/// A per-round delivery matrix: `deliver[from][to]`.
#[derive(Clone, Debug)]
pub struct DeliveryPlan {
    n: usize,
    deliver: Vec<bool>,
}

impl DeliveryPlan {
    /// A plan delivering everything.
    #[must_use]
    pub fn full(n: usize) -> Self {
        DeliveryPlan {
            n,
            deliver: vec![true; n * n],
        }
    }

    /// A plan delivering nothing.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        DeliveryPlan {
            n,
            deliver: vec![false; n * n],
        }
    }

    /// Whether `from → to` is delivered.
    #[must_use]
    pub fn delivered(&self, from: ProcessId, to: ProcessId) -> bool {
        self.deliver[from.index() * self.n + to.index()]
    }

    /// Sets the delivery bit for `from → to`.
    pub fn set(&mut self, from: ProcessId, to: ProcessId, delivered: bool) {
        self.deliver[from.index() * self.n + to.index()] = delivered;
    }

    /// Drops every message from `from`.
    pub fn silence_sender(&mut self, from: ProcessId) {
        for to in 0..self.n {
            self.deliver[from.index() * self.n + to] = false;
        }
    }

    /// System size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Decides message delivery for each round.
pub trait NetworkModel: Send {
    /// The delivery plan for round `r`. `senders` lists the processes that
    /// actually handed a message to the network this round (models that
    /// guarantee delivery *counts*, like [`RandomSubset`], need it).
    fn plan(&mut self, r: Round, senders: &ProcessSet, n: usize) -> DeliveryPlan;

    /// Whether round `r` lies in a good period (the executor then enforces
    /// the predicate the algorithm requires for that round).
    fn is_good(&self, r: Round) -> bool;
}

/// Boxed models are models — sweeps can pick one dynamically and hand it
/// straight to the builder.
impl NetworkModel for Box<dyn NetworkModel> {
    fn plan(&mut self, r: Round, senders: &ProcessSet, n: usize) -> DeliveryPlan {
        (**self).plan(r, senders, n)
    }

    fn is_good(&self, r: Round) -> bool {
        (**self).is_good(r)
    }
}

/// A fully synchronous network: every round is good, nothing is lost.
#[derive(Clone, Copy, Default, Debug)]
pub struct AlwaysGood;

impl NetworkModel for AlwaysGood {
    fn plan(&mut self, _r: Round, _senders: &ProcessSet, n: usize) -> DeliveryPlan {
        DeliveryPlan::full(n)
    }

    fn is_good(&self, _r: Round) -> bool {
        true
    }
}

/// Partial synchrony with a global stabilization round: before `gst`,
/// messages are dropped independently with probability `loss`; from round
/// `gst` on, the network is good.
///
/// ```
/// use gencon_sim::{Gst, NetworkModel};
/// use gencon_types::Round;
/// let mut net = Gst::new(10, 0.5, 42);
/// assert!(!net.is_good(Round::new(9)));
/// assert!(net.is_good(Round::new(10)));
/// ```
#[derive(Clone, Debug)]
pub struct Gst {
    gst: u64,
    loss: f64,
    rng: StdRng,
}

impl Gst {
    /// Creates the model: bad until round `gst` (exclusive), loss
    /// probability `loss` while bad, deterministic under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `0.0..=1.0`.
    #[must_use]
    pub fn new(gst: u64, loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Gst {
            gst,
            loss,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The first good round.
    #[must_use]
    pub fn gst(&self) -> u64 {
        self.gst
    }
}

impl NetworkModel for Gst {
    fn plan(&mut self, r: Round, _senders: &ProcessSet, n: usize) -> DeliveryPlan {
        if self.is_good(r) {
            return DeliveryPlan::full(n);
        }
        let mut plan = DeliveryPlan::full(n);
        for from in 0..n {
            for to in 0..n {
                if from != to && self.rng.gen_bool(self.loss) {
                    plan.set(ProcessId::new(from), ProcessId::new(to), false);
                }
            }
        }
        plan
    }

    fn is_good(&self, r: Round) -> bool {
        r.number() >= self.gst
    }
}

/// The `Prel` regime of randomized algorithms (§6): every round, every
/// receiver hears from a uniformly random subset of `keep` of the processes
/// that *actually sent* (always including its own message, if it sent one).
/// No round is ever "good" — termination must come from the coin, not from
/// a stabilization assumption.
#[derive(Clone, Debug)]
pub struct RandomSubset {
    keep: usize,
    rng: StdRng,
}

impl RandomSubset {
    /// Keeps `keep` sender messages per receiver per round (choose
    /// `keep = n − b − f` to give the algorithm exactly its `Prel`
    /// minimum — silent Byzantine processes cannot eat delivery slots, as
    /// the subset is drawn from actual senders).
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0`.
    #[must_use]
    pub fn new(keep: usize, seed: u64) -> Self {
        assert!(keep > 0, "keep must be positive");
        RandomSubset {
            keep,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NetworkModel for RandomSubset {
    fn plan(&mut self, _r: Round, senders: &ProcessSet, n: usize) -> DeliveryPlan {
        let mut plan = DeliveryPlan::empty(n);
        let sender_ids: Vec<ProcessId> = senders.iter().collect();
        for to in 0..n {
            let me = ProcessId::new(to);
            // Always deliver the receiver's own message.
            let mut chosen: Vec<ProcessId> = Vec::with_capacity(self.keep);
            if senders.contains(me) {
                chosen.push(me);
            }
            while chosen.len() < self.keep.min(sender_ids.len()) {
                let cand = sender_ids[self.rng.gen_range(0..sender_ids.len())];
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                }
            }
            for from in chosen {
                plan.set(from, me, true);
            }
        }
        plan
    }

    fn is_good(&self, _r: Round) -> bool {
        false
    }
}

/// A scripted model for tests: a closure decides the plan, a predicate
/// decides goodness.
pub struct Scripted<P, G> {
    plan_fn: P,
    good_fn: G,
}

impl<P, G> Scripted<P, G>
where
    P: FnMut(Round, usize) -> DeliveryPlan + Send,
    G: Fn(Round) -> bool + Send,
{
    /// Creates a scripted model from the two closures.
    pub fn new(plan_fn: P, good_fn: G) -> Self {
        Scripted { plan_fn, good_fn }
    }
}

impl<P, G> NetworkModel for Scripted<P, G>
where
    P: FnMut(Round, usize) -> DeliveryPlan + Send,
    G: Fn(Round) -> bool + Send,
{
    fn plan(&mut self, r: Round, _senders: &ProcessSet, n: usize) -> DeliveryPlan {
        (self.plan_fn)(r, n)
    }

    fn is_good(&self, r: Round) -> bool {
        (self.good_fn)(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn full_and_empty_plans() {
        let full = DeliveryPlan::full(3);
        assert!(full.delivered(p(0), p(2)));
        assert_eq!(full.n(), 3);
        let empty = DeliveryPlan::empty(3);
        assert!(!empty.delivered(p(0), p(2)));
    }

    #[test]
    fn plan_mutation() {
        let mut plan = DeliveryPlan::full(3);
        plan.set(p(1), p(2), false);
        assert!(!plan.delivered(p(1), p(2)));
        assert!(plan.delivered(p(2), p(1)));
        plan.silence_sender(p(0));
        assert!(!plan.delivered(p(0), p(0)));
        assert!(!plan.delivered(p(0), p(2)));
    }

    #[test]
    fn always_good_delivers_everything() {
        let mut net = AlwaysGood;
        let plan = net.plan(Round::new(5), &ProcessSet::range(0, 4), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert!(plan.delivered(p(a), p(b)));
            }
        }
        assert!(net.is_good(Round::new(1)));
    }

    #[test]
    fn gst_transitions_to_good() {
        let mut net = Gst::new(5, 1.0, 1);
        assert!(!net.is_good(Round::new(4)));
        assert!(net.is_good(Round::new(5)));
        // Total loss before GST (self-delivery excepted).
        let before = net.plan(Round::new(1), &ProcessSet::range(0, 3), 3);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(before.delivered(p(a), p(b)), a == b, "{a}->{b}");
            }
        }
        let after = net.plan(Round::new(5), &ProcessSet::range(0, 3), 3);
        assert!(after.delivered(p(0), p(2)));
    }

    #[test]
    fn gst_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut net = Gst::new(100, 0.5, seed);
            let plan = net.plan(Round::new(1), &ProcessSet::range(0, 5), 5);
            (0..5)
                .flat_map(|a| (0..5).map(move |b| (a, b)))
                .map(|(a, b)| plan.delivered(p(a), p(b)))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8), "different seeds should differ");
    }

    #[test]
    fn random_subset_guarantees_minimum() {
        let mut net = RandomSubset::new(3, 9);
        for r in 1..20u64 {
            let plan = net.plan(Round::new(r), &ProcessSet::range(0, 5), 5);
            for to in 0..5 {
                let got = (0..5).filter(|&f| plan.delivered(p(f), p(to))).count();
                assert_eq!(got, 3, "round {r} receiver {to}");
                assert!(plan.delivered(p(to), p(to)), "self-delivery");
            }
        }
        assert!(!net.is_good(Round::new(1)));
    }

    #[test]
    fn random_subset_caps_at_n() {
        let mut net = RandomSubset::new(10, 9);
        let plan = net.plan(Round::new(1), &ProcessSet::range(0, 3), 3);
        for to in 0..3 {
            assert_eq!((0..3).filter(|&f| plan.delivered(p(f), p(to))).count(), 3);
        }
    }

    #[test]
    fn scripted_model_runs_closures() {
        let mut net = Scripted::new(
            |r: Round, n| {
                if r.number().is_multiple_of(2) {
                    DeliveryPlan::full(n)
                } else {
                    DeliveryPlan::empty(n)
                }
            },
            |r| r.number() > 3,
        );
        assert!(!net
            .plan(Round::new(1), &ProcessSet::range(0, 2), 2)
            .delivered(p(0), p(1)));
        assert!(net
            .plan(Round::new(2), &ProcessSet::range(0, 2), 2)
            .delivered(p(0), p(1)));
        assert!(!net.is_good(Round::new(3)));
        assert!(net.is_good(Round::new(4)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gst_rejects_bad_loss() {
        let _ = Gst::new(1, 1.5, 0);
    }
}
