//! Deterministic lock-step simulator for the partially synchronous system
//! model of §2.1.
//!
//! The simulator runs any [`gencon_rounds::RoundProcess`] protocol over a
//! configurable [`NetworkModel`]:
//!
//! * [`AlwaysGood`] — synchronous from round 1;
//! * [`Gst`] — asynchronous (probabilistic loss) until a global
//!   stabilization round, good afterwards;
//! * [`RandomSubset`] — the `Prel` regime of randomized algorithms (§6):
//!   every receiver hears a random `n − b − f`-subset each round, no round
//!   is ever "good";
//! * [`Scripted`] — closure-driven plans for adversarial tests.
//!
//! Fault injection: [`CrashPlan`] schedules crash faults (including
//! mid-broadcast crashes); Byzantine participants implement
//! [`gencon_rounds::Adversary`] and may equivocate freely. In good rounds
//! the executor enforces the communication predicate the algorithm declares
//! per round — for `Pcons` it canonicalizes Byzantine equivocation, which is
//! exactly the guarantee a real `Pcons` implementation provides (the
//! `gencon-pcons` crate builds those protocols for real).
//!
//! Open-ended workloads (state-machine replication under client traffic)
//! use the per-round client-arrival injection hook:
//! [`SimBuilder::honest_driven`] couples a participant with a [`RoundHook`]
//! that runs with typed access to it before every sending step and after
//! every transition step.
//!
//! Executions are deterministic given the seeds, so every experiment in
//! `EXPERIMENTS.md` is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod faults;
mod inject;
mod network;
mod outcome;
mod trace;

pub use executor::{SimBuilder, SimError, Simulation};
pub use faults::{CrashAt, CrashPlan};
pub use inject::{Driven, RoundHook};
pub use network::{AlwaysGood, DeliveryPlan, Gst, NetworkModel, RandomSubset, Scripted};
pub use outcome::{properties, Outcome};
pub use trace::{Trace, TraceAudit, TracedRound};
