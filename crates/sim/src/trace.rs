//! Execution traces and predicate audits.
//!
//! When recording is enabled, the executor captures a
//! [`RoundRecord`](gencon_rounds::predicate::RoundRecord) per round:
//! what every honest process handed to the network and what every process
//! received. [`TraceAudit`] then *verifies* — not assumes — that the
//! execution provided the communication predicates the algorithm's
//! liveness proof needs:
//!
//! * in good rounds, the round record must satisfy the predicate the
//!   algorithm declared ([`RoundProcess::requirement`]);
//! * in every round, no honest process may have been impersonated (§2.1).
//!
//! This closes the loop between the system model of §2.1 and the
//! simulator's implementation of it.

use gencon_rounds::predicate::RoundRecord;
use gencon_rounds::Predicate;
use gencon_types::{Config, ProcessSet, Round};

/// One audited round: the record plus the context needed to judge it.
#[derive(Clone, Debug)]
pub struct TracedRound<M> {
    /// The round number.
    pub round: Round,
    /// Whether the network was in a good period.
    pub good: bool,
    /// The predicate the honest participants required this round.
    pub requirement: Predicate,
    /// The set of correct processes *at the end of the round*.
    pub correct: ProcessSet,
    /// The honest processes (correct + crashed).
    pub honest: ProcessSet,
    /// The sent/received record.
    pub record: RoundRecord<M>,
}

/// A recorded execution.
#[derive(Clone, Debug, Default)]
pub struct Trace<M> {
    rounds: Vec<TracedRound<M>>,
}

impl<M> Trace<M> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace { rounds: Vec::new() }
    }

    /// Appends a round.
    pub fn push(&mut self, round: TracedRound<M>) {
        self.rounds.push(round);
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Iterates the recorded rounds.
    pub fn iter(&self) -> impl Iterator<Item = &TracedRound<M>> {
        self.rounds.iter()
    }
}

impl<M: Clone + PartialEq> Trace<M> {
    /// Audits the whole trace against `cfg`.
    #[must_use]
    pub fn audit(&self, cfg: &Config) -> TraceAudit {
        let mut audit = TraceAudit::default();
        for tr in &self.rounds {
            audit.rounds_checked += 1;
            if !tr.record.no_impersonation(&tr.honest) {
                audit.impersonations.push(tr.round);
            }
            if tr.good {
                audit.good_rounds += 1;
                if !tr.record.satisfies(tr.requirement, &tr.correct, cfg) {
                    audit.predicate_violations.push((tr.round, tr.requirement));
                }
            }
        }
        audit
    }
}

/// The result of auditing a [`Trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceAudit {
    /// Rounds examined.
    pub rounds_checked: usize,
    /// Rounds that were in a good period.
    pub good_rounds: usize,
    /// Good rounds whose declared predicate did not hold.
    pub predicate_violations: Vec<(Round, Predicate)>,
    /// Rounds in which an honest process was impersonated.
    pub impersonations: Vec<Round>,
}

impl TraceAudit {
    /// Whether the execution upheld the system model.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.predicate_violations.is_empty() && self.impersonations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_rounds::HeardOf;
    use gencon_types::ProcessId;

    fn full_round(n: usize, r: u64, good: bool, req: Predicate) -> TracedRound<u32> {
        let sent: Vec<Option<u32>> = (0..n).map(|i| Some(i as u32)).collect();
        let received = (0..n)
            .map(|_| {
                let mut ho = HeardOf::empty(n);
                for q in 0..n {
                    ho.put(ProcessId::new(q), q as u32);
                }
                ho
            })
            .collect();
        TracedRound {
            round: Round::new(r),
            good,
            requirement: req,
            correct: ProcessSet::range(0, n),
            honest: ProcessSet::range(0, n),
            record: RoundRecord { sent, received },
        }
    }

    #[test]
    fn clean_trace_audits_clean() {
        let cfg = Config::new(3, 0, 0).unwrap();
        let mut trace = Trace::new();
        trace.push(full_round(3, 1, true, Predicate::Cons));
        trace.push(full_round(3, 2, true, Predicate::Good));
        let audit = trace.audit(&cfg);
        assert!(audit.is_clean());
        assert_eq!(audit.rounds_checked, 2);
        assert_eq!(audit.good_rounds, 2);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn bad_round_predicates_are_not_audited() {
        let cfg = Config::new(3, 0, 0).unwrap();
        let mut tr = full_round(3, 1, false, Predicate::Cons);
        tr.record.received[0].take(ProcessId::new(1)); // loss in a bad round
        let mut trace = Trace::new();
        trace.push(tr);
        assert!(trace.audit(&cfg).is_clean(), "bad rounds impose nothing");
    }

    #[test]
    fn good_round_violation_detected() {
        let cfg = Config::new(3, 0, 0).unwrap();
        let mut tr = full_round(3, 4, true, Predicate::Good);
        tr.record.received[0].take(ProcessId::new(1)); // loss in a GOOD round
        let mut trace = Trace::new();
        trace.push(tr);
        let audit = trace.audit(&cfg);
        assert_eq!(
            audit.predicate_violations,
            vec![(Round::new(4), Predicate::Good)]
        );
        assert!(!audit.is_clean());
    }

    #[test]
    fn impersonation_detected_even_in_bad_rounds() {
        let cfg = Config::new(3, 0, 0).unwrap();
        let mut tr = full_round(3, 2, false, Predicate::None);
        tr.record.received[2].put(ProcessId::new(0), 99); // forged content
        let mut trace = Trace::new();
        trace.push(tr);
        let audit = trace.audit(&cfg);
        assert_eq!(audit.impersonations, vec![Round::new(2)]);
    }
}
