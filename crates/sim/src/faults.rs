//! Crash-fault schedules for honest (benign-faulty) processes.

use gencon_types::{ProcessId, Round};

/// When and how a process crashes.
///
/// A crash takes effect *during* the sending step of `round`: the process
/// hands its message to only the first `partial_sends` destinations (in
/// destination-id order) — modeling a crash mid-broadcast, the classic
/// hard case for benign consensus — and never sends, receives or
/// transitions again.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrashAt {
    /// The round in which the crash occurs.
    pub round: Round,
    /// How many destinations still receive the final message
    /// (`usize::MAX` = the whole send completes, the crash hits just after).
    pub partial_sends: usize,
}

impl CrashAt {
    /// Crash cleanly *before* sending anything in `round`.
    #[must_use]
    pub fn silent(round: Round) -> Self {
        CrashAt {
            round,
            partial_sends: 0,
        }
    }

    /// Crash right after completing the sends of `round`.
    #[must_use]
    pub fn after_send(round: Round) -> Self {
        CrashAt {
            round,
            partial_sends: usize::MAX,
        }
    }

    /// Crash mid-broadcast: only the `k` lowest-id destinations are served.
    #[must_use]
    pub fn mid_send(round: Round, k: usize) -> Self {
        CrashAt {
            round,
            partial_sends: k,
        }
    }
}

/// The crash schedule of a whole system: at most one crash per process.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    crashes: Vec<(ProcessId, CrashAt)>,
}

impl CrashPlan {
    /// No crashes.
    #[must_use]
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Adds a crash for `p` (replacing any earlier entry for `p`).
    #[must_use]
    pub fn with(mut self, p: ProcessId, at: CrashAt) -> Self {
        self.crashes.retain(|(q, _)| *q != p);
        self.crashes.push((p, at));
        self
    }

    /// The crash scheduled for `p`, if any.
    #[must_use]
    pub fn for_process(&self, p: ProcessId) -> Option<CrashAt> {
        self.crashes
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, at)| *at)
    }

    /// Number of scheduled crashes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Whether no crash is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }

    /// Iterates over `(process, crash)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, CrashAt)> + '_ {
        self.crashes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn constructors() {
        let s = CrashAt::silent(Round::new(3));
        assert_eq!(s.partial_sends, 0);
        let a = CrashAt::after_send(Round::new(3));
        assert_eq!(a.partial_sends, usize::MAX);
        let m = CrashAt::mid_send(Round::new(3), 2);
        assert_eq!(m.partial_sends, 2);
        assert_eq!(m.round, Round::new(3));
    }

    #[test]
    fn plan_lookup() {
        let plan = CrashPlan::none()
            .with(p(1), CrashAt::silent(Round::new(2)))
            .with(p(3), CrashAt::mid_send(Round::new(5), 1));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.for_process(p(1)), Some(CrashAt::silent(Round::new(2))));
        assert_eq!(plan.for_process(p(0)), None);
        assert_eq!(plan.iter().count(), 2);
    }

    #[test]
    fn replacing_a_crash() {
        let plan = CrashPlan::none()
            .with(p(1), CrashAt::silent(Round::new(2)))
            .with(p(1), CrashAt::silent(Round::new(9)));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.for_process(p(1)).unwrap().round, Round::new(9));
    }
}
