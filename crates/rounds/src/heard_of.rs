//! The per-round receive vector `~µ_p^r`.

use gencon_types::{ProcessId, ProcessSet};

/// The vector of messages a process received in one round, indexed by sender
/// (the paper's `~µ_p^r`; `~µ_p^r[q]` is [`HeardOf::from`]).
///
/// A `None` entry means no message from that sender was received this round
/// (the paper's `⊥`).
///
/// ```
/// use gencon_rounds::HeardOf;
/// use gencon_types::ProcessId;
///
/// let mut ho: HeardOf<&str> = HeardOf::empty(3);
/// ho.put(ProcessId::new(1), "hello");
/// assert_eq!(ho.from(ProcessId::new(1)), Some(&"hello"));
/// assert_eq!(ho.from(ProcessId::new(0)), None);
/// assert_eq!(ho.count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HeardOf<M> {
    slots: Vec<Option<M>>,
}

impl<M> HeardOf<M> {
    /// An empty vector for a system of `n` processes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        HeardOf { slots }
    }

    /// System size `n` this vector is sized for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Records the message received from `sender`, replacing any previous
    /// one (closed rounds deliver at most one message per sender).
    pub fn put(&mut self, sender: ProcessId, msg: M) {
        self.slots[sender.index()] = Some(msg);
    }

    /// Removes and returns the message from `sender`.
    pub fn take(&mut self, sender: ProcessId) -> Option<M> {
        self.slots[sender.index()].take()
    }

    /// The message received from `q`, or `None` (⊥).
    #[must_use]
    pub fn from(&self, q: ProcessId) -> Option<&M> {
        self.slots[q.index()].as_ref()
    }

    /// Number of non-⊥ entries (`|~µ_p^r|` in the FLV conditions).
    #[must_use]
    pub fn count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether nothing was received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Iterates over `(sender, message)` pairs in sender order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|m| (ProcessId::new(i), m)))
    }

    /// Iterates over received messages only.
    pub fn messages(&self) -> impl Iterator<Item = &M> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// The set of senders heard from.
    #[must_use]
    pub fn senders(&self) -> ProcessSet {
        self.iter().map(|(p, _)| p).collect()
    }

    /// Maps every present message through `f`, keeping sender positions.
    #[must_use]
    pub fn map<N>(&self, mut f: impl FnMut(ProcessId, &M) -> N) -> HeardOf<N> {
        HeardOf {
            slots: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, s)| s.as_ref().map(|m| f(ProcessId::new(i), m)))
                .collect(),
        }
    }

    /// Keeps only the entries whose sender is in `keep`.
    #[must_use]
    pub fn restricted_to(&self, keep: ProcessSet) -> HeardOf<M>
    where
        M: Clone,
    {
        HeardOf {
            slots: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    if keep.contains(ProcessId::new(i)) {
                        s.clone()
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }
}

impl<M> FromIterator<(ProcessId, M)> for HeardOf<M> {
    /// Collects `(sender, message)` pairs into a vector sized to the largest
    /// sender index + 1. Mostly useful in tests; executors should prefer
    /// [`HeardOf::empty`] + [`HeardOf::put`] with the exact system size.
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let pairs: Vec<(ProcessId, M)> = iter.into_iter().collect();
        let n = pairs.iter().map(|(p, _)| p.index() + 1).max().unwrap_or(0);
        let mut ho = HeardOf::empty(n);
        for (p, m) in pairs {
            ho.put(p, m);
        }
        ho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_vector() {
        let ho: HeardOf<u32> = HeardOf::empty(4);
        assert_eq!(ho.n(), 4);
        assert_eq!(ho.count(), 0);
        assert!(ho.is_empty());
        assert_eq!(ho.from(p(0)), None);
    }

    #[test]
    fn put_take_from() {
        let mut ho = HeardOf::empty(3);
        ho.put(p(1), 10u32);
        ho.put(p(1), 11); // replaced, not duplicated
        assert_eq!(ho.count(), 1);
        assert_eq!(ho.from(p(1)), Some(&11));
        assert_eq!(ho.take(p(1)), Some(11));
        assert_eq!(ho.from(p(1)), None);
    }

    #[test]
    fn iteration_in_sender_order() {
        let mut ho = HeardOf::empty(5);
        ho.put(p(4), "d");
        ho.put(p(0), "a");
        ho.put(p(2), "b");
        let got: Vec<_> = ho.iter().map(|(q, m)| (q.index(), *m)).collect();
        assert_eq!(got, [(0, "a"), (2, "b"), (4, "d")]);
        assert_eq!(ho.messages().count(), 3);
        assert_eq!(ho.senders().len(), 3);
    }

    #[test]
    fn map_preserves_positions() {
        let mut ho = HeardOf::empty(3);
        ho.put(p(2), 5u32);
        let doubled = ho.map(|_, m| m * 2);
        assert_eq!(doubled.from(p(2)), Some(&10));
        assert_eq!(doubled.from(p(0)), None);
    }

    #[test]
    fn restriction_filters_senders() {
        let mut ho = HeardOf::empty(4);
        for i in 0..4 {
            ho.put(p(i), i as u32);
        }
        let keep = ProcessSet::range(1, 2); // {1, 2}
        let r = ho.restricted_to(keep);
        assert_eq!(r.count(), 2);
        assert_eq!(r.from(p(1)), Some(&1));
        assert_eq!(r.from(p(3)), None);
    }

    #[test]
    fn from_iterator_collects_pairs() {
        let ho: HeardOf<&str> = [(p(2), "x"), (p(0), "y")].into_iter().collect();
        assert_eq!(ho.n(), 3);
        assert_eq!(ho.from(p(2)), Some(&"x"));
        assert_eq!(ho.from(p(0)), Some(&"y"));
    }
}
