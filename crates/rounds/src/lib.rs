//! The closed-round execution model of §2.1 (Heard-Of style).
//!
//! Distributed algorithms are expressed as a sequence of *rounds*: in round
//! `r` each process sends messages according to a sending function and, at
//! the end of the round, computes a new state from the vector of messages it
//! received (`~µ_p^r`). Rounds are **closed**: a message sent in round `r` is
//! received in round `r` or never.
//!
//! This crate defines:
//!
//! * [`RoundProcess`] — the sending/transition interface honest processes
//!   implement (`gencon-core`'s engine is one implementation);
//! * [`Adversary`] — the interface Byzantine participants implement; they may
//!   send *different* messages to different receivers (equivocation) but can
//!   never impersonate an honest process (the executor enforces sender
//!   identity, matching §2.1);
//! * [`Outgoing`] / [`HeardOf`] — per-round send instructions and receive
//!   vectors;
//! * [`Predicate`] and the checkers in [`predicate`] — the communication
//!   predicates `Pgood`, `Pcons` and `Prel` that the partially synchronous
//!   system guarantees in good periods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heard_of;
mod participant;
pub mod predicate;

pub use heard_of::HeardOf;
pub use participant::{Adversary, Outgoing, RoundProcess};
pub use predicate::Predicate;
