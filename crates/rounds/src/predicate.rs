//! Communication predicates (§2.1, §6) and trace checkers.
//!
//! In the paper's partially synchronous system, *good periods* guarantee:
//!
//! * `Pgood(r)`: every correct process receives every message sent by a
//!   correct process in round `r`;
//! * `Pcons(r)`: `Pgood(r)` and all correct processes receive the *same set*
//!   of messages (including, possibly, identical messages from Byzantine
//!   senders);
//! * `Prel(r)` (randomized algorithms, §6): every correct process receives at
//!   least `n − b − f` messages in round `r`.
//!
//! The checkers in this module verify these properties on recorded round
//! deliveries. The simulator uses them both to *enforce* predicates in good
//! periods and to *audit* that an execution provided what the algorithm's
//! liveness proof assumes.

use gencon_types::{Config, ProcessId, ProcessSet};

use crate::heard_of::HeardOf;

/// The communication predicate a round relies on for liveness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Predicate {
    /// No guarantee needed (safety-only round, or the algorithm tolerates
    /// arbitrary loss here).
    #[default]
    None,
    /// `Pgood`: correct-to-correct delivery is complete.
    Good,
    /// `Pcons`: `Pgood` plus all correct processes receive identical vectors.
    Cons,
    /// `Prel`: at least `n − b − f` messages delivered to every correct
    /// process ("reliable channels" of randomized algorithms).
    Rel,
}

impl Predicate {
    /// Whether this predicate subsumes `other` (a round satisfying `self`
    /// also satisfies `other`).
    #[must_use]
    pub fn implies(self, other: Predicate) -> bool {
        use Predicate::*;
        match (self, other) {
            (_, None) => true,
            (Cons, Good) => true,
            (a, b) => a == b,
        }
    }
}

/// A recorded round: what each honest process sent (by sender index) and
/// what each process received.
///
/// `sent[q] = None` for Byzantine or crashed-silent processes (their "state"
/// is not meaningful — footnote 2 of the paper).
#[derive(Clone, Debug)]
pub struct RoundRecord<M> {
    /// Message each *honest* sender handed to the network this round
    /// (`None` for silent/crashed/Byzantine senders; Byzantine sends are
    /// per-receiver and live only in `received`).
    pub sent: Vec<Option<M>>,
    /// Heard-of vector of each process.
    pub received: Vec<HeardOf<M>>,
}

impl<M: Clone + PartialEq> RoundRecord<M> {
    /// Checks `Pgood(r)` restricted to the given correct set: for all
    /// `p, q ∈ correct`, `received[p][q] == sent[q]`.
    #[must_use]
    pub fn satisfies_pgood(&self, correct: &ProcessSet) -> bool {
        for p in correct.iter() {
            for q in correct.iter() {
                let got = self.received[p.index()].from(q);
                // A correct process that sent nothing this round (e.g. a
                // non-validator in a validation round) imposes nothing.
                if let Some(w) = self.sent[q.index()].as_ref() {
                    if got != Some(w) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Checks `Pcons(r)`: `Pgood(r)` plus identical heard-of vectors across
    /// correct processes.
    #[must_use]
    pub fn satisfies_pcons(&self, correct: &ProcessSet) -> bool {
        if !self.satisfies_pgood(correct) {
            return false;
        }
        let mut iter = correct.iter();
        let Some(first) = iter.next() else {
            return true;
        };
        let reference = &self.received[first.index()];
        iter.all(|p| &self.received[p.index()] == reference)
    }

    /// Checks `Prel(r)` for the given configuration: every correct process
    /// heard at least `n − b − f` messages.
    #[must_use]
    pub fn satisfies_prel(&self, correct: &ProcessSet, cfg: &Config) -> bool {
        correct
            .iter()
            .all(|p| self.received[p.index()].count() >= cfg.correct_minimum())
    }

    /// Checks the named predicate.
    #[must_use]
    pub fn satisfies(&self, pred: Predicate, correct: &ProcessSet, cfg: &Config) -> bool {
        match pred {
            Predicate::None => true,
            Predicate::Good => self.satisfies_pgood(correct),
            Predicate::Cons => self.satisfies_pcons(correct),
            Predicate::Rel => self.satisfies_prel(correct, cfg),
        }
    }

    /// Checks that no honest process was impersonated: for every honest
    /// sender `q` and *any* receiver `p`, a received message attributed to
    /// `q` equals what `q` actually sent (§2.1: "if an honest process
    /// receives v from p in round r, and p is honest, then p sent v").
    #[must_use]
    pub fn no_impersonation(&self, honest: &ProcessSet) -> bool {
        for q in honest.iter() {
            for received in &self.received {
                if let Some(got) = received.from(q) {
                    match self.sent[q.index()].as_ref() {
                        Some(sent) => {
                            if got != sent {
                                return false;
                            }
                        }
                        None => return false, // heard from someone who sent nothing
                    }
                }
            }
        }
        true
    }
}

/// Convenience: a process id iterator for `0..n` (used by checkers/tests).
pub fn all_ids(n: usize) -> impl Iterator<Item = ProcessId> {
    (0..n).map(ProcessId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Builds a record where every process broadcast its sender index and
    /// everything was delivered.
    fn full_delivery(n: usize) -> RoundRecord<usize> {
        let sent: Vec<Option<usize>> = (0..n).map(Some).collect();
        let received = (0..n)
            .map(|_| {
                let mut ho = HeardOf::empty(n);
                for q in 0..n {
                    ho.put(p(q), q);
                }
                ho
            })
            .collect();
        RoundRecord { sent, received }
    }

    #[test]
    fn full_delivery_satisfies_everything() {
        let rec = full_delivery(4);
        let correct = ProcessSet::range(0, 4);
        let cfg = Config::new(4, 0, 0).unwrap();
        assert!(rec.satisfies_pgood(&correct));
        assert!(rec.satisfies_pcons(&correct));
        assert!(rec.satisfies_prel(&correct, &cfg));
        assert!(rec.no_impersonation(&correct));
        assert!(rec.satisfies(Predicate::None, &correct, &cfg));
        assert!(rec.satisfies(Predicate::Good, &correct, &cfg));
        assert!(rec.satisfies(Predicate::Cons, &correct, &cfg));
        assert!(rec.satisfies(Predicate::Rel, &correct, &cfg));
    }

    #[test]
    fn dropped_correct_message_violates_pgood() {
        let mut rec = full_delivery(3);
        let correct = ProcessSet::range(0, 3);
        rec.received[1].take(p(0)); // p1 missed p0's message
        assert!(!rec.satisfies_pgood(&correct));
        assert!(!rec.satisfies_pcons(&correct));
    }

    #[test]
    fn drop_outside_correct_set_is_tolerated() {
        let mut rec = full_delivery(3);
        // p2 is faulty: message loss to/from it does not violate Pgood(C).
        let correct = ProcessSet::range(0, 2);
        rec.received[1].take(p(2));
        rec.received[2].take(p(0));
        assert!(rec.satisfies_pgood(&correct));
    }

    #[test]
    fn inconsistent_byzantine_entries_violate_pcons_only() {
        let mut rec = full_delivery(4);
        // p3 Byzantine: equivocates 100 to p0, 200 to p1.
        let correct = ProcessSet::range(0, 3);
        rec.sent[3] = None;
        rec.received[0].put(p(3), 100);
        rec.received[1].put(p(3), 200);
        rec.received[2].take(p(3));
        assert!(
            rec.satisfies_pgood(&correct),
            "Pgood ignores Byzantine entries"
        );
        assert!(
            !rec.satisfies_pcons(&correct),
            "Pcons requires identical vectors"
        );
    }

    #[test]
    fn prel_counts_messages() {
        let mut rec = full_delivery(4);
        let correct = ProcessSet::range(0, 3);
        let cfg = Config::new(4, 1, 0).unwrap(); // n-b-f = 3
        rec.received[0].take(p(1)); // still 3 left
        assert!(rec.satisfies_prel(&correct, &cfg));
        rec.received[0].take(p(2)); // now only 2
        assert!(!rec.satisfies_prel(&correct, &cfg));
    }

    #[test]
    fn impersonation_detected() {
        let mut rec = full_delivery(3);
        let honest = ProcessSet::range(0, 3);
        rec.received[2].put(p(0), 42); // someone forged p0's message to p2
        assert!(!rec.no_impersonation(&honest));
    }

    #[test]
    fn silent_sender_cannot_be_heard() {
        let mut rec = full_delivery(3);
        let honest = ProcessSet::range(0, 3);
        rec.sent[1] = None; // p1 sent nothing…
        assert!(!rec.no_impersonation(&honest), "…yet someone heard from it");
        rec.received[0].take(p(1));
        rec.received[1].take(p(1));
        rec.received[2].take(p(1));
        assert!(rec.no_impersonation(&honest));
    }

    #[test]
    fn predicate_implication_lattice() {
        use Predicate::*;
        assert!(Cons.implies(Good));
        assert!(Cons.implies(None));
        assert!(Good.implies(None));
        assert!(!Good.implies(Cons));
        assert!(Rel.implies(Rel));
        assert!(!Rel.implies(Good));
        assert!(None.implies(None));
    }

    #[test]
    fn all_ids_enumerates() {
        let ids: Vec<usize> = all_ids(3).map(|p| p.index()).collect();
        assert_eq!(ids, [0, 1, 2]);
    }
}
