//! Participant interfaces: honest round processes and Byzantine adversaries.

use gencon_types::{ProcessId, ProcessSet, Round};

use crate::heard_of::HeardOf;
use crate::predicate::Predicate;

/// What a participant sends in one round.
///
/// Honest algorithms use [`Outgoing::Broadcast`] ("send to all", lines 19
/// and 29 of Algorithm 1) or [`Outgoing::Multicast`] ("send to
/// `Selector(p, φ)`", line 7). Only adversaries use [`Outgoing::PerDest`],
/// which can carry a *different* message per receiver (equivocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outgoing<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message to every process (including self: a process
    /// receives its own round-r message in round r, as in the paper where
    /// `~µ_p^r[p] = S_p^r(s_p^r)` under `Pgood`).
    Broadcast(M),
    /// Send the same message to the given destinations only.
    Multicast {
        /// Destination processes.
        dests: ProcessSet,
        /// Message for all of them.
        msg: M,
    },
    /// Per-destination messages; distinct payloads allowed (Byzantine
    /// equivocation). Multiple entries for the same destination keep the
    /// last one (closed rounds deliver at most one message per sender).
    PerDest(Vec<(ProcessId, M)>),
}

impl<M: Clone> Outgoing<M> {
    /// The message this instruction addresses to `dest`, if any.
    #[must_use]
    pub fn message_for(&self, dest: ProcessId) -> Option<M> {
        match self {
            Outgoing::Silent => None,
            Outgoing::Broadcast(m) => Some(m.clone()),
            Outgoing::Multicast { dests, msg } => dests.contains(dest).then(|| msg.clone()),
            Outgoing::PerDest(pairs) => pairs
                .iter()
                .rev()
                .find(|(d, _)| *d == dest)
                .map(|(_, m)| m.clone()),
        }
    }

    /// Number of point-to-point messages this instruction expands to in a
    /// system of `n` processes (metric for experiment E6).
    #[must_use]
    pub fn fanout(&self, n: usize) -> usize {
        match self {
            Outgoing::Silent => 0,
            Outgoing::Broadcast(_) => n,
            Outgoing::Multicast { dests, .. } => dests.len(),
            Outgoing::PerDest(pairs) => {
                let mut seen = ProcessSet::new();
                for (d, _) in pairs {
                    seen.insert(*d);
                }
                seen.len()
            }
        }
    }
}

/// An honest participant of the round model: the sending function `S_p^r`
/// and transition function `T_p^r` of §2.1, plus the declaration of which
/// communication predicate each round needs for liveness.
///
/// Implementations must be deterministic functions of their state and
/// inputs (randomized algorithms carry their own seeded RNG in their state),
/// so executions are reproducible.
pub trait RoundProcess: Send {
    /// Message type exchanged by this protocol.
    type Msg: Clone + Send + 'static;
    /// Terminal output (e.g. the decided value).
    type Output: Clone + Send + 'static;

    /// This process's identifier.
    fn id(&self) -> ProcessId;

    /// The communication predicate round `r` needs *for liveness*
    /// (safety never depends on it). Selection rounds of Algorithm 1 return
    /// [`Predicate::Cons`]; other rounds [`Predicate::Good`]; randomized
    /// algorithms [`Predicate::Rel`] everywhere.
    fn requirement(&self, r: Round) -> Predicate;

    /// Sending function `S_p^r`: what to send in round `r`.
    fn send(&mut self, r: Round) -> Outgoing<Self::Msg>;

    /// Transition function `T_p^r`: consume the heard-of vector of round `r`.
    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>);

    /// The decision, once reached. A decided process keeps participating
    /// (its votes help laggards reach `TD`), so this may be `Some` for many
    /// rounds.
    fn output(&self) -> Option<Self::Output>;
}

impl<P: RoundProcess + ?Sized> RoundProcess for Box<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn id(&self) -> ProcessId {
        (**self).id()
    }

    fn requirement(&self, r: Round) -> Predicate {
        (**self).requirement(r)
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        (**self).send(r)
    }

    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        (**self).receive(r, heard)
    }

    fn output(&self) -> Option<Self::Output> {
        (**self).output()
    }
}

/// A Byzantine participant: sends arbitrary per-receiver messages and
/// observes whatever it receives.
///
/// The executor gives adversaries the same information a real Byzantine
/// process would have — messages addressed to it — and faithfully delivers
/// their (possibly equivocating) sends under the network model. What it does
/// **not** allow is impersonation: messages are always attributed to their
/// true sender (§2.1, "honest processes cannot be impersonated").
pub trait Adversary: Send {
    /// Message type of the protocol under attack.
    type Msg: Clone + Send + 'static;

    /// This process's identifier.
    fn id(&self) -> ProcessId;

    /// Messages to inject in round `r` (equivocation allowed).
    fn send(&mut self, r: Round) -> Outgoing<Self::Msg>;

    /// Observe the messages honest processes sent to this adversary.
    fn observe(&mut self, r: Round, heard: &HeardOf<Self::Msg>);
}

impl<A: Adversary + ?Sized> Adversary for Box<A> {
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        (**self).id()
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        (**self).send(r)
    }

    fn observe(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        (**self).observe(r, heard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn silent_sends_nothing() {
        let o: Outgoing<u8> = Outgoing::Silent;
        assert_eq!(o.message_for(p(0)), None);
        assert_eq!(o.fanout(5), 0);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let o = Outgoing::Broadcast(7u8);
        assert_eq!(o.message_for(p(0)), Some(7));
        assert_eq!(o.message_for(p(4)), Some(7));
        assert_eq!(o.fanout(5), 5);
    }

    #[test]
    fn multicast_respects_destinations() {
        let o = Outgoing::Multicast {
            dests: ProcessSet::range(1, 2),
            msg: 9u8,
        };
        assert_eq!(o.message_for(p(0)), None);
        assert_eq!(o.message_for(p(1)), Some(9));
        assert_eq!(o.message_for(p(2)), Some(9));
        assert_eq!(o.fanout(5), 2);
    }

    #[test]
    fn per_dest_allows_equivocation() {
        let o = Outgoing::PerDest(vec![(p(0), 1u8), (p(1), 2)]);
        assert_eq!(o.message_for(p(0)), Some(1));
        assert_eq!(o.message_for(p(1)), Some(2));
        assert_eq!(o.message_for(p(2)), None);
        assert_eq!(o.fanout(5), 2);
    }

    #[test]
    fn per_dest_last_entry_wins() {
        let o = Outgoing::PerDest(vec![(p(0), 1u8), (p(0), 3)]);
        assert_eq!(o.message_for(p(0)), Some(3));
        assert_eq!(o.fanout(5), 1, "duplicate destinations count once");
    }
}
