//! Per-stage metrics for `gencon` nodes.
//!
//! The staged node pipeline (ingest → order → apply → persist → ack)
//! needs per-stage visibility: which queue backs up, where round time
//! goes, how often the WAL fsyncs and how far the durable watermark
//! trails the applied log. This crate is the shared facility every stage
//! reports into:
//!
//! * [`Counter`] — monotonically increasing `u64` (frames decoded,
//!   fsyncs, acks, drops);
//! * [`Gauge`] — last-written `u64` (queue depth, watermark position);
//! * [`Histogram`] — lock-free log-bucketed samples with the same
//!   HDR-style bucketing as `gencon_load`'s `LatencyHistogram` (exact
//!   below 64, ≤3.1% relative error above), for stage latencies in
//!   microseconds;
//! * [`Registry`] — names them, hands out cheap `Arc`-backed handles,
//!   and renders everything as one flat JSON object with stable key
//!   order ([`Registry::dump_json`]).
//!
//! All handles are `Clone + Send + Sync`: a stage thread records through
//! its handle without locking the registry. Dumps are triggered by the
//! embedding binary — `gencon-server --metrics-file` writes one on exit,
//! and [`install_sigusr1_dump`] (Unix) writes one whenever the process
//! receives `SIGUSR1`.
//!
//! # Example
//!
//! ```
//! use gencon_metrics::Registry;
//! let registry = Registry::new();
//! let frames = registry.counter("ingest.frames");
//! let depth = registry.gauge("ingest.queue_depth");
//! let lat = registry.histogram("order.round_us");
//! frames.inc();
//! depth.set(3);
//! lat.record(250);
//! let json = registry.dump_json();
//! assert!(json.contains("\"ingest.frames\":1"));
//! assert!(json.contains("\"order.round_us\":{\"count\":1"));
//! ```

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: 2^SUB sub-buckets per octave (matches
/// `gencon_load::LatencyHistogram`).
const SUB: u32 = 5;
/// Values below this are their own bucket (exact).
const LINEAR_MAX: u64 = 1 << (SUB + 1);
/// Fixed bucket count covering the whole `u64` range: 64 linear buckets
/// plus 32 sub-buckets for each of the 58 octaves above.
const BUCKETS: usize = LINEAR_MAX as usize + ((64 - SUB as usize - 1) << SUB);

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value (queue depth, watermark position).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is higher (watermarks).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index of `v` (same scheme as `gencon_load`'s histogram).
fn index_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB + 1
    let octave = msb - SUB; // ≥ 1
    let sub = (v >> (msb - SUB)) as usize - (1 << SUB); // 0..2^SUB
    LINEAR_MAX as usize + ((octave as usize - 1) << SUB) + sub
}

/// Upper edge of bucket `idx` (quantiles report this — conservative,
/// never underestimating the true sample).
fn value_of(idx: usize) -> u64 {
    if (idx as u64) < LINEAR_MAX {
        return idx as u64;
    }
    let rel = idx - LINEAR_MAX as usize;
    let octave = (rel >> SUB) as u32 + 1;
    let sub = (rel & ((1 << SUB) - 1)) as u64;
    let width = 1u64 << octave;
    let lower = ((1u64 << SUB) + sub) << octave;
    lower + (width - 1)
}

/// A lock-free log-bucketed histogram of `u64` samples.
///
/// Recording is a single relaxed `fetch_add` into a fixed bucket array,
/// so stage threads can record on the hot path. Quantiles are computed
/// from a snapshot at dump time.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Histogram(Arc::new(HistogramInner {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// The exact largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.0.sum.load(Ordering::Relaxed) as f64 / count as f64
    }

    /// The value at quantile `q` in `[0, 1]` (bucket upper edge; 0 when
    /// empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return value_of(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Median sample.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// Names metric handles and renders them as JSON.
///
/// Cloning the registry shares the underlying metric set; registering a
/// name twice returns the existing handle, so independent components can
/// meet on a shared metric.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// The histogram named `name`, creating it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::default();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// The value of counter `name`, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.get())
    }

    /// The value of gauge `name`, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, g)| g.get())
    }

    /// Renders every metric as one flat JSON object, keys sorted:
    /// counters and gauges as `"name":value`, histograms as
    /// `"name":{"count":…,"mean":…,"p50":…,"p99":…,"max":…}`.
    #[must_use]
    pub fn dump_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut entries: Vec<(String, String)> = Vec::new();
        for (name, c) in &inner.counters {
            entries.push((name.clone(), c.get().to_string()));
        }
        for (name, g) in &inner.gauges {
            entries.push((name.clone(), g.get().to_string()));
        }
        for (name, h) in &inner.histograms {
            entries.push((
                name.clone(),
                format!(
                    "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"max\":{}}}",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p99(),
                    h.max()
                ),
            ));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (name, val)) in entries.iter().enumerate() {
            let _ = write!(out, "  \"{name}\":{val}");
            if i + 1 < entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// Writes [`Registry::dump_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `std::fs::write` error.
    pub fn dump_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.dump_json())
    }

    /// Every counter's `(name, value)`, sorted by name.
    #[must_use]
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Every gauge's `(name, value)`, sorted by name.
    #[must_use]
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out: Vec<(String, u64)> = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Milliseconds since the Unix epoch (snapshot timestamps).
#[must_use]
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// One timestamped snapshot of every counter and gauge in a registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistorySnapshot {
    /// Milliseconds since the Unix epoch at sampling time.
    pub ts_ms: u64,
    /// Counter `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl HistorySnapshot {
    /// One JSON object, no trailing newline:
    /// `{"ts_ms":…,"counters":{…},"gauges":{…}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let render = |pairs: &[(String, u64)]| {
            let body: Vec<String> = pairs.iter().map(|(n, v)| format!("\"{n}\":{v}")).collect();
            format!("{{{}}}", body.join(","))
        };
        format!(
            "{{\"ts_ms\":{},\"counters\":{},\"gauges\":{}}}",
            self.ts_ms,
            render(&self.counters),
            render(&self.gauges),
        )
    }

    fn value(pairs: &[(String, u64)], name: &str) -> Option<u64> {
        pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Per-second rates derived from the deltas between the two newest
/// history snapshots — *interval* rates, not cumulative averages.
#[derive(Clone, Debug)]
pub struct RateReport {
    /// Wall-clock span between the two snapshots.
    pub interval_ms: u64,
    /// Commands applied per second (delta of the `order.applied`
    /// watermark gauge — present on any observed node, gateway or not).
    pub cmds_per_sec: f64,
    /// WAL fsyncs per second (delta of the `persist.fsyncs` counter; 0
    /// on in-memory nodes).
    pub fsyncs_per_sec: f64,
    /// Consensus rounds per second (delta of the `order.rounds` counter).
    pub rounds_per_sec: f64,
    /// Every counter's interval rate, sorted by name.
    pub counters: Vec<(String, f64)>,
}

impl RateReport {
    /// One JSON object, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, r)| format!("\"{n}\":{r:.3}"))
            .collect();
        format!(
            "{{\"interval_ms\":{},\"cmds_per_sec\":{:.3},\"fsyncs_per_sec\":{:.3},\
             \"rounds_per_sec\":{:.3},\"counters\":{{{}}}}}",
            self.interval_ms,
            self.cmds_per_sec,
            self.fsyncs_per_sec,
            self.rounds_per_sec,
            counters.join(","),
        )
    }
}

/// The interval delta of a monotone value, tolerating resets: a value
/// that went *down* is a restarted/reset source, counted from zero.
fn reset_aware_delta(prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

struct HistoryInner {
    cap: usize,
    buf: std::collections::VecDeque<HistorySnapshot>,
}

/// A fixed-capacity ring of timestamped registry snapshots — the
/// in-node metrics history behind the admin `history` and `rates`
/// commands. A sampler thread ([`HistoryRing::spawn_sampler`]) pushes a
/// snapshot every interval; the ring wraps by dropping the oldest.
/// Clones share the ring (sampler writes, admin reads).
#[derive(Clone)]
pub struct HistoryRing {
    inner: Arc<Mutex<HistoryInner>>,
}

impl std::fmt::Debug for HistoryRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("history ring poisoned");
        f.debug_struct("HistoryRing")
            .field("cap", &inner.cap)
            .field("len", &inner.buf.len())
            .finish()
    }
}

impl HistoryRing {
    /// A ring holding at most `capacity` snapshots (min 2: rates need a
    /// delta).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        HistoryRing {
            inner: Arc::new(Mutex::new(HistoryInner {
                cap: capacity.max(2),
                buf: std::collections::VecDeque::new(),
            })),
        }
    }

    /// The ring's capacity in snapshots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("history ring poisoned").cap
    }

    /// Snapshots currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("history ring poisoned").buf.len()
    }

    /// Whether no snapshot has been taken yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots `registry` now (wall-clock timestamp).
    pub fn sample(&self, registry: &Registry) {
        self.sample_at(registry, now_ms());
    }

    /// Snapshots `registry` with an explicit timestamp (tests pin the
    /// clock; rates divide by the timestamp delta).
    pub fn sample_at(&self, registry: &Registry, ts_ms: u64) {
        let snap = HistorySnapshot {
            ts_ms,
            counters: registry.counter_values(),
            gauges: registry.gauge_values(),
        };
        let mut inner = self.inner.lock().expect("history ring poisoned");
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(snap);
    }

    /// The newest `n` snapshots, oldest first.
    #[must_use]
    pub fn tail(&self, n: usize) -> Vec<HistorySnapshot> {
        let inner = self.inner.lock().expect("history ring poisoned");
        let skip = inner.buf.len().saturating_sub(n);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Rates derived from the two newest snapshots; `None` until two
    /// samples exist or while their timestamps coincide.
    #[must_use]
    pub fn rates(&self) -> Option<RateReport> {
        let (prev, cur) = {
            let inner = self.inner.lock().expect("history ring poisoned");
            let len = inner.buf.len();
            if len < 2 {
                return None;
            }
            (inner.buf[len - 2].clone(), inner.buf[len - 1].clone())
        };
        let interval_ms = cur.ts_ms.saturating_sub(prev.ts_ms);
        if interval_ms == 0 {
            return None;
        }
        let secs = interval_ms as f64 / 1e3;
        let counter_rate = |name: &str| {
            let p = HistorySnapshot::value(&prev.counters, name).unwrap_or(0);
            let c = HistorySnapshot::value(&cur.counters, name).unwrap_or(0);
            reset_aware_delta(p, c) as f64 / secs
        };
        let gauge_rate = |name: &str| {
            let p = HistorySnapshot::value(&prev.gauges, name).unwrap_or(0);
            let c = HistorySnapshot::value(&cur.gauges, name).unwrap_or(0);
            reset_aware_delta(p, c) as f64 / secs
        };
        let counters: Vec<(String, f64)> = cur
            .counters
            .iter()
            .map(|(name, val)| {
                let p = HistorySnapshot::value(&prev.counters, name).unwrap_or(0);
                (name.clone(), reset_aware_delta(p, *val) as f64 / secs)
            })
            .collect();
        Some(RateReport {
            interval_ms,
            cmds_per_sec: gauge_rate("order.applied"),
            fsyncs_per_sec: counter_rate("persist.fsyncs"),
            rounds_per_sec: counter_rate("order.rounds"),
            counters,
        })
    }

    /// Spawns a detached sampler thread snapshotting `registry` into
    /// this ring every `interval`, for the life of the process.
    pub fn spawn_sampler(&self, registry: Registry, interval: std::time::Duration) {
        let ring = self.clone();
        std::thread::spawn(move || loop {
            ring.sample(&registry);
            std::thread::sleep(interval);
        });
    }
}

/// Counter name for SLO-conforming observations.
pub const SLO_GOOD: &str = "slo.good";
/// Counter name for SLO-violating observations.
pub const SLO_BAD: &str = "slo.bad";

/// Tracks a latency SLO: every observation is classified against a
/// fixed budget into the [`SLO_GOOD`]/[`SLO_BAD`] registry counters.
///
/// Because the counters live in the ordinary [`Registry`], the
/// [`HistoryRing`] sampler snapshots them like everything else — burn
/// rates over *any* window fall out of the history for free
/// ([`slo_burn`]), locally and for a remote monitor reading the admin
/// `history` command.
#[derive(Clone, Debug)]
pub struct SloTracker {
    budget_us: u64,
    good: Counter,
    bad: Counter,
}

impl SloTracker {
    /// A tracker classifying against `budget_us` (e.g. the p99 target
    /// from `--slo-p99-us`), counting into `registry`.
    #[must_use]
    pub fn new(registry: &Registry, budget_us: u64) -> Self {
        SloTracker {
            budget_us,
            good: registry.counter(SLO_GOOD),
            bad: registry.counter(SLO_BAD),
        }
    }

    /// The latency budget observations are classified against (µs).
    #[must_use]
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// Classifies one end-to-end latency observation.
    pub fn observe(&self, e2e_us: u64) {
        if e2e_us <= self.budget_us {
            self.good.inc();
        } else {
            self.bad.inc();
        }
    }

    /// Observations within budget so far.
    #[must_use]
    pub fn good(&self) -> u64 {
        self.good.get()
    }

    /// Observations over budget so far.
    #[must_use]
    pub fn bad(&self) -> u64 {
        self.bad.get()
    }
}

/// The error budget a p99 target implies: 1% of events may breach.
pub const SLO_ERROR_BUDGET_P99: f64 = 0.01;

/// An SLO burn rate over one history window: how fast the error budget
/// is being consumed (1.0 = exactly on budget, 10.0 = budget gone in a
/// tenth of the period).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloBurn {
    /// Wall-clock span of the window (ms).
    pub window_ms: u64,
    /// SLO-conforming events inside the window.
    pub good: u64,
    /// SLO-violating events inside the window.
    pub bad: u64,
    /// `(bad / (good + bad)) / error_budget`.
    pub burn: f64,
}

impl SloBurn {
    /// One JSON object, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window_ms\":{},\"good\":{},\"bad\":{},\"burn\":{:.3}}}",
            self.window_ms, self.good, self.bad, self.burn
        )
    }
}

/// The burn rate over the window spanned by `snaps` (oldest → newest
/// [`SLO_GOOD`]/[`SLO_BAD`] deltas, reset-aware). `None` until the
/// window has two snapshots, and when no SLO-classified event landed
/// inside it (an idle window burns nothing — but a window of *only*
/// bad events reports its burn, it is not idle).
///
/// Pass tails of different lengths for a multi-window view: the short
/// window catches a fast burn early, the long one confirms a slow
/// steady burn.
#[must_use]
pub fn slo_burn(snaps: &[HistorySnapshot], error_budget: f64) -> Option<SloBurn> {
    let (first, last) = match snaps {
        [] | [_] => return None,
        [first, .., last] => (first, last),
    };
    let delta = |name: &str| {
        let p = HistorySnapshot::value(&first.counters, name).unwrap_or(0);
        let c = HistorySnapshot::value(&last.counters, name).unwrap_or(0);
        reset_aware_delta(p, c)
    };
    let good = delta(SLO_GOOD);
    let bad = delta(SLO_BAD);
    let total = good + bad;
    if total == 0 || error_budget <= 0.0 {
        return None;
    }
    Some(SloBurn {
        window_ms: last.ts_ms.saturating_sub(first.ts_ms),
        good,
        bad,
        burn: (bad as f64 / total as f64) / error_budget,
    })
}

#[cfg(unix)]
mod sigusr1 {
    use super::Registry;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// `SIGUSR1` on Linux and most Unices.
    const SIGUSR1: i32 = 10;

    static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

    /// A registered signal callback.
    type Callback = Box<dyn Fn() + Send>;

    /// Everything to run when the signal arrives. The watcher thread
    /// invokes them off the signal path, so callbacks may allocate and
    /// do I/O freely.
    static CALLBACKS: OnceLock<Mutex<Vec<Callback>>> = OnceLock::new();

    extern "C" fn on_sigusr1(_sig: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        DUMP_REQUESTED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Registers `callback` to run (on a watcher thread, not in signal
    /// context) every time the process receives `SIGUSR1`. The first
    /// call installs the handler and spawns the watcher; both live for
    /// the process lifetime. Callbacks run in registration order.
    pub fn install_sigusr1(callback: impl Fn() + Send + 'static) {
        static INSTALL: std::sync::Once = std::sync::Once::new();
        CALLBACKS
            .get_or_init(|| Mutex::new(Vec::new()))
            .lock()
            .expect("sigusr1 callbacks poisoned")
            .push(Box::new(callback));
        INSTALL.call_once(|| {
            unsafe {
                signal(SIGUSR1, on_sigusr1);
            }
            std::thread::spawn(|| loop {
                std::thread::sleep(std::time::Duration::from_millis(200));
                if DUMP_REQUESTED.swap(false, Ordering::Relaxed) {
                    let callbacks = CALLBACKS
                        .get()
                        .expect("watcher runs after init")
                        .lock()
                        .expect("sigusr1 callbacks poisoned");
                    for cb in callbacks.iter() {
                        cb();
                    }
                }
            });
        });
    }

    /// Installs a `SIGUSR1` callback that writes `registry.dump_json()`
    /// to `path` each time the signal arrives (see [`install_sigusr1`]).
    pub fn install_sigusr1_dump(registry: Registry, path: PathBuf) {
        install_sigusr1(move || {
            if let Err(e) = registry.dump_to_file(&path) {
                eprintln!("gencon-metrics: dump to {} failed: {e}", path.display());
            }
        });
    }
}

#[cfg(unix)]
pub use sigusr1::{install_sigusr1, install_sigusr1_dump};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::new();
        let a = r.counter("stage.events");
        let b = r.counter("stage.events");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name shares the counter");
        assert_eq!(r.counter_value("stage.events"), Some(3));
        assert_eq!(r.counter_value("missing"), None);
        let g = r.gauge("stage.depth");
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7, "raise never lowers");
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_matches_reference_bucketing() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 50, "exact below LINEAR_MAX");
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Above LINEAR_MAX the relative error is bounded by 1/32.
        let big = Histogram::default();
        big.record(1_000_000);
        let p = big.quantile(0.5);
        assert!(p >= 1_000_000 && p as f64 <= 1_000_000.0 * (1.0 + 1.0 / 32.0));
    }

    #[test]
    fn bucket_count_covers_u64() {
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
        assert_eq!(index_of(0), 0);
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX, "clamped to the true max");
    }

    #[test]
    fn dump_is_stable_flat_json() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.gauge("c.depth").set(4);
        r.histogram("d.lat_us").record(100);
        let json = r.dump_json();
        let a = json.find("\"a.first\":1").expect("a.first");
        let b = json.find("\"b.second\":2").expect("b.second");
        let c = json.find("\"c.depth\":4").expect("c.depth");
        let d = json.find("\"d.lat_us\":{").expect("d.lat_us");
        assert!(a < b && b < c && c < d, "keys sorted: {json}");
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn dump_to_file_round_trips() {
        let r = Registry::new();
        r.counter("x").inc();
        let path = std::env::temp_dir().join(format!(
            "gencon-metrics-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        r.dump_to_file(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.dump_json());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn history_ring_wraps_dropping_the_oldest() {
        let r = Registry::new();
        let c = r.counter("apply.applied");
        let ring = HistoryRing::new(3);
        assert!(ring.is_empty());
        for i in 1..=5u64 {
            c.inc();
            ring.sample_at(&r, 1_000 * i);
        }
        assert_eq!(ring.len(), 3, "capacity bounds the ring");
        let snaps = ring.tail(10);
        assert_eq!(snaps.len(), 3);
        // The two oldest samples (ts 1000, 2000) were dropped.
        assert_eq!(snaps[0].ts_ms, 3_000);
        assert_eq!(snaps[2].ts_ms, 5_000);
        assert_eq!(
            HistorySnapshot::value(&snaps[2].counters, "apply.applied"),
            Some(5)
        );
        // tail(n) returns only the newest n, oldest first.
        let last_two = ring.tail(2);
        assert_eq!(last_two[0].ts_ms, 4_000);
        assert_eq!(last_two[1].ts_ms, 5_000);
        let json = snaps[2].to_json();
        assert!(json.contains("\"ts_ms\":5000"), "{json}");
        assert!(json.contains("\"apply.applied\":5"), "{json}");
    }

    #[test]
    fn rates_derive_from_interval_deltas_not_totals() {
        let r = Registry::new();
        let rounds = r.counter("order.rounds");
        let fsyncs = r.counter("persist.fsyncs");
        let applied = r.gauge("order.applied");
        let ring = HistoryRing::new(8);
        assert!(ring.rates().is_none(), "one sample has no rate");
        rounds.add(1_000);
        fsyncs.add(100);
        applied.set(10_000);
        ring.sample_at(&r, 1_000);
        assert!(ring.rates().is_none(), "still only one sample");
        // Half a second later: +50 rounds, +5 fsyncs, +200 applied.
        rounds.add(50);
        fsyncs.add(5);
        applied.set(10_200);
        ring.sample_at(&r, 1_500);
        let rates = ring.rates().expect("two samples");
        assert_eq!(rates.interval_ms, 500);
        assert!((rates.rounds_per_sec - 100.0).abs() < 1e-9, "{rates:?}");
        assert!((rates.fsyncs_per_sec - 10.0).abs() < 1e-9, "{rates:?}");
        assert!(
            (rates.cmds_per_sec - 400.0).abs() < 1e-9,
            "interval delta, not the cumulative total: {rates:?}"
        );
        let json = rates.to_json();
        assert!(json.contains("\"interval_ms\":500"), "{json}");
        assert!(json.contains("\"cmds_per_sec\":400.000"), "{json}");
        assert!(json.contains("\"order.rounds\":100.000"), "{json}");
    }

    #[test]
    fn rates_survive_counter_resets() {
        // A restarted source's counter goes backwards; the delta counts
        // from zero instead of underflowing into an absurd rate.
        let r1 = Registry::new();
        r1.counter("order.rounds").add(5_000);
        let ring = HistoryRing::new(4);
        ring.sample_at(&r1, 1_000);
        let r2 = Registry::new();
        r2.counter("order.rounds").add(30);
        ring.sample_at(&r2, 2_000);
        let rates = ring.rates().expect("two samples");
        assert!(
            (rates.rounds_per_sec - 30.0).abs() < 1e-9,
            "reset counts from zero: {rates:?}"
        );
        // Coincident timestamps produce no rate rather than dividing by 0.
        ring.sample_at(&r2, 2_000);
        assert!(ring.rates().is_none());
    }

    #[test]
    fn sampler_thread_fills_the_ring() {
        let r = Registry::new();
        r.counter("order.rounds").inc();
        let ring = HistoryRing::new(16);
        ring.spawn_sampler(r.clone(), std::time::Duration::from_millis(5));
        for _ in 0..200 {
            if ring.len() >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(ring.len() >= 2, "sampler produced snapshots");
    }

    #[test]
    fn slo_tracker_classifies_and_burns() {
        let r = Registry::new();
        let slo = SloTracker::new(&r, 1_000);
        assert_eq!(slo.budget_us(), 1_000);
        let ring = HistoryRing::new(8);
        ring.sample_at(&r, 1_000);
        // 99 good, 1 bad → exactly the 1% p99 error budget: burn 1.0.
        for _ in 0..99 {
            slo.observe(500);
        }
        slo.observe(1_001);
        assert_eq!((slo.good(), slo.bad()), (99, 1));
        assert_eq!(r.counter_value(SLO_GOOD), Some(99), "plain counters");
        ring.sample_at(&r, 2_000);
        let burn = slo_burn(&ring.tail(8), SLO_ERROR_BUDGET_P99).expect("events in window");
        assert_eq!(burn.window_ms, 1_000);
        assert_eq!((burn.good, burn.bad), (99, 1));
        assert!((burn.burn - 1.0).abs() < 1e-9, "{burn:?}");
        // A hotter short window: the newest delta is all bad.
        for _ in 0..10 {
            slo.observe(5_000);
        }
        ring.sample_at(&r, 2_500);
        let short = slo_burn(&ring.tail(2), SLO_ERROR_BUDGET_P99).expect("short window");
        assert!(
            (short.burn - 100.0).abs() < 1e-9,
            "all-bad window: {short:?}"
        );
        let long = slo_burn(&ring.tail(8), SLO_ERROR_BUDGET_P99).expect("long window");
        assert!(short.burn > long.burn, "multi-window separates the two");
        let json = short.to_json();
        assert!(json.contains("\"burn\":100.000"), "{json}");
    }

    #[test]
    fn slo_burn_idle_and_degenerate_windows() {
        let r = Registry::new();
        let _slo = SloTracker::new(&r, 100);
        let ring = HistoryRing::new(4);
        ring.sample_at(&r, 1_000);
        assert!(slo_burn(&ring.tail(4), 0.01).is_none(), "one snapshot");
        ring.sample_at(&r, 2_000);
        assert!(slo_burn(&ring.tail(4), 0.01).is_none(), "idle window");
        assert!(slo_burn(&[], 0.01).is_none());
        let tracked = SloTracker::new(&r, 100);
        tracked.observe(1);
        ring.sample_at(&r, 3_000);
        assert!(slo_burn(&ring.tail(4), 0.0).is_none(), "zero budget");
        let burn = slo_burn(&ring.tail(4), 0.01).expect("events now");
        assert_eq!(burn.bad, 0);
        assert!((burn.burn - 0.0).abs() < 1e-9);
    }

    #[test]
    fn handles_record_across_threads() {
        let r = Registry::new();
        let c = r.counter("threads.events");
        let h = r.histogram("threads.lat");
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for v in 0..250u64 {
                    c.inc();
                    h.record(v);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 1000);
        assert_eq!(h.count(), 1000);
    }
}
