//! Runtime knobs of the SMR node event loop.

use std::time::Duration;

/// Configuration of [`run_smr_node`](crate::run_smr_node).
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// First round's collect deadline (the adaptive band's starting point).
    pub initial_round_timeout: Duration,
    /// Floor of the adaptive deadline: the pace a fully timely mesh runs at.
    pub min_round_timeout: Duration,
    /// Ceiling of the adaptive deadline: the longest a round waits during
    /// a bad period before moving on.
    pub max_round_timeout: Duration,
    /// Hard stop, in rounds (`u64::MAX` for a long-running service).
    pub max_rounds: u64,
    /// Optional stop once this many commands applied locally (harness
    /// runs); `None` for a long-running service.
    pub stop_after_commands: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            initial_round_timeout: Duration::from_millis(50),
            min_round_timeout: Duration::from_millis(2),
            max_round_timeout: Duration::from_secs(1),
            max_rounds: u64::MAX,
            stop_after_commands: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_long_running_service() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.max_rounds, u64::MAX);
        assert!(cfg.stop_after_commands.is_none());
        assert!(cfg.min_round_timeout <= cfg.initial_round_timeout);
        assert!(cfg.initial_round_timeout <= cfg.max_round_timeout);
    }
}
