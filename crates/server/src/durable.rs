//! The durability layer of a server node: a [`NodeHook`] that pairs the
//! replica with a [`gencon_store::Log`] and a folding [`App`].
//!
//! [`DurableNode`] wraps any inner hook (typically the
//! [`ClientGateway`](crate::ClientGateway)) and, around every round:
//!
//! 1. **persists** newly committed batches to the write-ahead log (one
//!    record per slot, the `gencon-net` wire encoding as payload). The
//!    WAL writes happen on a dedicated **persist stage** thread behind a
//!    bounded channel: the round loop only encodes and enqueues, so
//!    fsync latency overlaps consensus instead of gating it. A full
//!    queue blocks the enqueue (counted as a stall) — committed records
//!    are backpressured, never dropped;
//! 2. **group-commits**: the persist stage's `maybe_sync` fsyncs at most
//!    once per configured interval, so a burst of slots shares one
//!    fsync;
//! 3. advances the **ack watermark** — the absolute applied-command count
//!    covered by durable storage, published by the persist stage after
//!    each fsync. Under durable-ack semantics the gateway acknowledges
//!    clients only below this watermark, so an ack implies the command
//!    survives `kill -9`; under fast-ack the watermark follows apply
//!    directly (memory semantics with a warm log on disk);
//! 4. runs the **snapshot policy**: every `snapshot_every` committed
//!    slots, absorb the newly applied suffix into the [`Folder`] and
//!    install its [`FoldedState`] — the application's **folded state**
//!    (O(live state), not O(history)) plus the replica resume data — as
//!    the on-disk snapshot (atomic install), compact WAL segments below
//!    it, and [`BatchingReplica::compact_below`] the in-memory prefix,
//!    keeping a short `snapshot_tail` of slots for the decision-claim
//!    path. Snapshot cost no longer grows with the log's age; the only
//!    app that pays O(history) is `LogApp`, whose state *is* the history
//!    by definition.
//!
//! It also plugs the node loop's **chunked state transfer**:
//! `serve_manifest` answers laggards — **preferring the on-disk snapshot
//! whenever one covers the request** and synthesizing a fold from the
//! retained log only when none exists (the synthesis path that used to
//! live in the event loop) — and `serve_chunk` slices the described
//! state; `snapshot_installed` persists a `b + 1`-vouched transferred
//! snapshot so the *next* restart recovers past it too.
//!
//! [`recover_replica`] is the startup half: decode the on-disk
//! [`FoldedState`], restore the app fold and fast-forward the replica,
//! then replay the WAL tail through both. The recovered app seeds the
//! live [`Applier`](gencon_app::Applier) (clone it), so replies and state
//! hashes continue seamlessly across restarts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use parking_lot::Mutex;

use gencon_app::{App, Folder};
use gencon_metrics::{Counter, Gauge, Histogram, Registry};
use gencon_net::wire::Wire;
use gencon_net::wire_sync::{FoldedState, SnapshotManifest};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{Log, Recovery, Snapshot};
use gencon_trace::{EventKind, FlightRecorder, HashCell, Stage, Tracer};

use crate::node::{NodeHook, SNAPSHOT_GAP_MIN};

/// Durability policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// Take a snapshot (and compact below it) every this many committed
    /// slots; 0 disables snapshots.
    pub snapshot_every: u64,
    /// Committed slots kept in memory behind the snapshot cut so recent
    /// laggards can still catch up via decision claims.
    pub snapshot_tail: u64,
    /// Durable-ack (`true`): clients are acked only once their command's
    /// slot is fsynced or snapshotted. Fast-ack (`false`): acks follow
    /// apply, persistence trails behind.
    pub durable_ack: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            snapshot_every: 512,
            snapshot_tail: 64,
            durable_ack: true,
        }
    }
}

/// What [`recover_replica`] reconstructed.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveredState {
    /// Slots recovered from the snapshot.
    pub snapshot_slots: u64,
    /// Slots replayed from WAL records.
    pub replayed_slots: u64,
    /// Applied commands after recovery.
    pub applied: usize,
}

/// Rebuilds `replica` and `folder` from what the store recovered: the
/// snapshot's [`FoldedState`] restores the app fold and fast-forwards the
/// replica (applied history below the cut is *not* re-materialized — the
/// fold is the state), then every decodable WAL record replays through
/// the replica and is absorbed into the folder. Returns what was
/// recovered; undecodable payloads end the replay (the WAL's CRC framing
/// makes them effectively unreachable).
pub fn recover_replica<A: App>(
    replica: &mut BatchingReplica<A::Cmd>,
    folder: &mut Folder<A>,
    recovery: &Recovery,
) -> RecoveredState {
    let mut out = RecoveredState::default();
    if let Some(snap) = &recovery.snapshot {
        let mut buf = bytes::Bytes::from(snap.state.clone());
        if let Ok(fs) = FoldedState::<A::Cmd>::decode(&mut buf) {
            if folder.restore(&fs, snap.meta.upto_slot).is_ok()
                && replica.install_folded(&fs.dedup, fs.applied_len, snap.meta.upto_slot, 0)
            {
                out.snapshot_slots = snap.meta.upto_slot;
            }
        }
    }
    for (_slot, payload) in &recovery.records {
        let mut buf = bytes::Bytes::from(payload.clone());
        let Ok(batch) = Batch::<A::Cmd>::decode(&mut buf) else {
            break;
        };
        replica.replay_committed(batch);
        out.replayed_slots += 1;
    }
    // Fold the replayed tail so the folder's app covers the whole
    // recovered prefix (the live applier is cloned from it).
    folder.absorb(
        replica.applied(),
        replica.applied_slots(),
        replica.applied_base() as u64,
        replica.committed_slots() as u64,
    );
    out.applied = replica.applied_len();
    out
}

/// Appended-but-unshipped records queued to the persist stage. A full
/// queue blocks the order thread (stall) — records are never dropped.
const PERSIST_QUEUE_CAP: usize = 1024;

/// How often the persist stage wakes to run the group-commit interval
/// while no new records arrive.
const PERSIST_POLL: Duration = Duration::from_millis(1);

/// Work shipped from the order thread to the persist stage, applied in
/// FIFO order so the WAL mirrors the order thread's operation sequence.
enum PersistMsg {
    /// Append one committed slot's encoded batch. `acked_through` is the
    /// absolute applied-command count covered once this slot is durable
    /// — the watermark the gate jumps to after the record's fsync.
    Append {
        slot: u64,
        payload: Vec<u8>,
        acked_through: u64,
    },
    /// Install a snapshot (periodic cut or a transferred one); `acked`
    /// is the applied-command count the cut covers.
    Install { snap: Snapshot, acked: u64 },
    /// Fsync everything staged and rendezvous with the sender.
    Flush(channel::Sender<()>),
}

/// The running persist stage: its inbox and join handle.
struct PersistStage {
    tx: channel::Sender<PersistMsg>,
    handle: std::thread::JoinHandle<()>,
}

/// Instrument handles for the persist stage.
#[derive(Clone)]
struct PersistMeters {
    appended: Counter,
    fsyncs: Counter,
    fsync_us: Histogram,
    stalls: Counter,
    /// Depth sampled on every enqueue and dequeue (histogram, so its
    /// p99 is meaningful), plus a last-value gauge for live status.
    queue_depth: Histogram,
    queue_depth_now: Gauge,
    gate: Gauge,
}

impl PersistMeters {
    fn new(reg: &Registry) -> Self {
        PersistMeters {
            appended: reg.counter("persist.appended"),
            fsyncs: reg.counter("persist.fsyncs"),
            fsync_us: reg.histogram("persist.fsync_us"),
            stalls: reg.counter("persist.stalls"),
            queue_depth: reg.histogram("persist.queue_depth"),
            queue_depth_now: reg.gauge("persist.queue_depth_now"),
            gate: reg.gauge("persist.gate"),
        }
    }
}

/// The persist stage body: applies shipped operations to the WAL in
/// order, group-commits, and publishes the durable watermark after each
/// fsync. Exits when the `DurableNode` (the only sender) is dropped,
/// fsyncing whatever is still staged.
fn persist_loop<L: Log>(
    wal: &Mutex<L>,
    rx: &channel::Receiver<PersistMsg>,
    gate: &AtomicU64,
    durable_ack: bool,
    m: &PersistMeters,
    t: &Tracer,
) {
    // Appended records not yet known durable: (slot, acked_through).
    let mut pending: VecDeque<(u64, u64)> = VecDeque::new();
    // Duration of the group commit (append + fsync) that most recently
    // made records durable — the `persisted` event's detail for every
    // slot it covered.
    let mut last_sync_us: u64 = 0;
    // Publishes the watermark for every record at or below the store's
    // durable slot, and traces each slot's durability edge.
    let release = |wal: &mut L, pending: &mut VecDeque<(u64, u64)>, svc_us: u64| {
        let Some(d) = wal.durable_slot() else { return };
        let mut acked = None;
        while pending.front().is_some_and(|&(s, _)| s <= d) {
            let (slot, a) = pending.pop_front().expect("front exists");
            t.rec(Stage::Persist, EventKind::Persisted, slot, svc_us);
            acked = Some(a);
        }
        if durable_ack {
            if let Some(a) = acked {
                gate.fetch_max(a, Ordering::SeqCst);
                m.gate.raise(a);
            }
        }
    };
    // Runs a sync-ish closure; meters it and returns its duration if a
    // real fsync happened (0 otherwise).
    let metered_sync = |wal: &mut L, f: &dyn Fn(&mut L) -> std::io::Result<()>| -> u64 {
        let before = wal.syncs();
        let t = Instant::now();
        if let Err(e) = f(wal) {
            eprintln!("[durable] WAL sync failed: {e}");
        }
        if wal.syncs() > before {
            let us = t.elapsed().as_micros() as u64;
            m.fsyncs.add(wal.syncs() - before);
            m.fsync_us.record(us);
            us
        } else {
            0
        }
    };
    loop {
        let msg = rx.recv_timeout(PERSIST_POLL);
        let mut wal = wal.lock();
        match msg {
            Ok(PersistMsg::Append {
                slot,
                payload,
                acked_through,
            }) => {
                m.queue_depth.record(rx.len() as u64);
                m.queue_depth_now.set(rx.len() as u64);
                match wal.append(slot, &payload) {
                    Ok(()) => {
                        m.appended.inc();
                        pending.push_back((slot, acked_through));
                    }
                    // A failed append wedges the contiguous tail; the
                    // next snapshot install heals it (same policy the
                    // inline path had).
                    Err(e) => eprintln!("[durable] WAL append of slot {slot} failed: {e}"),
                }
                let us = metered_sync(&mut wal, &|w| w.maybe_sync().map(|_| ()));
                if us > 0 {
                    last_sync_us = us;
                }
            }
            Ok(PersistMsg::Install { snap, acked }) => {
                match wal.install_snapshot(&snap) {
                    Ok(()) => {
                        // Records below the cut are covered by the
                        // snapshot itself.
                        pending.retain(|&(s, _)| s >= snap.meta.upto_slot);
                        if durable_ack {
                            gate.fetch_max(acked, Ordering::SeqCst);
                            m.gate.raise(acked);
                        }
                    }
                    Err(e) => eprintln!(
                        "[durable] snapshot install at slot {} failed: {e}",
                        snap.meta.upto_slot
                    ),
                }
            }
            Ok(PersistMsg::Flush(reply)) => {
                let us = metered_sync(&mut wal, &|w: &mut L| w.sync());
                if us > 0 {
                    last_sync_us = us;
                }
                release(&mut wal, &mut pending, last_sync_us);
                drop(wal);
                let _ = reply.send(());
                continue;
            }
            Err(RecvTimeoutError::Timeout) => {
                // Idle tick: drive the group-commit interval so the
                // watermark advances even when commits pause.
                let us = metered_sync(&mut wal, &|w| w.maybe_sync().map(|_| ()));
                if us > 0 {
                    last_sync_us = us;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let us = metered_sync(&mut wal, &|w: &mut L| w.sync());
                if us > 0 {
                    last_sync_us = us;
                }
                release(&mut wal, &mut pending, last_sync_us);
                return;
            }
        }
        release(&mut wal, &mut pending, last_sync_us);
    }
}

/// The persistence wrapper hook (see the module docs).
pub struct DurableNode<A: App, L, H> {
    /// The store, shared with the persist stage. The order thread takes
    /// the lock only on serve/read paths; steady-state persistence
    /// touches it solely from the persist thread.
    wal: Arc<Mutex<L>>,
    persist: Option<PersistStage>,
    inner: H,
    cfg: DurableConfig,
    /// The snapshot-folding app instance: lags at boundary cuts so every
    /// replica folds byte-identical states for `b + 1` vouching.
    folder: Folder<A>,
    /// The last snapshot state served (manifest + encoded state), so
    /// chunk requests do not re-read the store per chunk.
    serve_cache: Option<(SnapshotManifest, Vec<u8>)>,
    /// Absolute applied-command count covered by durable storage — the
    /// gateway's ack limit under durable-ack.
    ack_gate: Arc<AtomicU64>,
    /// The next slot the order thread will ship to the persist stage
    /// (its own view of the WAL tail, which it must not read live).
    next_ship: u64,
    /// Highest snapshot cut shipped (periodic or transferred) — the
    /// policy's re-fire guard, tracked here because the on-disk meta
    /// lags shipped installs.
    last_cut: u64,
    wal_trailing: bool,
    meters: PersistMeters,
    tracer: Tracer,
    /// Where snapshot-boundary `(applied, state_hash)` pairs are
    /// published for the admin `hash` command, if auditing is wired.
    hash_cell: Option<HashCell>,
    snapshots_taken: u64,
    served_from_disk: u64,
    served_synthesized: u64,
}

impl<A: App, L: Log, H> DurableNode<A, L, H> {
    /// Wraps `inner` with persistence into `wal`. The WAL is expected to
    /// already be positioned at the replica's recovery point and `folder`
    /// to hold the recovered fold (see [`recover_replica`]); use
    /// `Folder::default()` for a fresh node.
    pub fn new(wal: L, cfg: DurableConfig, folder: Folder<A>, inner: H) -> Self {
        let next_ship = wal.next_slot();
        let last_cut = wal.snapshot_meta().map_or(0, |m| m.upto_slot);
        DurableNode {
            wal: Arc::new(Mutex::new(wal)),
            persist: None,
            inner,
            cfg,
            folder,
            serve_cache: None,
            ack_gate: Arc::new(AtomicU64::new(0)),
            next_ship,
            last_cut,
            wal_trailing: false,
            meters: PersistMeters::new(&Registry::new()),
            tracer: Tracer::disabled(),
            hash_cell: None,
            snapshots_taken: 0,
            served_from_disk: 0,
            served_synthesized: 0,
        }
    }

    /// Registers this node's `persist.*` instruments in `reg`. Call
    /// before the run starts (the persist stage captures its handles
    /// when it spawns).
    #[must_use]
    pub fn with_metrics(mut self, reg: &Registry) -> Self {
        self.meters = PersistMeters::new(reg);
        self
    }

    /// Records the persistence slot lifecycle (`persist_queued` at ship,
    /// `persisted` once the covering fsync lands) into `recorder` — pass
    /// the same recorder as the node and gateway so per-slot spans
    /// assemble across all stages. Call before the run starts, like
    /// [`with_metrics`](DurableNode::with_metrics).
    #[must_use]
    pub fn with_trace(mut self, recorder: FlightRecorder) -> Self {
        self.tracer = Tracer::new(Some(recorder));
        self
    }

    /// The ack watermark handle — give it to the
    /// [`ClientGateway`](crate::ClientGateway) via
    /// [`with_ack_gate`](crate::ClientGateway::with_ack_gate) so acks
    /// respect durability.
    #[must_use]
    pub fn ack_gate(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ack_gate)
    }

    /// Shares an externally created watermark instead of the internal one
    /// (when the gateway had to be constructed before this node).
    #[must_use]
    pub fn with_gate(mut self, gate: Arc<AtomicU64>) -> Self {
        self.ack_gate = gate;
        self
    }

    /// Publishes `(applied count, state hash)` into `cell` at every
    /// snapshot-boundary fold. Boundary folds are byte-identical across
    /// replicas at the same cut, so any two honest nodes publishing for
    /// the same applied count must agree — `gencon-mon` compares these
    /// pairs across the cluster to detect divergence.
    #[must_use]
    pub fn with_hash_cell(mut self, cell: HashCell) -> Self {
        self.hash_cell = Some(cell);
        self
    }

    /// Snapshots taken by the periodic policy during this run.
    #[must_use]
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Manifests served straight from the on-disk snapshot.
    #[must_use]
    pub fn served_from_disk(&self) -> u64 {
        self.served_from_disk
    }

    /// Manifests served by synthesizing a fold from the retained log
    /// (only happens when no on-disk snapshot covers the request).
    #[must_use]
    pub fn served_synthesized(&self) -> u64 {
        self.served_synthesized
    }

    /// The snapshot-folding app state (e.g. for stats after the run).
    #[must_use]
    pub fn folder(&self) -> &Folder<A> {
        &self.folder
    }

    /// Locks and returns the wrapped store (e.g. for stats after the
    /// run). While the guard is held the persist stage cannot make
    /// progress — don't hold it across waits, and never take a second
    /// guard in the same statement (the lock is not reentrant).
    pub fn store(&self) -> parking_lot::MutexGuard<'_, L> {
        self.wal.lock()
    }

    /// The wrapped inner hook.
    #[must_use]
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Blocks until the persist stage has applied and fsynced everything
    /// shipped so far (and published the watermark). A no-op before the
    /// stage ever ran.
    pub fn flush(&mut self) {
        if let Some(stage) = self.persist.as_ref() {
            let (tx, rx) = channel::unbounded();
            if stage.tx.send(PersistMsg::Flush(tx)).is_ok() {
                let _ = rx.recv();
            }
        }
    }
}

impl<A: App, L: Log + Send + 'static, H> DurableNode<A, L, H> {
    /// Spawns the persist stage on first use (so [`with_metrics`] and
    /// [`with_gate`] builders apply before any handle is captured).
    ///
    /// [`with_metrics`]: DurableNode::with_metrics
    /// [`with_gate`]: DurableNode::with_gate
    fn ensure_stage(&mut self) {
        if self.persist.is_some() {
            return;
        }
        let (tx, rx) = channel::bounded(PERSIST_QUEUE_CAP);
        let wal = Arc::clone(&self.wal);
        let gate = Arc::clone(&self.ack_gate);
        let durable_ack = self.cfg.durable_ack;
        let m = self.meters.clone();
        let t = self.tracer.clone();
        let handle =
            std::thread::spawn(move || persist_loop(&wal, &rx, &gate, durable_ack, &m, &t));
        self.persist = Some(PersistStage { tx, handle });
    }

    /// Ships one operation to the persist stage. A full queue blocks
    /// (counted as a stall) — backpressure, not loss.
    fn ship(&mut self, msg: PersistMsg) {
        self.ensure_stage();
        let Some(stage) = self.persist.as_ref() else {
            return;
        };
        match stage.tx.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                self.meters.stalls.inc();
                let _ = stage.tx.send(msg);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Encodes and ships every newly committed batch to the persist
    /// stage. Runs on the order thread; does not touch the WAL lock.
    fn persist_committed(&mut self, replica: &BatchingReplica<A::Cmd>) {
        let base = replica.committed_base_slot();
        let committed = replica.committed_slots() as u64;
        if self.next_ship < base {
            // The WAL fell behind the compaction point (a failed append or
            // snapshot persist) — the missing records no longer exist in
            // memory. Don't append a gapped log; the next successful
            // periodic snapshot install resets the WAL at its cut and
            // persistence resumes from there.
            if !self.wal_trailing {
                self.wal_trailing = true;
                eprintln!(
                    "[durable] WAL at slot {} trails the compaction point {base}; \
                     waiting for the next snapshot to heal it",
                    self.next_ship
                );
            }
            return;
        }
        while self.next_ship < committed {
            let slot = self.next_ship;
            let batch = &replica.committed_batches()[(slot - base) as usize];
            // The absolute applied-command count this slot's durability
            // covers, fixed at ship time (slots at or below `slot` are
            // already applied when it commits).
            let acked_through = (replica.applied_base()
                + replica.applied_slots().partition_point(|&s| s <= slot))
                as u64;
            self.ship(PersistMsg::Append {
                slot,
                payload: batch.to_bytes().to_vec(),
                acked_through,
            });
            self.next_ship += 1;
            let depth = self.persist.as_ref().map_or(0, |s| s.tx.len() as u64);
            self.meters.queue_depth.record(depth);
            self.tracer
                .rec(Stage::Persist, EventKind::PersistQueued, slot, depth);
        }
        if let Some(stage) = self.persist.as_ref() {
            self.meters.queue_depth_now.set(stage.tx.len() as u64);
        }
    }

    /// Folds the applied suffix up to `cut` and returns the encoded
    /// snapshot state (the wire `FoldedState`).
    fn fold_state_at(&mut self, replica: &BatchingReplica<A::Cmd>, cut: u64) -> Vec<u8> {
        self.folder.absorb(
            replica.applied(),
            replica.applied_slots(),
            replica.applied_base() as u64,
            cut,
        );
        self.folder
            .fold(replica.dedup_horizon())
            .to_bytes()
            .to_vec()
    }

    /// The periodic snapshot + compaction policy.
    fn maybe_snapshot(&mut self, replica: &mut BatchingReplica<A::Cmd>) {
        if self.cfg.snapshot_every == 0 {
            return;
        }
        let committed = replica.committed_slots() as u64;
        // Cut at an exact `snapshot_every` boundary, never at the raw
        // commit point: every replica then produces byte-identical
        // snapshots for the same boundary (the committed sequence and the
        // fold are both shared), which is what lets `b + 1` responders
        // vouch for one manifest during transfer. The cut must not rewind
        // the folder (possible right after recovery, whose fold covers
        // the whole recovered prefix). The re-fire guard is `last_cut`,
        // not the on-disk meta — the disk lags shipped installs.
        let cut = (committed / self.cfg.snapshot_every) * self.cfg.snapshot_every;
        if cut <= self.last_cut || cut == 0 || cut < self.folder.covered_slot() {
            return;
        }
        // The fold happens here on the order thread (byte-identical
        // vouching requires the deterministic cut); only the disk I/O of
        // installing it moves to the persist stage.
        let state = self.fold_state_at(replica, cut);
        if let Some(cell) = &self.hash_cell {
            cell.publish(self.folder.applied_len(), self.folder.state_hash());
        }
        let snap = Snapshot::new(cut, self.folder.applied_len(), state);
        let acked = self.folder.applied_len();
        self.last_cut = cut;
        // An install at or past the shipped tail resets the WAL there
        // (the healing path); appends resume from the cut.
        self.next_ship = self.next_ship.max(cut);
        self.wal_trailing = false;
        self.ship(PersistMsg::Install { snap, acked });
        self.snapshots_taken += 1;
        // The serve cache is deliberately NOT invalidated here: a laggard
        // mid-transfer keeps pulling chunks of the manifest this node
        // already described to it, even though the periodic policy has
        // moved the on-disk snapshot past that cut (at quiescence the cut
        // advances with every no-op window — without the cache, in-flight
        // transfers would be stranded on stale manifests forever). The
        // cache is replaced the next time a manifest is served.
        // Compaction no longer waits for the ack watermark: the gateway
        // parks unacked `(cmd, slot, offset, reply)` tuples in its own
        // bounded queue at apply time, so the retained applied suffix is
        // not the ack source any more — pinning compaction at a stalled
        // fsync gate would just re-open the unbounded-memory hole the
        // parked-ack bound closed.
        replica.compact_below(cut.saturating_sub(self.cfg.snapshot_tail));
    }

    /// Loads a retained on-disk snapshot cut into the serve cache: the
    /// newest cut when `want` is `None`, else exactly the cut `want` —
    /// retention ([`WalConfig::snapshot_keep`](gencon_store::WalConfig))
    /// keeps the last few cuts fetchable, so a laggard that started its
    /// transfer against a slightly older manifest keeps pulling chunks
    /// after this node takes a newer cut.
    fn cache_disk_snapshot(&mut self, want: Option<u64>) -> Option<&(SnapshotManifest, Vec<u8>)> {
        let meta = {
            let store = self.wal.lock();
            match want {
                None => store.snapshot_meta()?,
                Some(w) => store
                    .snapshot_metas()
                    .into_iter()
                    .find(|m| m.upto_slot == w)?,
            }
        };
        let cached = self
            .serve_cache
            .as_ref()
            .is_some_and(|(m, _)| m.upto_slot == meta.upto_slot);
        if !cached {
            let snap = self
                .wal
                .lock()
                .read_snapshot_at(meta.upto_slot)
                .ok()
                .flatten()?;
            let manifest =
                SnapshotManifest::describe(snap.meta.upto_slot, snap.meta.applied_len, &snap.state);
            self.serve_cache = Some((manifest, snap.state));
        }
        self.serve_cache.as_ref()
    }
}

impl<A: App, L, H> Drop for DurableNode<A, L, H> {
    fn drop(&mut self) {
        // Dropping the only sender stops the persist stage; it fsyncs
        // whatever is still staged on the way out.
        if let Some(stage) = self.persist.take() {
            drop(stage.tx);
            let _ = stage.handle.join();
        }
    }
}

impl<A, L, H> NodeHook<A::Cmd> for DurableNode<A, L, H>
where
    A: App,
    L: Log + Send + 'static,
    H: NodeHook<A::Cmd>,
{
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<A::Cmd>) {
        self.inner.before_round(round, replica);
    }

    fn after_round(&mut self, round: u64, replica: &mut BatchingReplica<A::Cmd>) {
        // Ship the newly committed records; fsync and the durable-ack
        // watermark happen on the persist stage, off this thread.
        self.persist_committed(replica);
        if !self.cfg.durable_ack {
            // Fast-ack: the watermark follows apply directly.
            self.ack_gate
                .store(replica.applied_len() as u64, Ordering::SeqCst);
        }
        // The inner hook (gateway, harness) acks under the current gate
        // and sees the applied log before compaction prunes it.
        self.inner.after_round(round, replica);
        self.maybe_snapshot(replica);
    }

    fn finish(&mut self, replica: &mut BatchingReplica<A::Cmd>) {
        // Drain order: persist first (every shipped record reaches disk
        // and the watermark), then the inner stages — so the gateway's
        // final ack pass runs under the final gate and no durable ack is
        // stranded behind an unflushed fsync.
        self.flush();
        self.inner.finish(replica);
    }

    fn should_stop(&mut self, replica: &BatchingReplica<A::Cmd>) -> bool {
        self.inner.should_stop(replica)
    }

    fn serve_manifest(
        &mut self,
        replica: &BatchingReplica<A::Cmd>,
        have_slot: u64,
    ) -> Option<SnapshotManifest> {
        // Prefer the on-disk snapshot whenever it covers the request —
        // it is already folded and encoded; re-synthesizing from the log
        // would redo O(state) work per request.
        if self
            .wal
            .lock()
            .snapshot_meta()
            .is_some_and(|m| m.upto_slot > have_slot)
        {
            let manifest = self.cache_disk_snapshot(None).map(|(m, _)| *m)?;
            self.served_from_disk += 1;
            return Some(manifest);
        }
        // No snapshot covers it: synthesize a fold at a boundary-aligned
        // cut from the retained log (possible while the suffix above the
        // folder's coverage is still retained — true by construction,
        // since compaction only happens below installed snapshots).
        let committed = replica.committed_slots() as u64;
        let cut = (committed / SNAPSHOT_GAP_MIN) * SNAPSHOT_GAP_MIN;
        if cut <= have_slot || cut == 0 || cut < self.folder.covered_slot() {
            return None;
        }
        let state = self.fold_state_at(replica, cut);
        let manifest = SnapshotManifest::describe(cut, self.folder.applied_len(), &state);
        self.served_synthesized += 1;
        self.serve_cache = Some((manifest, state));
        Some(manifest)
    }

    fn serve_chunk(
        &mut self,
        _replica: &BatchingReplica<A::Cmd>,
        upto_slot: u64,
        index: u32,
    ) -> Option<Vec<u8>> {
        let cached = self
            .serve_cache
            .as_ref()
            .is_some_and(|(m, _)| m.upto_slot == upto_slot);
        if !cached {
            self.cache_disk_snapshot(Some(upto_slot))?;
        }
        let (manifest, state) = self.serve_cache.as_ref()?;
        manifest.chunk_of(state, index).map(<[u8]>::to_vec)
    }

    fn snapshot_installed(
        &mut self,
        manifest: &SnapshotManifest,
        state: &[u8],
        fs: &FoldedState<A::Cmd>,
        replica: &mut BatchingReplica<A::Cmd>,
    ) {
        // Persist the transferred snapshot so the next restart recovers
        // past it (the store re-verifies the hash and compacts below it),
        // and restore the folder so future periodic folds continue from
        // the transferred state.
        let snap = Snapshot::new(manifest.upto_slot, manifest.applied_len, state.to_vec());
        self.last_cut = self.last_cut.max(manifest.upto_slot);
        // The install resets the WAL tail at the cut when it is at or
        // past the shipped tail; appends resume from there.
        self.next_ship = self.next_ship.max(manifest.upto_slot);
        self.wal_trailing = false;
        self.ship(PersistMsg::Install {
            snap,
            acked: manifest.applied_len,
        });
        if let Err(e) = self.folder.restore(fs, manifest.upto_slot) {
            eprintln!("[durable] folder restore failed: {e}");
        }
        self.serve_cache = Some((*manifest, state.to_vec()));
        if !self.cfg.durable_ack {
            self.ack_gate
                .store(replica.applied_len() as u64, Ordering::SeqCst);
        }
        self.inner.snapshot_installed(manifest, state, fs, replica);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::paxos;
    use gencon_app::LogApp;
    use gencon_net::wire_sync::decode_state;
    use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
    use gencon_smr::BatchingReplica;
    use gencon_store::MemStore;
    use gencon_types::{ProcessId, Round};

    use crate::node::NodeHook;
    use crate::NoHook;

    type LogDurable<H> = DurableNode<LogApp<u64>, MemStore, H>;

    /// A single-replica Paxos log driven by hand: commits every round.
    fn solo_replica(cap: usize) -> BatchingReplica<u64> {
        let spec = paxos::<Batch<u64>>(1, 0, ProcessId::new(0)).unwrap();
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), cap, usize::MAX).unwrap()
    }

    fn drive_round(replica: &mut BatchingReplica<u64>, r: u64) {
        let round = Round::new(r);
        let out = replica.send(round);
        let mut heard: HeardOf<_> = HeardOf::empty(1);
        if let Outgoing::Broadcast(m) = out {
            heard.put(ProcessId::new(0), m);
        }
        replica.receive(round, &heard);
    }

    #[test]
    fn commits_are_persisted_and_gate_follows_durability() {
        let mut replica = solo_replica(4);
        let mut durable: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 0,
                ..DurableConfig::default()
            },
            Folder::default(),
            NoHook,
        );
        let gate = durable.ack_gate();
        replica.submit_all([1u64, 2, 3, 4, 5, 6]);
        for r in 1..=10u64 {
            durable.before_round(r, &mut replica);
            drive_round(&mut replica, r);
            durable.after_round(r, &mut replica);
        }
        durable.flush();
        assert_eq!(replica.applied_len(), 6);
        assert_eq!(
            durable.store().next_slot(),
            replica.committed_slots() as u64,
            "every committed slot has a WAL record"
        );
        // MemStore syncs on every maybe_sync, so the gate covers all.
        assert_eq!(gate.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn snapshot_policy_folds_and_compacts_replica_and_store() {
        let mut replica = solo_replica(2);
        let mut durable: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 8,
                snapshot_tail: 2,
                durable_ack: true,
            },
            Folder::default(),
            NoHook,
        );
        for r in 1..=200u64 {
            replica.submit_all([r * 10, r * 10 + 1]);
            durable.before_round(r, &mut replica);
            drive_round(&mut replica, r);
            durable.after_round(r, &mut replica);
        }
        durable.flush();
        assert!(durable.snapshots_taken() > 2, "policy must fire repeatedly");
        let meta = durable.store().snapshot_meta().expect("snapshot exists");
        assert!(meta.upto_slot > 0);
        assert!(
            replica.applied_base() > 0,
            "compaction pruned the applied prefix"
        );
        // The snapshot state is a FoldedState whose LogApp fold holds the
        // full applied prefix below the cut.
        let snap = durable.store().read_snapshot().unwrap().unwrap();
        let mut buf = bytes::Bytes::from(snap.state.clone());
        let fs = FoldedState::<u64>::decode(&mut buf).unwrap();
        assert_eq!(fs.applied_len, meta.applied_len);
        let pairs = decode_state::<u64>(&fs.app).unwrap();
        assert_eq!(pairs.len() as u64, meta.applied_len);
        assert!(pairs.iter().all(|(_, s)| *s < meta.upto_slot));
        // The folder mirrors the on-disk fold.
        assert_eq!(durable.folder().applied_len(), meta.applied_len);
    }

    #[test]
    fn recovery_rebuilds_fold_plus_tail() {
        // Build a log with snapshots, then recover a fresh replica+folder
        // from the store's recovery image and compare.
        let mut replica = solo_replica(2);
        let mut durable: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 8,
                snapshot_tail: 2,
                durable_ack: true,
            },
            Folder::default(),
            NoHook,
        );
        for r in 1..=40u64 {
            replica.submit_all([r * 10, r * 10 + 1]);
            durable.before_round(r, &mut replica);
            drive_round(&mut replica, r);
            durable.after_round(r, &mut replica);
        }
        durable.flush();
        let total_applied = replica.applied_len();
        let total_slots = replica.committed_slots();
        // A MemStore "recovery image": its snapshot and retained records.
        let recovery = {
            let store = durable.store();
            Recovery {
                snapshot: store.read_snapshot().unwrap(),
                records: store.records().to_vec(),
                ..Recovery::default()
            }
        };
        let mut fresh = solo_replica(2);
        let mut folder: Folder<LogApp<u64>> = Folder::default();
        let recovered = recover_replica(&mut fresh, &mut folder, &recovery);
        assert_eq!(recovered.applied, total_applied);
        assert_eq!(fresh.committed_slots(), total_slots);
        assert!(recovered.snapshot_slots > 0 && recovered.replayed_slots > 0);
        // The recovered fold covers the full history: its LogApp equals
        // the original's committed command sequence.
        assert_eq!(folder.applied_len() as usize, total_applied);
        assert_eq!(folder.app().len(), total_applied);
        // The recovered retained suffix matches the original's where they
        // overlap (the folded install retains nothing below its cut,
        // while the original kept a snapshot tail).
        let lo = replica.applied_base().max(fresh.applied_base());
        let hi = replica.applied_len().min(fresh.applied_len());
        assert!(hi > lo, "suffixes overlap");
        assert_eq!(
            &fresh.applied()[lo - fresh.applied_base()..hi - fresh.applied_base()],
            &replica.applied()[lo - replica.applied_base()..hi - replica.applied_base()]
        );
    }

    /// Satellite regression: a laggard request is answered from the
    /// on-disk snapshot whenever one covers it; the fold-synthesis path
    /// runs only when no snapshot exists.
    #[test]
    fn serving_prefers_disk_and_synthesizes_only_without_a_snapshot() {
        // Node with periodic snapshots: after enough rounds a snapshot is
        // on disk, and serving must come from it.
        let mut replica = solo_replica(2);
        let mut durable: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 8,
                snapshot_tail: 2,
                durable_ack: true,
            },
            Folder::default(),
            NoHook,
        );
        for r in 1..=40u64 {
            replica.submit_all([r * 2, r * 2 + 1]);
            durable.before_round(r, &mut replica);
            drive_round(&mut replica, r);
            durable.after_round(r, &mut replica);
        }
        durable.flush();
        let disk_cut = durable.store().snapshot_meta().unwrap().upto_slot;
        let manifest = durable.serve_manifest(&replica, 0).expect("serves");
        assert_eq!(manifest.upto_slot, disk_cut, "served the disk snapshot");
        assert_eq!(durable.served_from_disk(), 1);
        assert_eq!(
            durable.served_synthesized(),
            0,
            "no synthesis with a snapshot"
        );
        // Chunks reassemble to exactly the on-disk state.
        let mut state = Vec::new();
        for i in 0..manifest.chunks {
            state.extend(
                durable
                    .serve_chunk(&replica, manifest.upto_slot, i)
                    .unwrap(),
            );
        }
        assert_eq!(gencon_crypto::sha256(&state), manifest.sha256);

        // Node without any snapshot (policy disabled): the same request
        // falls back to synthesis from the uncompacted log.
        let mut replica2 = solo_replica(2);
        let mut memory: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 0,
                ..DurableConfig::default()
            },
            Folder::default(),
            NoHook,
        );
        for r in 1..=40u64 {
            replica2.submit_all([r * 2, r * 2 + 1]);
            memory.before_round(r, &mut replica2);
            drive_round(&mut replica2, r);
            memory.after_round(r, &mut replica2);
        }
        let manifest2 = memory.serve_manifest(&replica2, 0).expect("synthesizes");
        assert_eq!(memory.served_from_disk(), 0);
        assert_eq!(memory.served_synthesized(), 1, "synthesis is the fallback");
        assert!(manifest2.upto_slot > 0 && manifest2.consistent());
        // A requester already past the synthesized cut gets silence.
        assert!(memory
            .serve_manifest(&replica2, manifest2.upto_slot)
            .is_none());
    }

    /// Retained older snapshot cuts stay fetchable: a laggard that
    /// started its transfer against an older manifest keeps pulling
    /// chunks after newer cuts land; only cuts past the retention bound
    /// go dark.
    #[test]
    fn older_retained_cut_serves_chunks_after_newer_snapshots() {
        let mut replica = solo_replica(2);
        let mut durable: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(), // retains 2 cuts by default
            DurableConfig {
                snapshot_every: 8,
                snapshot_tail: 2,
                durable_ack: true,
            },
            Folder::default(),
            NoHook,
        );
        for r in 1..=200u64 {
            replica.submit_all([r * 10, r * 10 + 1]);
            durable.before_round(r, &mut replica);
            drive_round(&mut replica, r);
            durable.after_round(r, &mut replica);
        }
        durable.flush();
        assert!(durable.snapshots_taken() > 2, "several cuts were taken");
        let metas = durable.store().snapshot_metas();
        assert_eq!(metas.len(), 2, "retention keeps the last two cuts");
        let (older, newest) = (metas[0], metas[1]);
        assert!(older.upto_slot < newest.upto_slot);
        // Chunks of the *older* cut reassemble to its exact state even
        // though it is no longer the store's primary snapshot.
        let older_snap = durable
            .store()
            .read_snapshot_at(older.upto_slot)
            .unwrap()
            .expect("older cut retained");
        let manifest =
            SnapshotManifest::describe(older.upto_slot, older.applied_len, &older_snap.state);
        let mut state = Vec::new();
        for i in 0..manifest.chunks {
            state.extend(
                durable
                    .serve_chunk(&replica, older.upto_slot, i)
                    .expect("older cut serves"),
            );
        }
        assert_eq!(state, older_snap.state);
        // A cut older than the retention window is gone.
        let pruned = older.upto_slot - (newest.upto_slot - older.upto_slot);
        assert!(durable.serve_chunk(&replica, pruned, 0).is_none());
    }

    #[test]
    fn fast_ack_gate_is_wide_open() {
        let mut replica = solo_replica(4);
        let mut durable: LogDurable<NoHook> = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                durable_ack: false,
                snapshot_every: 0,
                ..DurableConfig::default()
            },
            Folder::default(),
            NoHook,
        );
        let gate = durable.ack_gate();
        replica.submit_all([7u64, 8]);
        for r in 1..=6u64 {
            durable.before_round(r, &mut replica);
            drive_round(&mut replica, r);
            durable.after_round(r, &mut replica);
        }
        assert_eq!(gate.load(Ordering::SeqCst) as usize, replica.applied_len());
    }
}
