//! The durability layer of a server node: a [`NodeHook`] that pairs the
//! replica with a [`gencon_store::Log`].
//!
//! [`DurableNode`] wraps any inner hook (typically the
//! [`ClientGateway`](crate::ClientGateway)) and, around every round:
//!
//! 1. **persists** newly committed batches to the write-ahead log (one
//!    record per slot, the `gencon-net` wire encoding as payload);
//! 2. **group-commits**: `maybe_sync` fsyncs at most once per configured
//!    interval, so a burst of slots shares one fsync;
//! 3. advances the **ack watermark** — the absolute applied-command count
//!    covered by durable storage. Under durable-ack semantics the
//!    gateway acknowledges clients only below this watermark, so an ack
//!    implies the command survives `kill -9`; under fast-ack the
//!    watermark is wide open (memory semantics with a warm log on disk);
//! 4. runs the **snapshot policy**: every `snapshot_every` committed
//!    slots, fold the newly applied suffix into the on-disk snapshot
//!    (atomic install), compact WAL segments below it, and
//!    [`BatchingReplica::compact_below`] the in-memory prefix — keeping a
//!    short `snapshot_tail` of slots for the decision-claim path.
//!
//! It also plugs the node loop's **state transfer**: `serve_snapshot`
//! answers laggards from the on-disk snapshot, and `snapshot_installed`
//! persists a `b + 1`-vouched transferred snapshot so the *next* restart
//! recovers past it too.
//!
//! [`recover_replica`] is the startup half: decode a [`Recovery`]
//! (snapshot + replayed WAL records) into a fresh replica, which then
//! rejoins the cluster and closes any remaining gap via decision claims
//! or state transfer.
//!
//! # Scale ceiling
//!
//! The snapshot state is the **full applied history** (the service's
//! state machine *is* the log), so each periodic snapshot re-reads and
//! re-writes O(history) bytes, and state transfer stops working once the
//! encoded state passes the wire caps
//! (`gencon_net::wire_sync::MAX_SNAPSHOT_BYTES` / `MAX_SNAPSHOT_CMDS`,
//! ≈ 1M commands) — beyond that a laggard needs an out-of-band copy of a
//! peer's data dir. Lifting this needs application-level state folding
//! (a real state machine with compact state) or chunked incremental
//! transfer; see ROADMAP.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gencon_net::wire::Wire;
use gencon_net::wire_sync::{decode_state, encode_state, SnapshotMeta};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{Log, Recovery, Snapshot};
use gencon_types::Value;

use crate::node::NodeHook;

/// Durability policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// Take a snapshot (and compact below it) every this many committed
    /// slots; 0 disables snapshots.
    pub snapshot_every: u64,
    /// Committed slots kept in memory behind the snapshot cut so recent
    /// laggards can still catch up via decision claims.
    pub snapshot_tail: u64,
    /// Durable-ack (`true`): clients are acked only once their command's
    /// slot is fsynced or snapshotted. Fast-ack (`false`): acks follow
    /// apply, persistence trails behind.
    pub durable_ack: bool,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            snapshot_every: 512,
            snapshot_tail: 64,
            durable_ack: true,
        }
    }
}

/// What [`recover_replica`] reconstructed.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveredState {
    /// Slots recovered from the snapshot.
    pub snapshot_slots: u64,
    /// Slots replayed from WAL records.
    pub replayed_slots: u64,
    /// Applied commands after recovery.
    pub applied: usize,
}

/// Rebuilds `replica` from what the store recovered: snapshot install
/// first, then WAL replay of every decodable record. Returns what was
/// recovered; undecodable payloads end the replay (the WAL's CRC framing
/// makes them effectively unreachable).
pub fn recover_replica<V: Value + Wire>(
    replica: &mut BatchingReplica<V>,
    recovery: &Recovery,
) -> RecoveredState {
    let mut out = RecoveredState::default();
    if let Some(snap) = &recovery.snapshot {
        if let Ok(pairs) = decode_state::<V>(&snap.state) {
            if replica.install_snapshot(pairs, snap.meta.upto_slot, 0) {
                out.snapshot_slots = snap.meta.upto_slot;
            }
        }
    }
    for (_slot, payload) in &recovery.records {
        let mut buf = bytes::Bytes::from(payload.clone());
        let Ok(batch) = Batch::<V>::decode(&mut buf) else {
            break;
        };
        replica.replay_committed(batch);
        out.replayed_slots += 1;
    }
    out.applied = replica.applied_len();
    out
}

/// The persistence wrapper hook (see the module docs).
pub struct DurableNode<L, H> {
    wal: L,
    inner: H,
    cfg: DurableConfig,
    /// Absolute applied-command count covered by durable storage — the
    /// gateway's ack limit under durable-ack.
    ack_gate: Arc<AtomicU64>,
    snapshots_taken: u64,
}

impl<L: Log, H> DurableNode<L, H> {
    /// Wraps `inner` with persistence into `wal`. The WAL is expected to
    /// already be positioned at the replica's recovery point (see
    /// [`recover_replica`]).
    pub fn new(wal: L, cfg: DurableConfig, inner: H) -> Self {
        DurableNode {
            wal,
            inner,
            cfg,
            ack_gate: Arc::new(AtomicU64::new(0)),
            snapshots_taken: 0,
        }
    }

    /// The ack watermark handle — give it to the
    /// [`ClientGateway`](crate::ClientGateway) via
    /// [`with_ack_gate`](crate::ClientGateway::with_ack_gate) so acks
    /// respect durability.
    #[must_use]
    pub fn ack_gate(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ack_gate)
    }

    /// Shares an externally created watermark instead of the internal one
    /// (when the gateway had to be constructed before this node).
    #[must_use]
    pub fn with_gate(mut self, gate: Arc<AtomicU64>) -> Self {
        self.ack_gate = gate;
        self
    }

    /// Snapshots taken by the periodic policy during this run.
    #[must_use]
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// The wrapped store (e.g. for stats after the run).
    #[must_use]
    pub fn store(&self) -> &L {
        &self.wal
    }

    /// The wrapped inner hook.
    #[must_use]
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<L: Log, H> DurableNode<L, H> {
    /// Appends every newly committed batch to the WAL.
    fn persist_committed<V: Value + Wire>(&mut self, replica: &BatchingReplica<V>) {
        let base = replica.committed_base_slot();
        let committed = replica.committed_slots() as u64;
        if self.wal.next_slot() < base {
            // The WAL fell behind the compaction point (a failed append or
            // snapshot persist) — the missing records no longer exist in
            // memory. Don't panic and don't append a gapped log; the next
            // successful periodic snapshot install resets the WAL at its
            // cut and persistence resumes from there.
            eprintln!(
                "[durable] WAL at slot {} trails the compaction point {base}; \
                 waiting for the next snapshot to heal it",
                self.wal.next_slot()
            );
            return;
        }
        while self.wal.next_slot() < committed {
            let slot = self.wal.next_slot();
            let batch = &replica.committed_batches()[(slot - base) as usize];
            if let Err(e) = self.wal.append(slot, &batch.to_bytes()) {
                // Storage failure: surface loudly; the node keeps serving
                // (fast-ack semantics from here on would be the honest
                // description, and the gate stops advancing under
                // durable-ack).
                eprintln!("[durable] WAL append of slot {slot} failed: {e}");
                return;
            }
        }
    }

    /// Recomputes the absolute applied-command watermark from the store's
    /// durable slot.
    fn update_gate<V: Value>(&self, replica: &BatchingReplica<V>) {
        let covered = if self.cfg.durable_ack {
            match self.wal.durable_slot() {
                None => 0,
                Some(d) => {
                    let suffix = replica.applied_slots();
                    replica.applied_base() + suffix.partition_point(|&s| s <= d)
                }
            }
        } else {
            replica.applied_len()
        };
        self.ack_gate.store(covered as u64, Ordering::SeqCst);
    }

    /// The periodic snapshot + compaction policy.
    fn maybe_snapshot<V: Value + Wire>(&mut self, replica: &mut BatchingReplica<V>) {
        if self.cfg.snapshot_every == 0 {
            return;
        }
        let committed = replica.committed_slots() as u64;
        // Cut at an exact `snapshot_every` boundary, never at the raw
        // commit point: every replica then produces byte-identical
        // snapshots for the same boundary (the committed sequence is
        // shared), which is what lets `b + 1` responders vouch for one
        // state during transfer.
        let cut = (committed / self.cfg.snapshot_every) * self.cfg.snapshot_every;
        let prev_upto = self.wal.snapshot_meta().map_or(0, |m| m.upto_slot);
        if cut <= prev_upto || cut == 0 {
            return;
        }
        // Fold the applied suffix above the previous snapshot into the
        // new state. The previous state lives on disk, not in memory —
        // reading it back keeps resident memory flat at the cost of
        // O(state) I/O per snapshot.
        let mut pairs: Vec<(V, u64)> = match self.wal.read_snapshot() {
            Ok(Some(prev)) => match decode_state::<V>(&prev.state) {
                Ok(pairs) => pairs,
                Err(_) => return,
            },
            Ok(None) => Vec::new(),
            Err(_) => return,
        };
        for (i, slot) in replica.applied_slots().iter().enumerate() {
            if *slot >= prev_upto && *slot < cut {
                pairs.push((replica.applied()[i].clone(), *slot));
            }
        }
        let applied_len = pairs.len() as u64;
        let state = encode_state(&pairs);
        let snap = Snapshot::new(cut, applied_len, state);
        if let Err(e) = self.wal.install_snapshot(&snap) {
            eprintln!("[durable] snapshot install at slot {cut} failed: {e}");
            return;
        }
        self.snapshots_taken += 1;
        // Never compact past the ack watermark: the gateway acks from the
        // retained applied suffix, so pruning unacked commands would
        // silently swallow their client acks (the gate may trail commits
        // by a whole group-commit window under a long fsync interval).
        let gate = self.ack_gate.load(Ordering::SeqCst) as usize;
        let ack_floor = if gate < replica.applied_len() {
            let b = replica.applied_base();
            if gate >= b {
                replica.applied_slots()[gate - b]
            } else {
                0
            }
        } else {
            u64::MAX
        };
        replica.compact_below(cut.saturating_sub(self.cfg.snapshot_tail).min(ack_floor));
    }
}

impl<V, L, H> NodeHook<V> for DurableNode<L, H>
where
    V: Value + Wire,
    L: Log + Send,
    H: NodeHook<V>,
{
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<V>) {
        self.inner.before_round(round, replica);
    }

    fn after_round(&mut self, round: u64, replica: &mut BatchingReplica<V>) {
        self.persist_committed(replica);
        if let Err(e) = self.wal.maybe_sync() {
            eprintln!("[durable] WAL sync failed: {e}");
        }
        self.update_gate(replica);
        // The inner hook (gateway, harness) acks under the fresh gate and
        // sees the applied log before compaction prunes it.
        self.inner.after_round(round, replica);
        self.maybe_snapshot(replica);
    }

    fn should_stop(&mut self, replica: &BatchingReplica<V>) -> bool {
        self.inner.should_stop(replica)
    }

    fn serve_snapshot(&mut self, replica: &BatchingReplica<V>) -> Option<(SnapshotMeta, Vec<u8>)> {
        let _ = replica;
        let snap = self.wal.read_snapshot().ok().flatten()?;
        Some((
            SnapshotMeta {
                upto_slot: snap.meta.upto_slot,
                applied_len: snap.meta.applied_len,
                state_hash: snap.meta.state_hash,
            },
            snap.state,
        ))
    }

    fn snapshot_installed(
        &mut self,
        meta: &SnapshotMeta,
        state: &[u8],
        replica: &mut BatchingReplica<V>,
    ) {
        // Persist the transferred snapshot so the next restart recovers
        // past it (the store re-verifies the hash and compacts below it).
        let snap = Snapshot::new(meta.upto_slot, meta.applied_len, state.to_vec());
        if let Err(e) = self.wal.install_snapshot(&snap) {
            eprintln!(
                "[durable] persisting transferred snapshot at slot {} failed: {e}",
                meta.upto_slot
            );
        }
        self.update_gate(replica);
        self.inner.snapshot_installed(meta, state, replica);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::paxos;
    use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
    use gencon_smr::BatchingReplica;
    use gencon_store::MemStore;
    use gencon_types::{ProcessId, Round};

    use crate::node::NodeHook;
    use crate::NoHook;

    /// A single-replica Paxos log driven by hand: commits every round.
    fn solo_replica(cap: usize) -> BatchingReplica<u64> {
        let spec = paxos::<Batch<u64>>(1, 0, ProcessId::new(0)).unwrap();
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), cap, usize::MAX).unwrap()
    }

    fn drive_round(replica: &mut BatchingReplica<u64>, r: u64) {
        let round = Round::new(r);
        let out = replica.send(round);
        let mut heard: HeardOf<_> = HeardOf::empty(1);
        if let Outgoing::Broadcast(m) = out {
            heard.put(ProcessId::new(0), m);
        }
        replica.receive(round, &heard);
    }

    #[test]
    fn commits_are_persisted_and_gate_follows_durability() {
        let mut replica = solo_replica(4);
        let mut durable = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 0,
                ..DurableConfig::default()
            },
            NoHook,
        );
        let gate = durable.ack_gate();
        replica.submit_all([1u64, 2, 3, 4, 5, 6]);
        for r in 1..=10u64 {
            NodeHook::<u64>::before_round(&mut durable, r, &mut replica);
            drive_round(&mut replica, r);
            NodeHook::<u64>::after_round(&mut durable, r, &mut replica);
        }
        assert_eq!(replica.applied_len(), 6);
        assert_eq!(
            durable.store().next_slot(),
            replica.committed_slots() as u64,
            "every committed slot has a WAL record"
        );
        // MemStore syncs on every maybe_sync, so the gate covers all.
        assert_eq!(gate.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn snapshot_policy_compacts_replica_and_store() {
        let mut replica = solo_replica(2);
        let mut durable = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 8,
                snapshot_tail: 2,
                durable_ack: true,
            },
            NoHook,
        );
        for r in 1..=200u64 {
            replica.submit_all([r * 10, r * 10 + 1]);
            NodeHook::<u64>::before_round(&mut durable, r, &mut replica);
            drive_round(&mut replica, r);
            NodeHook::<u64>::after_round(&mut durable, r, &mut replica);
        }
        assert!(durable.snapshots_taken() > 2, "policy must fire repeatedly");
        let meta = durable.store().snapshot_meta().expect("snapshot exists");
        assert!(meta.upto_slot > 0);
        // The snapshot covers the applied prefix below its cut exactly:
        // everything compacted away plus retained entries below the cut.
        let retained_below_cut = replica
            .applied_slots()
            .iter()
            .filter(|&&s| s < meta.upto_slot)
            .count();
        assert_eq!(
            meta.applied_len as usize,
            replica.applied_base() + retained_below_cut
        );
        assert!(
            replica.applied_base() > 0,
            "compaction pruned the applied prefix"
        );
        // The full state on record decodes back to the full prefix.
        let snap = durable.store().read_snapshot().unwrap().unwrap();
        let pairs = decode_state::<u64>(&snap.state).unwrap();
        assert_eq!(pairs.len() as u64, meta.applied_len);
        assert!(pairs.iter().all(|(_, s)| *s < meta.upto_slot));
    }

    #[test]
    fn recovery_rebuilds_snapshot_plus_tail() {
        // Build a log with snapshots, then recover a fresh replica from
        // the store's recovery image and compare.
        let mut replica = solo_replica(2);
        let mut durable = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                snapshot_every: 8,
                snapshot_tail: 2,
                durable_ack: true,
            },
            NoHook,
        );
        for r in 1..=40u64 {
            replica.submit_all([r * 10, r * 10 + 1]);
            NodeHook::<u64>::before_round(&mut durable, r, &mut replica);
            drive_round(&mut replica, r);
            NodeHook::<u64>::after_round(&mut durable, r, &mut replica);
        }
        let total_applied = replica.applied_len();
        let total_slots = replica.committed_slots();
        // A MemStore "recovery image": its snapshot and retained records.
        let recovery = Recovery {
            snapshot: durable.store().read_snapshot().unwrap(),
            records: durable.store().records().to_vec(),
            ..Recovery::default()
        };
        let mut fresh = solo_replica(2);
        let recovered = recover_replica(&mut fresh, &recovery);
        assert_eq!(recovered.applied, total_applied);
        assert_eq!(fresh.committed_slots(), total_slots);
        assert!(recovered.snapshot_slots > 0 && recovered.replayed_slots > 0);
        // The recovered suffix matches the original's retained suffix.
        let lo = replica.applied_base();
        assert_eq!(
            &fresh.applied()[lo - fresh.applied_base()..],
            replica.applied()
        );
    }

    #[test]
    fn fast_ack_gate_is_wide_open() {
        let mut replica = solo_replica(4);
        let mut durable = DurableNode::new(
            MemStore::new(),
            DurableConfig {
                durable_ack: false,
                snapshot_every: 0,
                ..DurableConfig::default()
            },
            NoHook,
        );
        let gate = durable.ack_gate();
        replica.submit_all([7u64, 8]);
        for r in 1..=6u64 {
            NodeHook::<u64>::before_round(&mut durable, r, &mut replica);
            drive_round(&mut replica, r);
            NodeHook::<u64>::after_round(&mut durable, r, &mut replica);
        }
        assert_eq!(gate.load(Ordering::SeqCst) as usize, replica.applied_len());
    }
}
