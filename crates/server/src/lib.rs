//! `gencon-server` — the networked multi-slot SMR service.
//!
//! Everything below `gencon-smr` treats the replicated log as a value in
//! memory; this crate is the layer that *serves* it: an event-loop node
//! that drives a [`BatchingReplica`](gencon_smr::BatchingReplica)
//! slot-by-slot over any [`Transport`](gencon_net::Transport) with
//! wall-clock round pacing and adaptive deadlines, plus a client-facing
//! protocol (submit a command → get a committed ack with its slot and log
//! offset, or a backpressure/redirect bounce) and the two binaries that
//! turn a shell into a cluster:
//!
//! ```text
//! gencon-client ──Submit{cmd}──► ClientGateway ─┐ (NodeHook)
//!                                               ▼
//!           ┌──────────── run_smr_node event loop ───────────┐
//!           │ drain clients → replica.send → mesh broadcast  │
//!           │ collect ≤ AdaptiveDeadline → replica.receive   │
//!           │ ack applied commands ◄─ applied log grows      │
//!           └────────────────────────────────────────────────┘
//!                  ▲ SmrMsg<Batch<V>> frames over Tcp/Channel
//! ```
//!
//! Launch a 4-node PBFT cluster on localhost:
//!
//! ```bash
//! for i in 0 1 2 3; do
//!   cargo run --release -p gencon_server --bin gencon-server -- \
//!     --id $i --algo pbft \
//!     --peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//!     --client-addr 127.0.0.1:700$i &
//! done
//! cargo run --release -p gencon_server --bin gencon-client -- \
//!   --server 127.0.0.1:7000 --clients 8 --outstanding 16 --count 10000
//! ```
//!
//! A node that restarts (or falls arbitrarily far behind) rejoins by
//! **round fast-forward** (`b + 1` senders ahead prove the cluster's round)
//! and then recommits the missed prefix via the `b + 1`-concordant decision
//! claims of `gencon-smr` — see the crate's integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod cli;
mod config;
mod deadline;
mod durable;
mod gateway;
pub mod mon;
mod node;
pub mod protocol;

pub use admin::{spawn_admin, spawn_admin_gated, AdminState, ADMIN_IO_TIMEOUT};
pub use config::ServerConfig;
pub use deadline::AdaptiveDeadline;
pub use durable::{recover_replica, DurableConfig, DurableNode, RecoveredState};
pub use gateway::{ClientGateway, GatewayConfig};
pub use node::{
    run_smr_node, run_smr_node_metered, run_smr_node_observed, NoHook, NodeHook, NodeStats,
    CHUNKS_SERVED_PER_SENDER_PER_ROUND, CHUNK_REQUESTS_PER_ROUND, FUTURE_HORIZON, INGEST_QUEUE_CAP,
    LIVENESS_GRACE, SNAPSHOT_GAP_MIN, SNAPSHOT_PROBE_AFTER,
};
pub use protocol::{read_frame, write_frame, ClientRequest, ClientResponse};
