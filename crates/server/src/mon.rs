//! Cluster aggregation + watchdog: the library behind `gencon-mon`.
//!
//! One node's admin port answers "what is *this* replica doing"; this
//! module answers the cluster questions — is anyone diverging, who is
//! the straggler, has commit progress stopped — by polling every node's
//! admin endpoint (`status` / `rates` / `hash`), assembling one
//! [`ClusterReport`], and running a watchdog over consecutive polls:
//!
//! | alert                 | fires when                                     |
//! |-----------------------|------------------------------------------------|
//! | `unreachable`         | an admin endpoint stops answering (transition) |
//! | `commit-stall`        | no node's committed watermark advanced across  |
//! |                       | `stall_polls` consecutive polls                |
//! | `divergence`          | two nodes published different state hashes for |
//! |                       | the same applied count (both hashes + node ids |
//! |                       | recorded as audit evidence)                    |
//! | `straggler`           | a node's committed watermark trails the max by |
//! |                       | more than `straggler_slots`, or a peer reports |
//! |                       | it lagging more than `straggler_rounds`        |
//! | `gate-wedge`          | a node's persist gate sits still while its     |
//! |                       | commits advance across `stall_polls` polls     |
//! | `straggler-recovered` | a previously unreachable/straggling node is    |
//! |                       | back within bounds                             |
//! | `slo-burn`            | a node's SLO error budget burns faster than    |
//! |                       | `slo_burn_max` in both the short and the long  |
//! |                       | history window                                 |
//!
//! Hash agreement is checked at the **max common applied count**: each
//! node publishes a short history of `(applied, hash)` pairs (see
//! [`HashCell`](gencon_trace::HashCell)), the monitor intersects the
//! counts across reachable nodes and compares at the highest one all of
//! them cover — nodes sample at the same deterministic boundaries, so a
//! mismatch there is divergence, not skew.
//!
//! Beyond the watchdog, [`trace_pull`] runs the cross-node autopsy:
//! it estimates every node's recorder-clock offset from K `clock`
//! round-trips ([`estimate_clock`], min-RTT sample wins, uncertainty
//! carried), pulls each node's `spans`, and stitches them with
//! [`gencon_trace::stitch_spans`] into cluster slot spans — decide
//! skew, quorum wait and fan-out attribution with explicit ± bounds.
//! [`trace_pull_cmds`] is the command-scoped twin: it pulls each
//! node's `cmds` and `slowest`, stitches relay hops across nodes with
//! [`gencon_trace::stitch_cmd_spans`], and merges the slow-command
//! exemplars into one cluster-wide worst-offenders list.
//!
//! The watchdog also reads each node's sampled `slo.good`/`slo.bad`
//! counters from `history` and computes multi-window burn rates
//! ([`gencon_metrics::slo_burn`]): `slo-burn` fires when both the
//! short and the long window burn above [`MonConfig::slo_burn_max`] —
//! the multi-window gate keeps one slow command from paging while a
//! sustained breach still fires fast.
//!
//! Everything is hand-rolled over the admin port's fixed JSON shapes
//! (the monitor must not drag a parser dependency into the server
//! crate); the scanners live here next to their single producer.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gencon_metrics::{slo_burn, HistorySnapshot, SloBurn, SLO_BAD, SLO_ERROR_BUDGET_P99, SLO_GOOD};
use gencon_trace::{
    stitch_cmd_spans, stitch_spans, ClockEstimate, ClusterCmdSpan, ClusterSlotSpan, CmdExemplar,
    CmdSpan, NodeCmdSpans, NodeSpans, SlotSpan,
};

/// Polling and threshold knobs for [`Monitor`].
#[derive(Clone, Debug)]
pub struct MonConfig {
    /// Delay between polls (the continuous mode cadence).
    pub interval: Duration,
    /// TCP connect deadline per admin query.
    pub connect_timeout: Duration,
    /// Read/write deadline per admin query.
    pub io_timeout: Duration,
    /// Consecutive no-progress polls before `commit-stall` (and the
    /// window for `gate-wedge`).
    pub stall_polls: usize,
    /// Committed-watermark lag (slots) before a node is a straggler.
    pub straggler_slots: u64,
    /// Peer-reported round lag before a node is a straggler.
    pub straggler_rounds: u64,
    /// `slo-burn` fires when a node's burn rate exceeds this in *both*
    /// the short and the long history window (1.0 = exactly on budget).
    pub slo_burn_max: f64,
    /// History snapshots in the short burn window (newest-first tail).
    pub slo_window_short: usize,
    /// History snapshots in the long burn window.
    pub slo_window_long: usize,
}

impl Default for MonConfig {
    fn default() -> Self {
        MonConfig {
            interval: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(1_000),
            stall_polls: 3,
            straggler_slots: 2_048,
            straggler_rounds: 64,
            slo_burn_max: 2.0,
            slo_window_short: 2,
            slo_window_long: 8,
        }
    }
}

/// What one node answered on one poll (zeroed when unreachable).
#[derive(Clone, Debug, Default)]
pub struct NodeSample {
    /// Index into the monitor's node list.
    pub node: usize,
    /// The admin address polled.
    pub addr: String,
    /// Whether the endpoint answered `status` this poll.
    pub reachable: bool,
    /// Consensus round from `status`.
    pub round: u64,
    /// Committed-slot watermark from `status`.
    pub committed: u64,
    /// Applied-command watermark from `status`.
    pub applied: u64,
    /// Durable-ack gate from `status` (0 on memory nodes).
    pub persist_gate: u64,
    /// Commands applied per second from `rates` (0 until two samples).
    pub cmds_per_sec: f64,
    /// Fsyncs per second from `rates`.
    pub fsyncs_per_sec: f64,
    /// Consensus rounds per second from `rates`.
    pub rounds_per_sec: f64,
    /// Published `(applied count, state-hash hex)` pairs from `hash`,
    /// ascending.
    pub hashes: Vec<(u64, String)>,
    /// Peer-lag rows from `status`: `(peer, lag_rounds, written_off)`.
    pub peer_lags: Vec<(usize, u64, bool)>,
    /// SLO burn over the short history window (None when the node
    /// tracks no SLO or the window is idle).
    pub slo_burn_short: Option<SloBurn>,
    /// SLO burn over the long history window.
    pub slo_burn_long: Option<SloBurn>,
}

impl NodeSample {
    /// One JSON object (a row of the report's `nodes` array).
    #[must_use]
    pub fn to_json(&self) -> String {
        let hashes: Vec<String> = self
            .hashes
            .iter()
            .map(|(applied, hash)| format!("{{\"applied\":{applied},\"state_hash\":\"{hash}\"}}"))
            .collect();
        let lags: Vec<String> = self
            .peer_lags
            .iter()
            .map(|(peer, lag, off)| {
                format!("{{\"peer\":{peer},\"lag_rounds\":{lag},\"written_off\":{off}}}")
            })
            .collect();
        let burn = |b: &Option<SloBurn>| {
            b.as_ref()
                .map_or_else(|| "null".to_string(), SloBurn::to_json)
        };
        format!(
            "{{\"node\":{},\"addr\":\"{}\",\"reachable\":{},\"round\":{},\"committed\":{},\
             \"applied\":{},\"persist_gate\":{},\"cmds_per_sec\":{:.3},\"fsyncs_per_sec\":{:.3},\
             \"rounds_per_sec\":{:.3},\"slo_burn_short\":{},\"slo_burn_long\":{},\
             \"hashes\":[{}],\"peer_lags\":[{}]}}",
            self.node,
            self.addr,
            self.reachable,
            self.round,
            self.committed,
            self.applied,
            self.persist_gate,
            self.cmds_per_sec,
            self.fsyncs_per_sec,
            self.rounds_per_sec,
            burn(&self.slo_burn_short),
            burn(&self.slo_burn_long),
            hashes.join(","),
            lags.join(","),
        )
    }
}

/// The watchdog's alert vocabulary (see the module table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// Admin endpoint stopped answering.
    Unreachable,
    /// No reachable node's committed watermark advanced for K polls.
    CommitStall,
    /// Two nodes disagree on the state hash at the same applied count.
    Divergence,
    /// A node trails the cluster beyond the configured bounds.
    Straggler,
    /// Persist gate static while commits advance.
    GateWedge,
    /// A previously unreachable/straggling node is healthy again.
    StragglerRecovered,
    /// A node is burning its SLO error budget above the configured
    /// rate in both the short and the long window.
    SloBurn,
}

impl AlertKind {
    /// The wire name used in alert JSON lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::Unreachable => "unreachable",
            AlertKind::CommitStall => "commit-stall",
            AlertKind::Divergence => "divergence",
            AlertKind::Straggler => "straggler",
            AlertKind::GateWedge => "gate-wedge",
            AlertKind::StragglerRecovered => "straggler-recovered",
            AlertKind::SloBurn => "slo-burn",
        }
    }
}

/// One structured watchdog alert.
#[derive(Clone, Debug)]
pub struct Alert {
    /// What fired.
    pub kind: AlertKind,
    /// Poll index (1-based) the alert fired on.
    pub poll: u64,
    /// The node concerned, if the alert is about one node.
    pub node: Option<usize>,
    /// The applied count concerned (divergence evidence).
    pub applied: Option<u64>,
    /// Human-readable evidence (hashes, watermarks, thresholds).
    pub detail: String,
}

impl Alert {
    /// One JSON line (written to stderr and embedded in the report).
    #[must_use]
    pub fn to_json(&self) -> String {
        let node = self
            .node
            .map_or_else(|| "null".to_string(), |n| n.to_string());
        let applied = self
            .applied
            .map_or_else(|| "null".to_string(), |a| a.to_string());
        format!(
            "{{\"alert\":\"{}\",\"poll\":{},\"node\":{node},\"applied\":{applied},\
             \"detail\":\"{}\"}}",
            self.kind.as_str(),
            self.poll,
            self.detail.replace('"', "'"),
        )
    }
}

/// Cross-node hash comparison at the max common applied count.
#[derive(Clone, Debug)]
pub struct HashAgreement {
    /// The highest applied count every reachable publishing node covers.
    pub applied: u64,
    /// Whether every node's hash at that count matches.
    pub agreed: bool,
    /// `(node, state-hash hex)` at that count, one row per node.
    pub hashes: Vec<(usize, String)>,
}

impl HashAgreement {
    /// The report's `agreement` object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .hashes
            .iter()
            .map(|(node, hash)| format!("{{\"node\":{node},\"state_hash\":\"{hash}\"}}"))
            .collect();
        format!(
            "{{\"applied\":{},\"agreed\":{},\"hashes\":[{}]}}",
            self.applied,
            self.agreed,
            rows.join(","),
        )
    }
}

/// One poll's assembled cluster view.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Poll index, 1-based.
    pub poll: u64,
    /// Per-node samples, in node-list order.
    pub nodes: Vec<NodeSample>,
    /// Highest committed watermark among reachable nodes.
    pub max_committed: u64,
    /// Lowest committed watermark among reachable nodes.
    pub min_committed: u64,
    /// Highest − lowest round among reachable nodes.
    pub round_skew: u64,
    /// Hash comparison at the max common applied count, when at least
    /// two reachable nodes have published.
    pub agreement: Option<HashAgreement>,
    /// Alerts the watchdog raised on this poll.
    pub alerts: Vec<Alert>,
}

impl ClusterReport {
    /// The full report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let nodes: Vec<String> = self.nodes.iter().map(NodeSample::to_json).collect();
        let alerts: Vec<String> = self.alerts.iter().map(Alert::to_json).collect();
        let agreement = self
            .agreement
            .as_ref()
            .map_or_else(|| "null".to_string(), HashAgreement::to_json);
        format!(
            "{{\"poll\":{},\"reachable\":{},\"max_committed\":{},\"min_committed\":{},\
             \"round_skew\":{},\"agreement\":{agreement},\"nodes\":[{}],\"alerts\":[{}]}}",
            self.poll,
            self.nodes.iter().filter(|s| s.reachable).count(),
            self.max_committed,
            self.min_committed,
            self.round_skew,
            nodes.join(","),
            alerts.join(","),
        )
    }
}

// --- tiny scanners over the admin port's fixed JSON shapes ---

/// Extracts the number right after `"key":` (integers only — the admin
/// port never emits signed or exponent forms for these keys).
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let digits: String = json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts the (possibly fractional) number right after `"key":`.
fn json_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let num: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// Extracts every `{"applied":N,"state_hash":"H"}` pair inside the
/// `hash` response's `recent` array, ascending by applied count.
fn parse_hash_pairs(json: &str) -> Vec<(u64, String)> {
    let Some(recent_at) = json.find("\"recent\":[") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = &json[recent_at..];
    while let Some(at) = rest.find("\"applied\":") {
        rest = &rest[at + "\"applied\":".len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let Ok(applied) = digits.parse::<u64>() else {
            break;
        };
        let Some(h_at) = rest.find("\"state_hash\":\"") else {
            break;
        };
        rest = &rest[h_at + "\"state_hash\":\"".len()..];
        let Some(end) = rest.find('"') else { break };
        out.push((applied, rest[..end].to_string()));
        rest = &rest[end..];
    }
    out.sort_by_key(|(applied, _)| *applied);
    out.dedup_by_key(|(applied, _)| *applied);
    out
}

/// Extracts every peer row `(peer, lag_rounds, written_off)` from the
/// `status` response's `peers` array.
fn parse_peer_lags(json: &str) -> Vec<(usize, u64, bool)> {
    let Some(peers_at) = json.find("\"peers\":[") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = &json[peers_at..];
    while let Some(at) = rest.find("\"peer\":") {
        rest = &rest[at..];
        let Some(peer) = json_u64(rest, "peer") else {
            break;
        };
        let lag = json_u64(rest, "lag_rounds").unwrap_or(0);
        let off = rest
            .find("\"written_off\":")
            .is_some_and(|w| rest[w + "\"written_off\":".len()..].starts_with("true"));
        out.push((usize::try_from(peer).unwrap_or(usize::MAX), lag, off));
        rest = &rest["\"peer\":".len()..];
    }
    out
}

/// One admin query: connect (with deadline), send the command line,
/// read to EOF. Errors and empty answers both mean "unreachable".
fn query(addr: SocketAddr, cmd: &str, cfg: &MonConfig) -> std::io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;
    let mut stream = stream;
    stream.write_all(cmd.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    if out.trim().is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty admin answer",
        ));
    }
    Ok(out)
}

// --- cross-node trace pull: clock alignment + stitching ---

/// Clock round-trips per node when the caller does not say.
pub const CLOCK_SAMPLES_DEFAULT: u32 = 8;

/// Span-window (events) per node when the caller does not say.
pub const TRACE_PULL_WINDOW_DEFAULT: usize = 1 << 16;

/// Estimates one node's recorder-clock offset against the monitor's
/// `base` instant, NTP-style: `samples` request/response round-trips of
/// the admin `clock` command, offset = local midpoint − remote reading,
/// and the minimum-RTT sample wins (it bounds the error tightest). The
/// returned uncertainty is half that winning RTT — the mapped instant
/// genuinely is only known to ±rtt/2. A mid-estimate epoch change
/// (node restart) discards the samples taken under the old epoch.
pub fn estimate_clock(
    addr: SocketAddr,
    base: std::time::Instant,
    samples: u32,
    cfg: &MonConfig,
) -> std::io::Result<ClockEstimate> {
    let mut best: Option<(u64, i64)> = None; // (rtt, offset)
    let mut epoch: Option<u64> = None;
    let mut used: u32 = 0;
    for _ in 0..samples.max(1) {
        let t0 = base.elapsed().as_micros() as i64;
        let resp = query(addr, "clock", cfg)?;
        let t1 = base.elapsed().as_micros() as i64;
        let (Some(remote), Some(eid)) = (json_u64(&resp, "now_us"), json_u64(&resp, "epoch_id"))
        else {
            continue;
        };
        if epoch.is_some_and(|e| e != eid) {
            // The node restarted under us: everything sampled against
            // the old recorder is void.
            best = None;
            used = 0;
        }
        epoch = Some(eid);
        used += 1;
        let rtt = (t1 - t0).max(0) as u64;
        let offset = (t0 + t1) / 2 - remote as i64;
        if best.is_none_or(|(r, _)| rtt < r) {
            best = Some((rtt, offset));
        }
    }
    let ((rtt, offset), epoch_id) = best.zip(epoch).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no usable clock sample")
    })?;
    Ok(ClockEstimate {
        offset_us: offset,
        uncertainty_us: rtt / 2,
        epoch_id,
        samples: used,
    })
}

/// Parses one `spans` JSON line back into a [`SlotSpan`] (the admin
/// port's own output shape — every field an optional unsigned count).
fn parse_span_line(line: &str) -> Option<SlotSpan> {
    let slot = json_u64(line, "slot")?;
    let f = |key: &str| json_u64(line, key);
    Some(SlotSpan {
        slot,
        decided_ts_us: f("decided_ts_us"),
        decide_round: f("decide_round"),
        proposed_ts_us: f("proposed_ts_us"),
        first_heard_ts_us: f("first_heard_ts_us"),
        first_heard_peer: f("first_heard_peer"),
        quorum_ts_us: f("quorum_ts_us"),
        quorum_peer: f("quorum_peer"),
        order_us: f("order_us"),
        apply_wait_us: f("apply_wait_us"),
        apply_svc_us: f("apply_svc_us"),
        persist_wait_us: f("persist_wait_us"),
        persist_svc_us: f("persist_svc_us"),
        ack_us: f("ack_us"),
        ack_gate_us: f("ack_gate_us"),
    })
}

/// One node's share of a trace pull: whether it answered, the clock
/// estimate it got, and how many spans it contributed.
#[derive(Clone, Debug)]
pub struct NodePull {
    /// Index into the pull's node list.
    pub node: usize,
    /// The admin address pulled.
    pub addr: String,
    /// Whether clock estimation *and* the span pull both answered.
    pub reachable: bool,
    /// The clock mapping used for this node's spans.
    pub clock: Option<ClockEstimate>,
    /// Spans this node contributed to the stitch.
    pub span_count: usize,
}

impl NodePull {
    /// One JSON object — offset and ± uncertainty always spelled out.
    #[must_use]
    pub fn to_json(&self) -> String {
        let clock = self.clock.as_ref().map_or_else(
            || "null".to_string(),
            |c| {
                format!(
                    "{{\"offset_us\":{},\"uncertainty_us\":{},\"epoch_id\":{},\"samples\":{}}}",
                    c.offset_us, c.uncertainty_us, c.epoch_id, c.samples
                )
            },
        );
        format!(
            "{{\"node\":{},\"addr\":\"{}\",\"reachable\":{},\"clock\":{clock},\
             \"span_count\":{}}}",
            self.node, self.addr, self.reachable, self.span_count,
        )
    }
}

/// A completed cross-node trace pull: per-node pull records plus the
/// stitched cluster spans.
#[derive(Clone, Debug)]
pub struct TracePull {
    /// Per-node pull outcomes, in node-list order.
    pub nodes: Vec<NodePull>,
    /// The stitched autopsy, ordered by slot.
    pub spans: Vec<ClusterSlotSpan>,
}

impl TracePull {
    /// Decide-skew values across stitched slots (µs), unsorted.
    #[must_use]
    pub fn decide_skews(&self) -> Vec<u64> {
        self.spans.iter().filter_map(|s| s.decide_skew_us).collect()
    }

    /// Per-slot worst quorum waits across stitched slots (µs).
    #[must_use]
    pub fn quorum_waits(&self) -> Vec<u64> {
        self.spans
            .iter()
            .filter_map(|s| s.quorum_wait_max_us)
            .collect()
    }

    /// The pull summary as one JSON object: stitched-slot count,
    /// per-node clock offsets (± uncertainty, never dropped), and
    /// decide-skew / quorum-wait / fan-out percentiles.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let nodes: Vec<String> = self.nodes.iter().map(NodePull::to_json).collect();
        let pct = |mut v: Vec<u64>, p: f64| {
            gencon_trace::percentile_us(&mut v, p)
                .map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        let fanouts: Vec<u64> = self.spans.iter().filter_map(|s| s.fanout_us).collect();
        format!(
            "{{\"stitched_slots\":{},\"nodes_reached\":{},\
             \"decide_skew_p50_us\":{},\"decide_skew_p99_us\":{},\
             \"quorum_wait_p50_us\":{},\"quorum_wait_p99_us\":{},\
             \"fanout_p50_us\":{},\"fanout_p99_us\":{},\"clock\":[{}]}}",
            self.spans.len(),
            self.nodes.iter().filter(|n| n.reachable).count(),
            pct(self.decide_skews(), 50.0),
            pct(self.decide_skews(), 99.0),
            pct(self.quorum_waits(), 50.0),
            pct(self.quorum_waits(), 99.0),
            pct(fanouts.clone(), 50.0),
            pct(fanouts, 99.0),
            nodes.join(","),
        )
    }
}

/// Pulls `clock` + `spans` from every node, maps each node's spans
/// through its clock estimate, and stitches them into cluster slot
/// spans. Unreachable nodes are recorded as such and simply missing
/// from the stitch — the autopsy degrades, it does not fail.
#[must_use]
pub fn trace_pull(
    addrs: &[SocketAddr],
    window: usize,
    clock_samples: u32,
    cfg: &MonConfig,
) -> TracePull {
    let base = std::time::Instant::now();
    let mut nodes = Vec::with_capacity(addrs.len());
    let mut inputs: Vec<NodeSpans> = Vec::with_capacity(addrs.len());
    for (i, &addr) in addrs.iter().enumerate() {
        let mut pull = NodePull {
            node: i,
            addr: addr.to_string(),
            reachable: false,
            clock: None,
            span_count: 0,
        };
        if let Ok(clock) = estimate_clock(addr, base, clock_samples, cfg) {
            pull.clock = Some(clock);
            if let Ok(body) = query(addr, &format!("spans {window}"), cfg) {
                let spans: Vec<SlotSpan> = body.lines().filter_map(parse_span_line).collect();
                pull.reachable = true;
                pull.span_count = spans.len();
                inputs.push(NodeSpans {
                    node: i as u64,
                    clock,
                    spans,
                });
            }
        }
        nodes.push(pull);
    }
    TracePull {
        nodes,
        spans: stitch_spans(&inputs),
    }
}

/// Parses one `cmds` JSON line back into a [`CmdSpan`] (the admin
/// port's own output shape).
fn parse_cmd_span_line(line: &str) -> Option<CmdSpan> {
    let cmd = json_u64(line, "cmd")?;
    let hops = json_u64(line, "relay_hops")?;
    let f = |key: &str| json_u64(line, key);
    Some(CmdSpan {
        cmd,
        slot: f("slot"),
        submitted_ts_us: f("submitted_ts_us"),
        queued_ts_us: f("queued_ts_us"),
        batched_ts_us: f("batched_ts_us"),
        acked_ts_us: f("acked_ts_us"),
        relayed_ts_us: f("relayed_ts_us"),
        merged_ts_us: f("merged_ts_us"),
        merged_from: f("merged_from"),
        queue_wait_us: f("queue_wait_us"),
        batch_wait_us: f("batch_wait_us"),
        order_us: f("order_us"),
        persist_gate_wait_us: f("persist_gate_wait_us"),
        ack_us: f("ack_us"),
        e2e_us: f("e2e_us"),
        relay_hops: u32::try_from(hops).unwrap_or(u32::MAX),
        bounces: u32::try_from(f("bounces").unwrap_or(0)).unwrap_or(u32::MAX),
    })
}

/// Parses one `slowest` JSON line back into a [`CmdExemplar`].
fn parse_exemplar_line(line: &str) -> Option<CmdExemplar> {
    Some(CmdExemplar {
        cmd: json_u64(line, "cmd")?,
        e2e_us: json_u64(line, "e2e_us")?,
        slot: json_u64(line, "slot")?,
        submitted_ts_us: json_u64(line, "submitted_ts_us")?,
        relay_hops: u32::try_from(json_u64(line, "relay_hops")?).unwrap_or(u32::MAX),
    })
}

/// Rebuilds the SLO counters from a multi-line `history` answer — just
/// enough of each snapshot for [`gencon_metrics::slo_burn`].
fn parse_slo_history(body: &str) -> Vec<HistorySnapshot> {
    body.lines()
        .filter_map(|line| {
            let ts_ms = json_u64(line, "ts_ms")?;
            let good = json_u64(line, SLO_GOOD).unwrap_or(0);
            let bad = json_u64(line, SLO_BAD).unwrap_or(0);
            Some(HistorySnapshot {
                ts_ms,
                counters: vec![(SLO_GOOD.to_string(), good), (SLO_BAD.to_string(), bad)],
                gauges: Vec::new(),
            })
        })
        .collect()
}

/// A completed cross-node *command* pull: per-node pull records, the
/// relay-hop-stitched cluster command spans, and the merged slowest
/// exemplars.
#[derive(Clone, Debug)]
pub struct CmdPull {
    /// Per-node pull outcomes (`span_count` counts command spans).
    pub nodes: Vec<NodePull>,
    /// The stitched commands, hops mapped across nodes.
    pub spans: Vec<ClusterCmdSpan>,
    /// `(node, exemplar)` rows merged cluster-wide, slowest first.
    pub slowest: Vec<(usize, CmdExemplar)>,
}

impl CmdPull {
    /// e2e values (µs) of stitched commands, relayed (`hops > 0`) or
    /// coordinator-path only.
    #[must_use]
    pub fn e2es(&self, relayed: bool) -> Vec<u64> {
        self.spans
            .iter()
            .filter(|s| s.hops.is_empty() != relayed)
            .filter_map(|s| s.e2e_us)
            .collect()
    }

    /// Stitched relay-hop latencies (µs) across all commands.
    #[must_use]
    pub fn hop_latencies(&self) -> Vec<u64> {
        self.spans
            .iter()
            .flat_map(|s| s.hops.iter().map(|h| h.latency_us))
            .collect()
    }

    /// The pull summary as one JSON object: stitched-command count,
    /// relay-hop count, e2e percentiles split coordinator-path vs
    /// relay-path (the relay penalty, measured), hop latencies with the
    /// worst clock uncertainty spelled out, and the cluster-wide
    /// slowest exemplars.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let nodes: Vec<String> = self.nodes.iter().map(NodePull::to_json).collect();
        let pct = |mut v: Vec<u64>, p: f64| {
            gencon_trace::percentile_us(&mut v, p)
                .map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        let slowest: Vec<String> = self
            .slowest
            .iter()
            .map(|(node, ex)| format!("{{\"node\":{node},{}", &ex.to_json()[1..]))
            .collect();
        let all: Vec<u64> = self.spans.iter().filter_map(|s| s.e2e_us).collect();
        format!(
            "{{\"stitched_cmds\":{},\"nodes_reached\":{},\"relay_hops\":{},\
             \"e2e_p50_us\":{},\"e2e_p99_us\":{},\
             \"local_e2e_p50_us\":{},\"local_e2e_p99_us\":{},\
             \"relay_e2e_p50_us\":{},\"relay_e2e_p99_us\":{},\
             \"hop_latency_p50_us\":{},\"hop_latency_p99_us\":{},\
             \"max_uncertainty_us\":{},\"slowest\":[{}],\"clock\":[{}]}}",
            self.spans.len(),
            self.nodes.iter().filter(|n| n.reachable).count(),
            self.hop_latencies().len(),
            pct(all.clone(), 50.0),
            pct(all, 99.0),
            pct(self.e2es(false), 50.0),
            pct(self.e2es(false), 99.0),
            pct(self.e2es(true), 50.0),
            pct(self.e2es(true), 99.0),
            pct(self.hop_latencies(), 50.0),
            pct(self.hop_latencies(), 99.0),
            self.spans
                .iter()
                .map(|s| s.uncertainty_us)
                .max()
                .unwrap_or(0),
            slowest.join(","),
            nodes.join(","),
        )
    }
}

/// Pulls `clock` + `cmds` + `slowest` from every node, maps each
/// node's command spans through its clock estimate, and stitches relay
/// hops across nodes. Unreachable nodes degrade the stitch, they do
/// not fail it — exactly like [`trace_pull`].
#[must_use]
pub fn trace_pull_cmds(
    addrs: &[SocketAddr],
    window: usize,
    clock_samples: u32,
    cfg: &MonConfig,
) -> CmdPull {
    let base = std::time::Instant::now();
    let mut nodes = Vec::with_capacity(addrs.len());
    let mut inputs: Vec<NodeCmdSpans> = Vec::with_capacity(addrs.len());
    let mut slowest: Vec<(usize, CmdExemplar)> = Vec::new();
    for (i, &addr) in addrs.iter().enumerate() {
        let mut pull = NodePull {
            node: i,
            addr: addr.to_string(),
            reachable: false,
            clock: None,
            span_count: 0,
        };
        if let Ok(clock) = estimate_clock(addr, base, clock_samples, cfg) {
            pull.clock = Some(clock);
            if let Ok(body) = query(addr, &format!("cmds {window}"), cfg) {
                let spans: Vec<CmdSpan> = body.lines().filter_map(parse_cmd_span_line).collect();
                pull.reachable = true;
                pull.span_count = spans.len();
                inputs.push(NodeCmdSpans {
                    node: i as u64,
                    clock,
                    spans,
                });
            }
            if let Ok(body) = query(addr, "slowest", cfg) {
                slowest.extend(body.lines().filter_map(parse_exemplar_line).map(|e| (i, e)));
            }
        }
        nodes.push(pull);
    }
    slowest.sort_by(|(_, a), (_, b)| b.e2e_us.cmp(&a.e2e_us).then(a.cmd.cmp(&b.cmd)));
    CmdPull {
        nodes,
        spans: stitch_cmd_spans(&inputs),
        slowest,
    }
}

/// Per-node watchdog bookkeeping carried across polls.
#[derive(Clone, Debug, Default)]
struct NodeTrack {
    was_unreachable: bool,
    was_straggler: bool,
    was_burning: bool,
    last_committed: Option<u64>,
    last_gate: Option<u64>,
    gate_static_polls: usize,
}

/// The polling aggregator + watchdog (the `gencon-mon` engine).
pub struct Monitor {
    addrs: Vec<SocketAddr>,
    cfg: MonConfig,
    poll: u64,
    tracks: Vec<NodeTrack>,
    /// Max committed seen on the previous poll, for stall detection.
    last_max_committed: Option<u64>,
    /// Consecutive polls without commit progress anywhere.
    stalled_polls: usize,
    /// Applied counts whose divergence has already been reported.
    reported_divergence: HashSet<u64>,
}

impl Monitor {
    /// A monitor over `addrs` (one admin address per node, in node-id
    /// order).
    #[must_use]
    pub fn new(addrs: Vec<SocketAddr>, cfg: MonConfig) -> Self {
        let tracks = vec![NodeTrack::default(); addrs.len()];
        Monitor {
            addrs,
            cfg,
            poll: 0,
            tracks,
            last_max_committed: None,
            stalled_polls: 0,
            reported_divergence: HashSet::new(),
        }
    }

    /// The configured poll interval (for the binary's sleep loop).
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.cfg.interval
    }

    /// Samples one node: `status` decides reachability; `rates` and
    /// `hash` enrich the sample when they answer.
    fn sample(&self, node: usize) -> NodeSample {
        let addr = self.addrs[node];
        let mut s = NodeSample {
            node,
            addr: addr.to_string(),
            ..NodeSample::default()
        };
        let Ok(status) = query(addr, "status", &self.cfg) else {
            return s;
        };
        let Some(round) = json_u64(&status, "round") else {
            return s; // answered, but not with a status object
        };
        s.reachable = true;
        s.round = round;
        s.committed = json_u64(&status, "committed_slots").unwrap_or(0);
        s.applied = json_u64(&status, "applied").unwrap_or(0);
        s.persist_gate = json_u64(&status, "persist_gate").unwrap_or(0);
        s.peer_lags = parse_peer_lags(&status);
        if let Ok(rates) = query(addr, "rates", &self.cfg) {
            s.cmds_per_sec = json_f64(&rates, "cmds_per_sec").unwrap_or(0.0);
            s.fsyncs_per_sec = json_f64(&rates, "fsyncs_per_sec").unwrap_or(0.0);
            s.rounds_per_sec = json_f64(&rates, "rounds_per_sec").unwrap_or(0.0);
        }
        if let Ok(hash) = query(addr, "hash", &self.cfg) {
            s.hashes = parse_hash_pairs(&hash);
        }
        let long = self.cfg.slo_window_long.max(self.cfg.slo_window_short);
        if long >= 2 {
            if let Ok(history) = query(addr, &format!("history {long}"), &self.cfg) {
                let snaps = parse_slo_history(&history);
                let tail = |n: usize| &snaps[snaps.len().saturating_sub(n)..];
                s.slo_burn_short = slo_burn(tail(self.cfg.slo_window_short), SLO_ERROR_BUDGET_P99);
                s.slo_burn_long = slo_burn(tail(long), SLO_ERROR_BUDGET_P99);
            }
        }
        s
    }

    /// Polls every node once, runs the watchdog, and returns the
    /// assembled report (alerts included).
    pub fn poll_once(&mut self) -> ClusterReport {
        self.poll += 1;
        let poll = self.poll;
        let samples: Vec<NodeSample> = (0..self.addrs.len()).map(|i| self.sample(i)).collect();
        let mut alerts = Vec::new();

        let reachable: Vec<&NodeSample> = samples.iter().filter(|s| s.reachable).collect();
        let max_committed = reachable.iter().map(|s| s.committed).max().unwrap_or(0);
        let min_committed = reachable.iter().map(|s| s.committed).min().unwrap_or(0);
        let max_round = reachable.iter().map(|s| s.round).max().unwrap_or(0);
        let min_round = reachable.iter().map(|s| s.round).min().unwrap_or(0);

        // Unreachable / recovered transitions.
        for s in &samples {
            let track = &mut self.tracks[s.node];
            if s.reachable {
                let lagging = max_committed.saturating_sub(s.committed) > self.cfg.straggler_slots;
                if (track.was_unreachable || track.was_straggler) && !lagging {
                    alerts.push(Alert {
                        kind: AlertKind::StragglerRecovered,
                        poll,
                        node: Some(s.node),
                        applied: None,
                        detail: format!(
                            "node {} back within bounds (committed {} of max {max_committed})",
                            s.node, s.committed
                        ),
                    });
                    track.was_straggler = false;
                }
                track.was_unreachable = false;
            } else if !track.was_unreachable {
                track.was_unreachable = true;
                alerts.push(Alert {
                    kind: AlertKind::Unreachable,
                    poll,
                    node: Some(s.node),
                    applied: None,
                    detail: format!("admin endpoint {} not answering", s.addr),
                });
            }
        }

        // Stragglers: committed watermark trailing, or peer-observed lag.
        for s in &reachable {
            let mut why = None;
            if max_committed.saturating_sub(s.committed) > self.cfg.straggler_slots {
                why = Some(format!(
                    "committed {} trails max {max_committed} by more than {}",
                    s.committed, self.cfg.straggler_slots
                ));
            }
            if why.is_none() {
                for other in &reachable {
                    if let Some((_, lag, off)) = other.peer_lags.iter().find(|(peer, lag, off)| {
                        *peer == s.node && (*off || *lag > self.cfg.straggler_rounds)
                    }) {
                        why = Some(format!(
                            "node {} sees it {lag} rounds behind{}",
                            other.node,
                            if *off { " (written off)" } else { "" }
                        ));
                        break;
                    }
                }
            }
            let track = &mut self.tracks[s.node];
            if let Some(why) = why {
                if !track.was_straggler {
                    track.was_straggler = true;
                    alerts.push(Alert {
                        kind: AlertKind::Straggler,
                        poll,
                        node: Some(s.node),
                        applied: None,
                        detail: why,
                    });
                }
            }
        }

        // Commit-progress stall across the whole cluster.
        if reachable.is_empty() {
            self.stalled_polls = 0;
        } else if self.last_max_committed == Some(max_committed) {
            self.stalled_polls += 1;
            if self.cfg.stall_polls > 0 && self.stalled_polls.is_multiple_of(self.cfg.stall_polls) {
                alerts.push(Alert {
                    kind: AlertKind::CommitStall,
                    poll,
                    node: None,
                    applied: None,
                    detail: format!(
                        "no commit progress for {} polls (max committed stuck at {max_committed})",
                        self.stalled_polls
                    ),
                });
            }
        } else {
            self.stalled_polls = 0;
        }
        if !reachable.is_empty() {
            self.last_max_committed = Some(max_committed);
        }

        // Persist-gate wedge: gate still while this node's commits move.
        for s in &reachable {
            let track = &mut self.tracks[s.node];
            let committed_advanced = track.last_committed.is_some_and(|c| s.committed > c);
            let gate_static = track.last_gate == Some(s.persist_gate) && s.persist_gate > 0;
            if committed_advanced && gate_static {
                track.gate_static_polls += 1;
                if self.cfg.stall_polls > 0
                    && track.gate_static_polls.is_multiple_of(self.cfg.stall_polls)
                {
                    alerts.push(Alert {
                        kind: AlertKind::GateWedge,
                        poll,
                        node: Some(s.node),
                        applied: None,
                        detail: format!(
                            "persist gate stuck at {} while committed advanced to {} \
                             ({} polls)",
                            s.persist_gate, s.committed, track.gate_static_polls
                        ),
                    });
                }
            } else {
                track.gate_static_polls = 0;
            }
            track.last_committed = Some(s.committed);
            track.last_gate = Some(s.persist_gate);
        }

        // SLO burn: the error budget draining too fast in both the
        // short and the long window (transition-gated — a sustained
        // breach fires once, recovery re-arms it).
        for s in &reachable {
            let track = &mut self.tracks[s.node];
            let windows = s.slo_burn_short.as_ref().zip(s.slo_burn_long.as_ref());
            let burning = windows.is_some_and(|(sh, lo)| {
                sh.burn > self.cfg.slo_burn_max && lo.burn > self.cfg.slo_burn_max
            });
            if burning {
                if !track.was_burning {
                    track.was_burning = true;
                    let (sh, lo) = windows.expect("burning implies both windows");
                    alerts.push(Alert {
                        kind: AlertKind::SloBurn,
                        poll,
                        node: Some(s.node),
                        applied: None,
                        detail: format!(
                            "SLO burn {:.2}x over {}ms and {:.2}x over {}ms (threshold {:.2}x)",
                            sh.burn, sh.window_ms, lo.burn, lo.window_ms, self.cfg.slo_burn_max
                        ),
                    });
                }
            } else {
                track.was_burning = false;
            }
        }

        // Divergence: any applied count where two nodes' hashes differ.
        let mut by_applied: Vec<(u64, Vec<(usize, &str)>)> = Vec::new();
        for s in &reachable {
            for (applied, hash) in &s.hashes {
                match by_applied.iter_mut().find(|(a, _)| a == applied) {
                    Some((_, rows)) => rows.push((s.node, hash)),
                    None => by_applied.push((*applied, vec![(s.node, hash)])),
                }
            }
        }
        by_applied.sort_by_key(|(applied, _)| *applied);
        for (applied, rows) in &by_applied {
            let first = rows[0].1;
            if rows.iter().any(|(_, h)| *h != first) && self.reported_divergence.insert(*applied) {
                let evidence: Vec<String> = rows
                    .iter()
                    .map(|(node, hash)| format!("node {node}={hash}"))
                    .collect();
                alerts.push(Alert {
                    kind: AlertKind::Divergence,
                    poll,
                    node: None,
                    applied: Some(*applied),
                    detail: format!(
                        "state hashes disagree at applied {applied}: {}",
                        evidence.join(", ")
                    ),
                });
            }
        }

        // Agreement at the max applied count common to every reachable
        // publishing node (need at least two to compare).
        let publishers: Vec<&&NodeSample> =
            reachable.iter().filter(|s| !s.hashes.is_empty()).collect();
        let agreement = (publishers.len() >= 2)
            .then(|| {
                let mut common: Option<HashSet<u64>> = None;
                for s in &publishers {
                    let counts: HashSet<u64> = s.hashes.iter().map(|(a, _)| *a).collect();
                    common = Some(match common {
                        None => counts,
                        Some(c) => c.intersection(&counts).copied().collect(),
                    });
                }
                let at = common.unwrap_or_default().into_iter().max()?;
                let hashes: Vec<(usize, String)> = publishers
                    .iter()
                    .filter_map(|s| {
                        s.hashes
                            .iter()
                            .find(|(a, _)| *a == at)
                            .map(|(_, h)| (s.node, h.clone()))
                    })
                    .collect();
                let agreed = hashes.windows(2).all(|w| w[0].1 == w[1].1);
                Some(HashAgreement {
                    applied: at,
                    agreed,
                    hashes,
                })
            })
            .flatten();

        ClusterReport {
            poll,
            nodes: samples,
            max_committed,
            min_committed,
            round_skew: max_round.saturating_sub(min_round),
            agreement,
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::{spawn_admin, AdminState, ADMIN_IO_TIMEOUT};
    use gencon_metrics::{HistoryRing, Registry};
    use gencon_trace::{FlightRecorder, HashCell, PeerTable};

    fn fake_node(node_id: usize) -> (SocketAddr, AdminState) {
        let state = AdminState {
            node_id,
            registry: Registry::new(),
            recorder: FlightRecorder::new(64),
            peers: PeerTable::new(2),
            history: HistoryRing::new(8),
            hashes: HashCell::new(),
            slow_cmds: gencon_trace::SlowCmdRing::new(),
            io_timeout: ADMIN_IO_TIMEOUT,
        };
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state.clone()).unwrap();
        (addr, state)
    }

    fn quick_cfg() -> MonConfig {
        MonConfig {
            interval: Duration::from_millis(10),
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            stall_polls: 2,
            straggler_slots: 100,
            straggler_rounds: 50,
            slo_burn_max: 2.0,
            slo_window_short: 2,
            slo_window_long: 4,
        }
    }

    #[test]
    fn aggregates_two_nodes_and_flags_divergence() {
        let (addr_a, a) = fake_node(0);
        let (addr_b, b) = fake_node(1);
        for (state, committed) in [(&a, 900u64), (&b, 870u64)] {
            state.registry.gauge("order.round").set(30);
            state.registry.gauge("order.committed_slots").set(committed);
            state.registry.gauge("order.applied").set(committed);
            let rounds = state.registry.counter("order.rounds");
            rounds.add(100);
            state.history.sample_at(&state.registry, 1_000);
            rounds.add(50);
            state.history.sample_at(&state.registry, 2_000);
        }
        // Agree at 512, diverge at 768 — the audit record must carry
        // both hashes.
        a.hashes.publish(512, [0x11; 32]);
        b.hashes.publish(512, [0x11; 32]);
        a.hashes.publish(768, [0xaa; 32]);
        b.hashes.publish(768, [0xbb; 32]);

        let mut mon = Monitor::new(vec![addr_a, addr_b], quick_cfg());
        let report = mon.poll_once();

        assert_eq!(report.nodes.len(), 2);
        assert!(report.nodes.iter().all(|s| s.reachable), "{report:?}");
        assert_eq!(report.max_committed, 900);
        assert_eq!(report.min_committed, 870);
        assert!(
            (report.nodes[0].rounds_per_sec - 50.0).abs() < 0.01,
            "{report:?}"
        );

        let divergence: Vec<&Alert> = report
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::Divergence)
            .collect();
        assert_eq!(divergence.len(), 1, "{report:?}");
        assert_eq!(divergence[0].applied, Some(768));
        assert!(divergence[0].detail.contains(&"aa".repeat(32)));
        assert!(divergence[0].detail.contains(&"bb".repeat(32)));

        // Agreement compares at the max COMMON count (768, where they
        // disagree) — and the JSON carries the evidence.
        let agreement = report.agreement.as_ref().expect("two publishers");
        assert_eq!(agreement.applied, 768);
        assert!(!agreement.agreed);
        let json = report.to_json();
        assert!(json.contains("\"alert\":\"divergence\""), "{json}");
        assert!(json.contains("\"agreed\":false"), "{json}");

        // The same divergence is not re-reported on the next poll.
        let again = mon.poll_once();
        assert!(
            again.alerts.iter().all(|a| a.kind != AlertKind::Divergence),
            "{again:?}"
        );
    }

    #[test]
    fn agreement_holds_when_hashes_match() {
        let (addr_a, a) = fake_node(0);
        let (addr_b, b) = fake_node(1);
        for state in [&a, &b] {
            state.registry.gauge("order.round").set(10);
            state.registry.gauge("order.committed_slots").set(600);
            state.hashes.publish(512, [0x42; 32]);
        }
        // One node is ahead by a publication; agreement still lands on
        // the common count.
        a.hashes.publish(1024, [0x43; 32]);

        let mut mon = Monitor::new(vec![addr_a, addr_b], quick_cfg());
        let report = mon.poll_once();
        let agreement = report.agreement.as_ref().expect("two publishers");
        assert_eq!(agreement.applied, 512);
        assert!(agreement.agreed, "{report:?}");
        assert!(report.alerts.is_empty(), "{report:?}");
    }

    #[test]
    fn unreachable_fires_once_on_transition() {
        let (addr_a, a) = fake_node(0);
        a.registry.gauge("order.committed_slots").set(50);
        // A port nobody is listening on: bind, learn the port, drop.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut mon = Monitor::new(vec![addr_a, dead], quick_cfg());
        let first = mon.poll_once();
        let unreachable: Vec<&Alert> = first
            .alerts
            .iter()
            .filter(|al| al.kind == AlertKind::Unreachable)
            .collect();
        assert_eq!(unreachable.len(), 1, "{first:?}");
        assert_eq!(unreachable[0].node, Some(1));
        assert!(!first.nodes[1].reachable);

        let second = mon.poll_once();
        assert!(
            second
                .alerts
                .iter()
                .all(|al| al.kind != AlertKind::Unreachable),
            "transition alert repeated: {second:?}"
        );
    }

    #[test]
    fn stall_fires_after_k_static_polls() {
        let (addr, state) = fake_node(0);
        state.registry.gauge("order.committed_slots").set(400);
        let mut mon = Monitor::new(vec![addr], quick_cfg());
        // Poll 1 records the watermark; polls 2 and 3 see it static —
        // stall_polls = 2 fires on poll 3.
        assert!(mon.poll_once().alerts.is_empty());
        assert!(mon.poll_once().alerts.is_empty());
        let third = mon.poll_once();
        assert!(
            third
                .alerts
                .iter()
                .any(|a| a.kind == AlertKind::CommitStall),
            "{third:?}"
        );
        // Progress clears the stall counter.
        state.registry.gauge("order.committed_slots").set(500);
        assert!(mon.poll_once().alerts.is_empty());
    }

    #[test]
    fn straggler_then_recovery() {
        let (addr_a, a) = fake_node(0);
        let (addr_b, b) = fake_node(1);
        a.registry.gauge("order.committed_slots").set(1_000);
        b.registry.gauge("order.committed_slots").set(200);
        let mut mon = Monitor::new(vec![addr_a, addr_b], quick_cfg());
        let first = mon.poll_once();
        let straggler: Vec<&Alert> = first
            .alerts
            .iter()
            .filter(|al| al.kind == AlertKind::Straggler)
            .collect();
        assert_eq!(straggler.len(), 1, "{first:?}");
        assert_eq!(straggler[0].node, Some(1));

        // Catching up produces exactly one recovery alert.
        b.registry.gauge("order.committed_slots").set(980);
        a.registry.gauge("order.committed_slots").set(1_010);
        let second = mon.poll_once();
        assert!(
            second
                .alerts
                .iter()
                .any(|al| al.kind == AlertKind::StragglerRecovered && al.node == Some(1)),
            "{second:?}"
        );
    }

    #[test]
    fn clock_estimate_is_tight_on_loopback() {
        let (addr, state) = fake_node(0);
        let base = std::time::Instant::now();
        let est = estimate_clock(addr, base, 8, &quick_cfg()).unwrap();
        assert_eq!(est.epoch_id, state.recorder.epoch_id());
        assert_eq!(est.samples, 8);
        // Loopback round-trips are well under 100ms, so the offset must
        // place the recorder's birth (node_ts 0) within 100ms of the
        // monitor base, and the uncertainty must reflect a real RTT.
        assert!(est.map(0).abs() < 100_000, "offset {} µs", est.offset_us);
        assert!(est.uncertainty_us < 100_000, "{est:?}");
        // Causality survives the mapping: later node readings map later.
        assert!(est.map(5_000) > est.map(0));
    }

    #[test]
    fn trace_pull_stitches_across_fake_nodes() {
        let (addr_a, a) = fake_node(0);
        let (addr_b, b) = fake_node(1);
        use gencon_trace::{EventKind, Stage};
        for state in [&a, &b] {
            let rec = &state.recorder;
            // Slot 3 decided in round 7 on both nodes, with quorum
            // telemetry; recorder timestamps are real (now_us-based), so
            // the estimated offsets genuinely map them.
            rec.record(Stage::Order, EventKind::Proposed, 3, 7);
            rec.record(Stage::Order, EventKind::HeardFrom, 7, 1);
            rec.record(Stage::Order, EventKind::QuorumReached, 7, 1);
            rec.record(Stage::Order, EventKind::Decided, 3, 7);
        }
        let cfg = quick_cfg();
        let pull = trace_pull(&[addr_a, addr_b], 1 << 16, 4, &cfg);
        assert!(pull.nodes.iter().all(|n| n.reachable), "{:?}", pull.nodes);
        assert_eq!(pull.spans.len(), 1, "{:?}", pull.spans);
        let s = &pull.spans[0];
        assert_eq!(s.slot, 3);
        assert_eq!(s.nodes.len(), 2);
        assert!(s.decide_skew_us.is_some(), "{s:?}");
        assert!(s.quorum_wait_max_us.is_some(), "{s:?}");
        assert_eq!(s.slowest_voucher, Some(1));
        let summary = pull.summary_json();
        assert!(summary.contains("\"stitched_slots\":1"), "{summary}");
        assert!(summary.contains("\"decide_skew_p50_us\":"), "{summary}");
        assert!(summary.contains("\"uncertainty_us\":"), "{summary}");
        assert!(summary.contains("\"offset_us\":"), "{summary}");
    }

    #[test]
    fn trace_pull_tolerates_a_dead_node() {
        let (addr_a, a) = fake_node(0);
        a.recorder.record(
            gencon_trace::Stage::Order,
            gencon_trace::EventKind::Decided,
            1,
            1,
        );
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let pull = trace_pull(&[addr_a, dead], 1 << 16, 2, &quick_cfg());
        assert!(pull.nodes[0].reachable);
        assert!(!pull.nodes[1].reachable);
        assert!(pull.nodes[1].clock.is_none());
        assert_eq!(pull.spans.len(), 1);
        assert!(pull.nodes[1].to_json().contains("\"clock\":null"));
    }

    #[test]
    fn span_lines_roundtrip_through_the_parser() {
        let span = SlotSpan {
            slot: 42,
            decided_ts_us: Some(9_000),
            decide_round: Some(12),
            proposed_ts_us: Some(8_000),
            first_heard_ts_us: Some(8_200),
            first_heard_peer: Some(2),
            quorum_ts_us: Some(8_700),
            quorum_peer: Some(1),
            order_us: Some(1_000),
            ack_us: Some(1_500),
            ..SlotSpan::default()
        };
        assert_eq!(parse_span_line(&span.to_json()), Some(span));
        assert_eq!(parse_span_line("{\"error\":\"nope\"}"), None);
    }

    #[test]
    fn slo_burn_alert_fires_once_while_sustained() {
        let (addr, state) = fake_node(0);
        state.registry.gauge("order.committed_slots").set(100);
        let good = state.registry.counter(gencon_metrics::SLO_GOOD);
        let bad = state.registry.counter(gencon_metrics::SLO_BAD);
        state.history.sample_at(&state.registry, 1_000);
        // 10% of commands breach the budget: burn 10x against the 1%
        // error budget, far over the 2x threshold, in every window.
        good.add(90);
        bad.add(10);
        state.history.sample_at(&state.registry, 2_000);
        good.add(180);
        bad.add(20);
        state.history.sample_at(&state.registry, 3_000);

        let mut mon = Monitor::new(vec![addr], quick_cfg());
        let first = mon.poll_once();
        let burns: Vec<&Alert> = first
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::SloBurn)
            .collect();
        assert_eq!(burns.len(), 1, "{first:?}");
        assert_eq!(burns[0].node, Some(0));
        assert!(burns[0].detail.contains("10.00x"), "{:?}", burns[0]);
        let sample = &first.nodes[0];
        let short = sample.slo_burn_short.expect("short window");
        assert!((short.burn - 10.0).abs() < 0.01, "{short:?}");
        assert!(sample.to_json().contains("\"slo_burn_short\":{"));

        // Still burning on the next poll: transition-gated, no repeat.
        let second = mon.poll_once();
        assert!(
            second.alerts.iter().all(|a| a.kind != AlertKind::SloBurn),
            "{second:?}"
        );
    }

    #[test]
    fn cmd_pull_stitches_relay_hops_and_merges_slowest() {
        use gencon_trace::{EventKind, Stage};
        let (addr_a, a) = fake_node(0);
        let (addr_b, b) = fake_node(1);
        // Command 7 submitted on node 0, relayed, merged on node 1
        // (detail = sender 0), decided into slot 3, acked on node 1.
        a.recorder.record(Stage::Ingest, EventKind::Submitted, 7, 0);
        a.recorder.record(Stage::Ingest, EventKind::CmdQueued, 7, 1);
        a.recorder.record(Stage::Order, EventKind::Relayed, 7, 2);
        b.recorder
            .record(Stage::Order, EventKind::RelayMerged, 7, 0);
        b.recorder.record(Stage::Order, EventKind::Batched, 7, 3);
        b.recorder.record(Stage::Order, EventKind::Proposed, 3, 1);
        b.recorder.record(Stage::Order, EventKind::Decided, 3, 1);
        b.recorder.record(Stage::Ack, EventKind::CmdAcked, 7, 3);
        b.slow_cmds.offer(gencon_trace::CmdExemplar {
            cmd: 7,
            e2e_us: 5_000,
            slot: 3,
            submitted_ts_us: 100,
            relay_hops: 1,
        });
        a.slow_cmds.offer(gencon_trace::CmdExemplar {
            cmd: 9,
            e2e_us: 400,
            slot: 1,
            submitted_ts_us: 50,
            relay_hops: 0,
        });

        let pull = trace_pull_cmds(&[addr_a, addr_b], 1 << 16, 4, &quick_cfg());
        assert!(pull.nodes.iter().all(|n| n.reachable), "{:?}", pull.nodes);
        let span = pull
            .spans
            .iter()
            .find(|s| s.cmd == 7)
            .expect("cmd 7 stitched");
        assert_eq!(span.hops.len(), 1, "{span:?}");
        assert_eq!((span.hops[0].from, span.hops[0].to), (0, 1));
        assert_eq!(span.decided_slot, Some(3));
        assert_eq!(span.origin, Some(0));
        assert_eq!(span.acked_on, Some(1));
        assert!(span.e2e_us.is_some(), "cross-node e2e mapped: {span:?}");

        // Slowest merges cluster-wide, slowest first, node attributed.
        assert_eq!(pull.slowest.len(), 2);
        assert_eq!(
            pull.slowest[0],
            (
                1,
                gencon_trace::CmdExemplar {
                    cmd: 7,
                    e2e_us: 5_000,
                    slot: 3,
                    submitted_ts_us: 100,
                    relay_hops: 1,
                }
            )
        );
        let summary = pull.summary_json();
        assert!(summary.contains("\"relay_hops\":1"), "{summary}");
        assert!(summary.contains("\"relay_e2e_p99_us\":"), "{summary}");
        assert!(summary.contains("\"max_uncertainty_us\":"), "{summary}");
        assert!(
            summary.contains("\"slowest\":[{\"node\":1,\"cmd\":7"),
            "{summary}"
        );
    }

    #[test]
    fn cmd_span_lines_roundtrip_through_the_parser() {
        let span = CmdSpan {
            cmd: 42,
            slot: Some(7),
            submitted_ts_us: Some(1_000),
            acked_ts_us: Some(3_000),
            e2e_us: Some(2_000),
            relay_hops: 2,
            bounces: 1,
            ..CmdSpan::default()
        };
        assert_eq!(parse_cmd_span_line(&span.to_json()), Some(span));
        assert_eq!(parse_cmd_span_line("{\"error\":\"nope\"}"), None);
        let ex = CmdExemplar {
            cmd: 5,
            e2e_us: 900,
            slot: 2,
            submitted_ts_us: 10,
            relay_hops: 0,
        };
        assert_eq!(parse_exemplar_line(&ex.to_json()), Some(ex));
    }

    #[test]
    fn gate_wedge_fires_when_commits_outrun_a_static_gate() {
        let (addr, state) = fake_node(0);
        let committed = state.registry.gauge("order.committed_slots");
        let gate = state.registry.gauge("persist.gate");
        committed.set(100);
        gate.set(64);
        let mut mon = Monitor::new(vec![addr], quick_cfg());
        assert!(mon.poll_once().alerts.is_empty());
        committed.set(200);
        assert!(mon.poll_once().alerts.is_empty(), "one static poll yet");
        committed.set(300);
        let third = mon.poll_once();
        assert!(
            third.alerts.iter().any(|a| a.kind == AlertKind::GateWedge),
            "{third:?}"
        );
    }
}
