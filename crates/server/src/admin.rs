//! The live admin endpoint: a line-oriented TCP debug port.
//!
//! One **command per connection**: the client connects, sends a single
//! line, and reads the full response until the server closes the socket
//! — trivially scriptable from `nc`, python, or the CI smoke jobs with
//! no framing to parse. Commands:
//!
//! | command       | response                                            |
//! |---------------|-----------------------------------------------------|
//! | `metrics`     | the metrics registry as one flat JSON object        |
//! | `status`      | one JSON object: node id, round, watermarks, live   |
//! |               | queue depths and the per-peer lag table             |
//! | `trace [n]`   | the last `n` (default 256) flight-recorder events,  |
//! |               | one JSON line each, oldest first                    |
//! | `spans [n]`   | per-slot latency breakdowns assembled from the last |
//! |               | `n` (default 4096) events, one JSON line per slot   |
//! | `spans a..b`  | the same breakdowns filtered to slots `a ≤ slot < b`|
//! |               | over the whole retained ring — autopsy exactly the  |
//! |               | window an alert named                               |
//! | `clock`       | `{"node_id":…,"now_us":…,"epoch_id":…}` — the       |
//! |               | recorder's clock reading for offset estimation      |
//! | `history [n]` | the last `n` (default 32) timestamped registry      |
//! |               | snapshots from the history ring, one JSON line each |
//! | `rates`       | derived rates (cmds/fsyncs/rounds per second) over  |
//! |               | the newest history interval                         |
//! | `hash`        | the node's published `(applied count, state hash)`  |
//! |               | pairs — the cross-replica divergence audit record   |
//! | `cmds [n]`    | per-command latency breakdowns (submit → ack, relay |
//! |               | legs counted) assembled from the last `n` (default  |
//! |               | 4096) events, one JSON line per command             |
//! | `slowest [n]` | the `n` slowest commands by e2e the exemplar ring   |
//! |               | retains (default: all of them), slowest first       |
//!
//! The endpoint is read-only and runs on its own thread; every answer is
//! assembled from lock-free snapshots (metric handles, the flight
//! recorder's seqlock cells, the peer table's atomics, the hash cell),
//! so querying a node under load never blocks its pipeline. Malformed
//! input gets an `{"error":…}` line listing the commands. Every accepted
//! stream carries a read/write deadline ([`AdminState::io_timeout`]), so
//! a client that connects and never sends a line cannot wedge the port.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gencon_metrics::{HistoryRing, Registry};
use gencon_trace::{
    assemble_cmd_spans, assemble_spans, hash_hex, FlightRecorder, HashCell, PeerTable, SlowCmdRing,
};

/// Default event count for `trace` without an argument.
const TRACE_DEFAULT: usize = 256;

/// Default event window for `spans` without an argument.
const SPANS_DEFAULT: usize = 4096;

/// Default snapshot count for `history` without an argument.
const HISTORY_DEFAULT: usize = 32;

/// Deadline applied to each accepted stream unless overridden.
pub const ADMIN_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The read-only handles the admin endpoint serves from, all shared
/// with the running node.
#[derive(Clone)]
pub struct AdminState {
    /// This node's index into the peer list (reported by `status`).
    pub node_id: usize,
    /// The node's metric registry (`metrics`, and the watermark and
    /// queue-depth gauges `status` reads).
    pub registry: Registry,
    /// The flight recorder backing `trace` and `spans`.
    pub recorder: FlightRecorder,
    /// The per-peer health table backing `status`'s lag table.
    pub peers: PeerTable,
    /// The sampled snapshot ring backing `history` and `rates`.
    pub history: HistoryRing,
    /// The published state-hash pairs backing `hash`.
    pub hashes: HashCell,
    /// The slow-command exemplar ring backing `slowest` (share the
    /// gateway's ring; an unshared fresh ring just answers empty).
    pub slow_cmds: SlowCmdRing,
    /// Read/write deadline set on every accepted stream, so one silent
    /// client cannot freeze the port.
    pub io_timeout: Duration,
}

impl AdminState {
    /// Renders the `status` JSON object.
    #[must_use]
    pub fn status_json(&self) -> String {
        let g = |name: &str| self.registry.gauge_value(name).unwrap_or(0);
        let round = g("order.round");
        let peers: Vec<String> = self
            .peers
            .rows(round)
            .iter()
            .map(gencon_trace::PeerRow::to_json)
            .collect();
        let c = |name: &str| self.registry.counter_value(name).unwrap_or(0);
        format!(
            "{{\"node_id\":{},\"round\":{round},\"committed_slots\":{},\"applied\":{},\
             \"queued\":{},\"persist_gate\":{},\"ingest_queue\":{},\"apply_queue\":{},\
             \"persist_queue\":{},\"bounced_backpressure\":{},\"bounced_redirect\":{},\
             \"trace_events\":{},\"peers\":[{}]}}",
            self.node_id,
            g("order.committed_slots"),
            g("order.applied"),
            g("order.queued"),
            g("persist.gate"),
            g("ingest.queue_depth_now"),
            g("apply.queue_depth_now"),
            g("persist.queue_depth_now"),
            c("ack.bounced_backpressure"),
            c("ack.bounced_redirect"),
            self.recorder.recorded(),
            peers.join(","),
        )
    }

    /// Renders the `hash` JSON object: the newest published pair plus
    /// every retained pair, so a monitor can intersect nodes' lists and
    /// compare at the highest *common* applied count.
    #[must_use]
    pub fn hash_json(&self) -> String {
        let pair_json = |(applied, hash): &(u64, [u8; 32])| {
            format!(
                "{{\"applied\":{applied},\"state_hash\":\"{}\"}}",
                hash_hex(hash)
            )
        };
        let recent = self.hashes.recent();
        let latest = recent.last().map_or_else(|| "null".to_string(), pair_json);
        let pairs: Vec<String> = recent.iter().map(pair_json).collect();
        format!(
            "{{\"node_id\":{},\"published\":{},\"latest\":{latest},\"recent\":[{}]}}",
            self.node_id,
            self.hashes.published(),
            pairs.join(","),
        )
    }

    /// Answers one already-parsed command line.
    fn respond(&self, line: &str) -> String {
        let mut words = line.split_whitespace();
        let cmd = words.next().unwrap_or("");
        let raw_arg = words.next();
        let arg = |d: usize| raw_arg.and_then(|w| w.parse().ok()).unwrap_or(d);
        match cmd {
            "metrics" => self.registry.dump_json(),
            "status" => self.status_json(),
            "trace" => {
                let events = self.recorder.tail(arg(TRACE_DEFAULT));
                let mut out = String::new();
                for ev in &events {
                    out.push_str(&ev.to_json());
                    out.push('\n');
                }
                out
            }
            "spans" => {
                // `spans a..b` filters by slot over the whole retained
                // ring; `spans [n]` windows by event count as before.
                let range = raw_arg.and_then(parse_slot_range);
                let events = match range {
                    Some(_) => self.recorder.tail(self.recorder.capacity()),
                    None => self.recorder.tail(arg(SPANS_DEFAULT)),
                };
                let mut out = String::new();
                for span in assemble_spans(&events)
                    .iter()
                    .filter(|s| range.is_none_or(|(from, to)| s.slot >= from && s.slot < to))
                {
                    out.push_str(&span.to_json());
                    out.push('\n');
                }
                out
            }
            "clock" => format!(
                "{{\"node_id\":{},\"now_us\":{},\"epoch_id\":{}}}",
                self.node_id,
                self.recorder.now_us(),
                self.recorder.epoch_id(),
            ),
            "history" => {
                let snaps = self.history.tail(arg(HISTORY_DEFAULT));
                let mut out = String::new();
                for snap in &snaps {
                    out.push_str(&snap.to_json());
                    out.push('\n');
                }
                out
            }
            "rates" => self.history.rates().map_or_else(
                || "{\"error\":\"need two history samples\"}".to_string(),
                |report| report.to_json(),
            ),
            "hash" => self.hash_json(),
            "cmds" => {
                let events = self.recorder.tail(arg(SPANS_DEFAULT));
                let slots = assemble_spans(&events);
                let mut out = String::new();
                for span in assemble_cmd_spans(&events, &slots) {
                    out.push_str(&span.to_json());
                    out.push('\n');
                }
                out
            }
            "slowest" => {
                let mut out = String::new();
                for ex in self.slow_cmds.top(arg(self.slow_cmds.capacity())) {
                    out.push_str(&ex.to_json());
                    out.push('\n');
                }
                out
            }
            _ => "{\"error\":\"unknown command (metrics|status|trace [n]|spans [n]|\
                  spans <from>..<to>|clock|history [n]|rates|hash|cmds [n]|slowest [n])\"}"
                .to_string(),
        }
    }
}

/// Parses the `spans` range form `<from>..<to>` (half-open, like a Rust
/// range). `None` for anything else — the plain count form keeps
/// working.
fn parse_slot_range(arg: &str) -> Option<(u64, u64)> {
    let (from, to) = arg.split_once("..")?;
    Some((from.parse().ok()?, to.parse().ok()?))
}

/// Serves one connection: read a command line, write the answer, close.
/// The stream gets the state's I/O deadline first, so a stalled client
/// costs at most one timeout, never the port.
fn handle(state: &AdminState, stream: TcpStream) {
    state.registry.counter("admin.connections").add(1);
    let timeout = if state.io_timeout.is_zero() {
        None
    } else {
        Some(state.io_timeout)
    };
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        state.registry.counter("admin.errors").add(1);
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            state.registry.counter("admin.errors").add(1);
            return;
        }
    });
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => {}
        _ => {
            state.registry.counter("admin.errors").add(1);
            return;
        }
    }
    let mut response = state.respond(line.trim());
    if !response.ends_with('\n') {
        response.push('\n');
    }
    let mut stream = stream;
    if stream.write_all(response.as_bytes()).is_err() {
        state.registry.counter("admin.errors").add(1);
    }
}

/// Binds `addr` and serves admin queries on a background thread for the
/// life of the process. Returns the bound address (pass port 0 to let
/// the OS pick — tests do). Connections are served serially: this is a
/// debug port, not a data plane, and per-stream deadlines bound how long
/// any one client can hold it.
pub fn spawn_admin(addr: SocketAddr, state: AdminState) -> std::io::Result<SocketAddr> {
    spawn_admin_gated(addr, state, Arc::new(AtomicBool::new(false)))
}

/// [`spawn_admin`] with an offline switch: while `offline` is true,
/// accepted connections are dropped without an answer — to a monitor the
/// node looks dead. Load drivers flip this to rehearse a node crash and
/// recovery without tearing down the in-process cluster.
pub fn spawn_admin_gated(
    addr: SocketAddr,
    state: AdminState,
    offline: Arc<AtomicBool>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            if offline.load(Ordering::Relaxed) {
                drop(stream);
                continue;
            }
            handle(&state, stream);
        }
    });
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_trace::{EventKind, Stage};

    fn query(addr: SocketAddr, cmd: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(cmd.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        let mut out = String::new();
        use std::io::Read;
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_state() -> AdminState {
        AdminState {
            node_id: 2,
            registry: Registry::new(),
            recorder: FlightRecorder::new(256),
            peers: PeerTable::new(3),
            history: HistoryRing::new(16),
            hashes: HashCell::new(),
            slow_cmds: SlowCmdRing::new(),
            io_timeout: ADMIN_IO_TIMEOUT,
        }
    }

    #[test]
    fn status_reports_gauges_and_peer_rows() {
        let state = test_state();
        state.registry.gauge("order.round").set(41);
        state.registry.gauge("order.committed_slots").set(17);
        state.peers.heard(0, 40);
        state.peers.heard(1, 12);
        state.peers.write_off(1);
        let json = state.status_json();
        assert!(json.contains("\"node_id\":2"), "{json}");
        assert!(json.contains("\"round\":41"), "{json}");
        assert!(json.contains("\"committed_slots\":17"), "{json}");
        assert!(json.contains("\"lag_rounds\":1"), "{json}");
        assert!(json.contains("\"written_off\":true"), "{json}");
    }

    #[test]
    fn endpoint_answers_every_command_over_tcp() {
        let state = test_state();
        state.registry.counter("order.decided").add(3);
        state.registry.gauge("order.round").set(9);
        let rec = state.recorder.clone();
        rec.record(Stage::Order, EventKind::Proposed, 4, 9);
        rec.record(Stage::Order, EventKind::Decided, 4, 9);
        let registry = state.registry.clone();
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();

        let metrics = query(addr, "metrics");
        assert!(metrics.contains("\"order.decided\":3"), "{metrics}");

        let status = query(addr, "status");
        assert!(status.contains("\"round\":9"), "{status}");
        assert!(status.contains("\"trace_events\":2"), "{status}");

        let trace = query(addr, "trace 10");
        assert_eq!(trace.lines().count(), 2, "{trace}");
        assert!(trace.contains("\"kind\":\"decided\""), "{trace}");

        let spans = query(addr, "spans");
        assert_eq!(spans.lines().count(), 1, "{spans}");
        assert!(spans.contains("\"slot\":4"), "{spans}");
        assert!(spans.contains("\"order_us\""), "{spans}");

        let err = query(addr, "bogus");
        assert!(err.contains("\"error\""), "{err}");

        assert!(
            registry.counter_value("admin.connections").unwrap_or(0) >= 5,
            "served connections are counted"
        );
    }

    #[test]
    fn history_rates_and_hash_answer_over_tcp() {
        let state = test_state();
        let counter = state.registry.counter("order.rounds");
        let applied = state.registry.gauge("order.applied");
        counter.add(100);
        applied.set(400);
        state.history.sample_at(&state.registry, 1_000);
        counter.add(50);
        applied.set(700);
        state.history.sample_at(&state.registry, 2_000);
        state.hashes.publish(512, [0xaa; 32]);
        state.hashes.publish(1024, [0xbb; 32]);
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();

        let history = query(addr, "history");
        assert_eq!(history.lines().count(), 2, "{history}");
        assert!(history.contains("\"ts_ms\":1000"), "{history}");
        assert!(history.contains("\"order.rounds\":150"), "{history}");

        let one = query(addr, "history 1");
        assert_eq!(one.lines().count(), 1, "{one}");
        assert!(one.contains("\"ts_ms\":2000"), "{one}");

        let rates = query(addr, "rates");
        assert!(rates.contains("\"interval_ms\":1000"), "{rates}");
        assert!(rates.contains("\"rounds_per_sec\":50.000"), "{rates}");
        assert!(rates.contains("\"cmds_per_sec\":300.000"), "{rates}");

        let hash = query(addr, "hash");
        assert!(hash.contains("\"node_id\":2"), "{hash}");
        assert!(hash.contains("\"published\":2"), "{hash}");
        assert!(
            hash.contains(&format!(
                "\"applied\":1024,\"state_hash\":\"{}\"",
                "bb".repeat(32)
            )),
            "{hash}"
        );
        assert!(hash.contains(&"aa".repeat(32)), "{hash}");
    }

    #[test]
    fn spans_range_form_filters_by_slot() {
        let state = test_state();
        let rec = state.recorder.clone();
        for slot in 0..20 {
            rec.record(Stage::Order, EventKind::Proposed, slot, 1);
            rec.record(Stage::Order, EventKind::Decided, slot, 1);
        }
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();

        let window = query(addr, "spans 5..8");
        let slots: Vec<&str> = window.lines().collect();
        assert_eq!(slots.len(), 3, "{window}");
        for (i, line) in slots.iter().enumerate() {
            assert!(line.contains(&format!("\"slot\":{}", 5 + i)), "{line}");
        }
        // Degenerate and empty ranges answer cleanly.
        assert_eq!(query(addr, "spans 8..5"), "\n");
        assert_eq!(query(addr, "spans 100..200"), "\n");
        // The count form still works.
        assert_eq!(query(addr, "spans").lines().count(), 20);
    }

    #[test]
    fn slowest_and_cmds_answer_over_tcp() {
        use gencon_trace::CmdExemplar;
        let state = test_state();
        let rec = state.recorder.clone();
        // One command's life: submitted → queued → batched into slot 4
        // → decided → acked (detail = decided slot).
        rec.record(Stage::Ingest, EventKind::Submitted, 7, 0);
        rec.record(Stage::Ingest, EventKind::CmdQueued, 7, 1);
        rec.record(Stage::Order, EventKind::Batched, 7, 4);
        rec.record(Stage::Order, EventKind::Proposed, 4, 1);
        rec.record(Stage::Order, EventKind::Decided, 4, 1);
        rec.record(Stage::Ack, EventKind::CmdAcked, 7, 4);
        for (cmd, e2e) in [(7u64, 900u64), (8, 100)] {
            state.slow_cmds.offer(CmdExemplar {
                cmd,
                e2e_us: e2e,
                slot: 4,
                submitted_ts_us: 10,
                relay_hops: 0,
            });
        }
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();

        let cmds = query(addr, "cmds");
        assert_eq!(cmds.lines().count(), 1, "{cmds}");
        assert!(cmds.contains("\"cmd\":7"), "{cmds}");
        assert!(cmds.contains("\"slot\":4"), "{cmds}");
        assert!(cmds.contains("\"e2e_us\""), "{cmds}");

        let slowest = query(addr, "slowest");
        assert_eq!(slowest.lines().count(), 2, "{slowest}");
        assert!(
            slowest.lines().next().unwrap().contains("\"cmd\":7"),
            "slowest first: {slowest}"
        );
        let one = query(addr, "slowest 1");
        assert_eq!(one.lines().count(), 1, "{one}");
        assert!(one.contains("\"e2e_us\":900"), "{one}");
    }

    #[test]
    fn clock_reports_monotonic_reading_and_epoch() {
        let state = test_state();
        let rec = state.recorder.clone();
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();
        let a = query(addr, "clock");
        let b = query(addr, "clock");
        assert!(a.contains("\"node_id\":2"), "{a}");
        assert!(
            a.contains(&format!("\"epoch_id\":{}", rec.epoch_id())),
            "{a}"
        );
        let now = |s: &str| -> u64 {
            let tail = s.split("\"now_us\":").nth(1).unwrap();
            tail[..tail.find(',').unwrap()].parse().unwrap()
        };
        assert!(now(&b) >= now(&a), "clock went backwards: {a} vs {b}");
    }

    #[test]
    fn rates_before_two_samples_is_an_error_line() {
        let state = test_state();
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();
        let rates = query(addr, "rates");
        assert!(rates.contains("\"error\""), "{rates}");
    }

    #[test]
    fn silent_client_times_out_without_wedging_the_port() {
        let mut state = test_state();
        state.io_timeout = Duration::from_millis(100);
        state.registry.gauge("order.round").set(7);
        let registry = state.registry.clone();
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();

        // Connect and never send a line; the server must shed us...
        let silent = TcpStream::connect(addr).unwrap();
        // ...and answer the next client promptly.
        let status = query(addr, "status");
        assert!(status.contains("\"round\":7"), "{status}");
        drop(silent);
        assert!(
            registry.counter_value("admin.errors").unwrap_or(0) >= 1,
            "timed-out connection is counted as an error"
        );
    }

    #[test]
    fn offline_gate_drops_connections_then_recovers() {
        use std::io::Read;
        let state = test_state();
        state.registry.gauge("order.round").set(3);
        let offline = Arc::new(AtomicBool::new(true));
        let addr =
            spawn_admin_gated("127.0.0.1:0".parse().unwrap(), state, offline.clone()).unwrap();

        // While offline: the connection is accepted then dropped with no
        // answer — a monitor reads zero bytes.
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(b"status\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.is_empty(), "offline node answered: {out}");

        offline.store(false, Ordering::Relaxed);
        let status = query(addr, "status");
        assert!(status.contains("\"round\":3"), "{status}");
    }
}
