//! The live admin endpoint: a line-oriented TCP debug port.
//!
//! One **command per connection**: the client connects, sends a single
//! line, and reads the full response until the server closes the socket
//! — trivially scriptable from `nc`, python, or the CI smoke jobs with
//! no framing to parse. Commands:
//!
//! | command     | response                                              |
//! |-------------|-------------------------------------------------------|
//! | `metrics`   | the metrics registry as one flat JSON object          |
//! | `status`    | one JSON object: node id, round, watermarks, live     |
//! |             | queue depths and the per-peer lag table               |
//! | `trace [n]` | the last `n` (default 256) flight-recorder events,    |
//! |             | one JSON line each, oldest first                      |
//! | `spans [n]` | per-slot latency breakdowns assembled from the last   |
//! |             | `n` (default 4096) events, one JSON line per slot     |
//!
//! The endpoint is read-only and runs on its own thread; every answer is
//! assembled from lock-free snapshots (metric handles, the flight
//! recorder's seqlock cells, the peer table's atomics), so querying a
//! node under load never blocks its pipeline. Malformed input gets an
//! `{"error":…}` line listing the commands.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use gencon_metrics::Registry;
use gencon_trace::{assemble_spans, FlightRecorder, PeerTable};

/// Default event count for `trace` without an argument.
const TRACE_DEFAULT: usize = 256;

/// Default event window for `spans` without an argument.
const SPANS_DEFAULT: usize = 4096;

/// The read-only handles the admin endpoint serves from, all shared
/// with the running node.
#[derive(Clone)]
pub struct AdminState {
    /// This node's index into the peer list (reported by `status`).
    pub node_id: usize,
    /// The node's metric registry (`metrics`, and the watermark and
    /// queue-depth gauges `status` reads).
    pub registry: Registry,
    /// The flight recorder backing `trace` and `spans`.
    pub recorder: FlightRecorder,
    /// The per-peer health table backing `status`'s lag table.
    pub peers: PeerTable,
}

impl AdminState {
    /// Renders the `status` JSON object.
    #[must_use]
    pub fn status_json(&self) -> String {
        let g = |name: &str| self.registry.gauge_value(name).unwrap_or(0);
        let round = g("order.round");
        let peers: Vec<String> = self
            .peers
            .rows(round)
            .iter()
            .map(gencon_trace::PeerRow::to_json)
            .collect();
        format!(
            "{{\"node_id\":{},\"round\":{round},\"committed_slots\":{},\"applied\":{},\
             \"queued\":{},\"persist_gate\":{},\"ingest_queue\":{},\"apply_queue\":{},\
             \"persist_queue\":{},\"trace_events\":{},\"peers\":[{}]}}",
            self.node_id,
            g("order.committed_slots"),
            g("order.applied"),
            g("order.queued"),
            g("persist.gate"),
            g("ingest.queue_depth_now"),
            g("apply.queue_depth_now"),
            g("persist.queue_depth_now"),
            self.recorder.recorded(),
            peers.join(","),
        )
    }

    /// Answers one already-parsed command line.
    fn respond(&self, line: &str) -> String {
        let mut words = line.split_whitespace();
        let cmd = words.next().unwrap_or("");
        let mut arg = |d: usize| words.next().and_then(|w| w.parse().ok()).unwrap_or(d);
        match cmd {
            "metrics" => self.registry.dump_json(),
            "status" => self.status_json(),
            "trace" => {
                let events = self.recorder.tail(arg(TRACE_DEFAULT));
                let mut out = String::new();
                for ev in &events {
                    out.push_str(&ev.to_json());
                    out.push('\n');
                }
                out
            }
            "spans" => {
                let events = self.recorder.tail(arg(SPANS_DEFAULT));
                let mut out = String::new();
                for span in assemble_spans(&events) {
                    out.push_str(&span.to_json());
                    out.push('\n');
                }
                out
            }
            _ => "{\"error\":\"unknown command (metrics|status|trace [n]|spans [n])\"}".to_string(),
        }
    }
}

/// Serves one connection: read a command line, write the answer, close.
fn handle(state: &AdminState, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut response = state.respond(line.trim());
    if !response.ends_with('\n') {
        response.push('\n');
    }
    let mut stream = stream;
    let _ = stream.write_all(response.as_bytes());
}

/// Binds `addr` and serves admin queries on a background thread for the
/// life of the process. Returns the bound address (pass port 0 to let
/// the OS pick — tests do). Connections are served serially: this is a
/// debug port, not a data plane.
pub fn spawn_admin(addr: SocketAddr, state: AdminState) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            handle(&state, stream);
        }
    });
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_trace::{EventKind, Stage};

    fn query(addr: SocketAddr, cmd: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(cmd.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        let mut out = String::new();
        use std::io::Read;
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_state() -> AdminState {
        AdminState {
            node_id: 2,
            registry: Registry::new(),
            recorder: FlightRecorder::new(256),
            peers: PeerTable::new(3),
        }
    }

    #[test]
    fn status_reports_gauges_and_peer_rows() {
        let state = test_state();
        state.registry.gauge("order.round").set(41);
        state.registry.gauge("order.committed_slots").set(17);
        state.peers.heard(0, 40);
        state.peers.heard(1, 12);
        state.peers.write_off(1);
        let json = state.status_json();
        assert!(json.contains("\"node_id\":2"), "{json}");
        assert!(json.contains("\"round\":41"), "{json}");
        assert!(json.contains("\"committed_slots\":17"), "{json}");
        assert!(json.contains("\"lag_rounds\":1"), "{json}");
        assert!(json.contains("\"written_off\":true"), "{json}");
    }

    #[test]
    fn endpoint_answers_every_command_over_tcp() {
        let state = test_state();
        state.registry.counter("order.decided").add(3);
        state.registry.gauge("order.round").set(9);
        let rec = state.recorder.clone();
        rec.record(Stage::Order, EventKind::Proposed, 4, 9);
        rec.record(Stage::Order, EventKind::Decided, 4, 9);
        let addr = spawn_admin("127.0.0.1:0".parse().unwrap(), state).unwrap();

        let metrics = query(addr, "metrics");
        assert!(metrics.contains("\"order.decided\":3"), "{metrics}");

        let status = query(addr, "status");
        assert!(status.contains("\"round\":9"), "{status}");
        assert!(status.contains("\"trace_events\":2"), "{status}");

        let trace = query(addr, "trace 10");
        assert_eq!(trace.lines().count(), 2, "{trace}");
        assert!(trace.contains("\"kind\":\"decided\""), "{trace}");

        let spans = query(addr, "spans");
        assert_eq!(spans.lines().count(), 1, "{spans}");
        assert!(spans.contains("\"slot\":4"), "{spans}");
        assert!(spans.contains("\"order_us\""), "{spans}");

        let err = query(addr, "bogus");
        assert!(err.contains("\"error\""), "{err}");
    }
}
