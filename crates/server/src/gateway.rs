//! The TCP client gateway: accepts client connections, feeds submissions
//! into the replica, runs the **live application** over the applied log,
//! and acks commands — with the application's reply payload — once they
//! commit.
//!
//! The gateway is a [`NodeHook`]: connection threads only push parsed
//! submissions onto a queue; all replica and application access happens
//! inside the node event loop (single-threaded, no locks around
//! consensus state).
//!
//! * [`NodeHook::before_round`] drains queued submissions into the
//!   replica — applying **backpressure** (the command is bounced with the
//!   observed queue depth instead of being enqueued) once the pending
//!   queue exceeds its limit, and **redirecting** every submission when
//!   the server is configured as a non-accepting follower;
//! * [`NodeHook::after_round`] walks the newly applied suffix of the log
//!   through the live [`Applier`] — producing each command's
//!   [`App::Reply`] the moment it flattens — and answers each locally
//!   submitted command with its `(slot, offset)` commit coordinates plus
//!   the reply. Under durable-ack the **apply** still runs immediately
//!   (deterministic replay needs no fsync), but the *ack* is held in a
//!   pending queue until the durable watermark passes the command's
//!   offset, so an acked command is one a crash cannot lose.
//!
//! Two protections keep one client from hurting the rest: ack writes run
//! under a short write timeout (a client that stops reading gets its
//! connection dropped instead of wedging the consensus thread), and
//! retried submissions of already-committed commands are re-acked from
//! the gateway's commit index (the replica's dedup would otherwise
//! swallow them silently).

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use gencon_app::{App, Applier};
use gencon_net::wire_sync::{FoldedState, SnapshotManifest};
use gencon_smr::BatchingReplica;
use gencon_types::ProcessId;

use crate::node::NodeHook;
use crate::protocol::{read_frame, write_frame, ClientRequest, ClientResponse};

/// Shared writer registry: connection id → writer half of the socket.
type Conns = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Gateway tuning.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Submissions bounce with [`ClientResponse::Backpressure`] while the
    /// replica's pending queue is at or above this depth.
    pub backpressure_limit: usize,
    /// When set, every submission bounces with
    /// [`ClientResponse::Redirect`] to this process (follower mode).
    pub redirect_to: Option<ProcessId>,
    /// Ack writes block at most this long; a client that stops reading
    /// is disconnected rather than allowed to stall the event loop.
    pub write_timeout: std::time::Duration,
    /// Commands kept in the re-ack index (retries of already-committed
    /// submissions are answered from it). Oldest entries are evicted
    /// past the cap, bounding gateway memory on a long-running node — a
    /// retry arriving later than this many commits is treated as new,
    /// the same window semantics as the replica's dedup horizon.
    pub reack_index_cap: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backpressure_limit: 65_536,
            redirect_to: None,
            write_timeout: std::time::Duration::from_millis(500),
            reack_index_cap: 1 << 20,
        }
    }
}

/// The client-facing service half of a `gencon-server` node, running
/// application `A` over the replicated log.
pub struct ClientGateway<A: App> {
    submissions: Receiver<(u64, A::Cmd)>,
    conns: Conns,
    /// Locally submitted, not yet committed: command → connection.
    inflight: HashMap<A::Cmd, u64>,
    /// The live application: applies every command as it flattens.
    applier: Applier<A>,
    /// Applied but not yet acked `(cmd, slot, offset, reply)` — drained
    /// in offset order as the durable watermark advances (immediately,
    /// without a gate).
    pending_acks: VecDeque<(A::Cmd, u64, u64, A::Reply)>,
    /// Commit coordinates and replies of recently acked commands, for
    /// re-acking client retries of already-committed submissions.
    /// Bounded by [`GatewayConfig::reack_index_cap`]: oldest entries are
    /// evicted (`reack_order` is the FIFO), so a long-running node's
    /// gateway memory stays flat.
    committed_index: HashMap<A::Cmd, (u64, u64, A::Reply)>,
    /// Insertion order of `committed_index`, for eviction.
    reack_order: VecDeque<A::Cmd>,
    /// Submissions bounced (backpressure or redirect) so far.
    bounced: u64,
    /// Parked acks dropped because the pending queue hit its bound (a
    /// persistently stalled durable gate — e.g. a failing disk — must
    /// not grow memory without limit; the dropped commands are committed
    /// and safe, their clients just never hear back, exactly as under a
    /// stalled gate in general).
    acks_dropped: u64,
    /// Durable-ack watermark: when set, commands at absolute log offsets
    /// at or past the gate are **applied but not acked** yet — their
    /// batch is not fsynced/snapshotted (see
    /// [`DurableNode`](crate::DurableNode)). Acks resume as the gate
    /// advances.
    ack_gate: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    cfg: GatewayConfig,
    local_addr: SocketAddr,
}

impl<A: App> ClientGateway<A> {
    /// Binds `addr` and starts accepting client connections.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind error.
    pub fn listen(addr: SocketAddr, cfg: GatewayConfig) -> std::io::Result<ClientGateway<A>> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = channel::unbounded();

        let acceptor_conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            loop {
                let Ok((stream, peer)) = listener.accept() else {
                    return;
                };
                if std::env::var_os("GENCON_NODE_DEBUG").is_some() {
                    eprintln!(
                        "[gateway {}] accepted conn {next_id} from {peer}",
                        stream
                            .local_addr()
                            .map_or_else(|_| "?".into(), |a| a.to_string())
                    );
                }
                stream.set_nodelay(true).ok();
                let conn_id = next_id;
                next_id += 1;
                let Ok(writer) = stream.try_clone() else {
                    continue;
                };
                writer.set_write_timeout(Some(cfg.write_timeout)).ok();
                acceptor_conns.lock().insert(conn_id, writer);
                let tx = tx.clone();
                let reader_conns = Arc::clone(&acceptor_conns);
                std::thread::spawn(move || {
                    conn_reader::<A>(conn_id, stream, &tx);
                    reader_conns.lock().remove(&conn_id);
                });
            }
        });

        Ok(ClientGateway {
            submissions: rx,
            conns,
            inflight: HashMap::new(),
            applier: Applier::default(),
            pending_acks: VecDeque::new(),
            committed_index: HashMap::new(),
            reack_order: VecDeque::new(),
            bounced: 0,
            acks_dropped: 0,
            ack_gate: None,
            cfg,
            local_addr,
        })
    }

    /// Installs the durable-ack watermark (see
    /// [`DurableNode::ack_gate`](crate::DurableNode::ack_gate)): acks are
    /// held back until the command's absolute log offset falls below the
    /// gate. Application of commands is *not* gated — replies are simply
    /// parked until durable.
    #[must_use]
    pub fn with_ack_gate(
        mut self,
        gate: std::sync::Arc<std::sync::atomic::AtomicU64>,
    ) -> ClientGateway<A> {
        self.ack_gate = Some(gate);
        self
    }

    /// Replaces the live applier — the recovery path: after
    /// [`recover_replica`](crate::recover_replica), seed the gateway with
    /// an applier resumed from the recovered fold so replies and state
    /// hashes continue where the previous process left off.
    #[must_use]
    pub fn with_applier(mut self, applier: Applier<A>) -> ClientGateway<A> {
        self.applier = applier;
        self
    }

    /// The live applier (cursor, app state, captured hash).
    #[must_use]
    pub fn applier(&self) -> &Applier<A> {
        &self.applier
    }

    /// The address the gateway actually bound (resolves `:0` port probes).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Commands submitted locally and not yet committed.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Submissions bounced so far (backpressure or redirect).
    #[must_use]
    pub fn bounced(&self) -> u64 {
        self.bounced
    }

    /// Parked acks dropped at the pending-queue bound (only a stalled
    /// durable gate can make this nonzero).
    #[must_use]
    pub fn acks_dropped(&self) -> u64 {
        self.acks_dropped
    }

    /// Records a committed command's coordinates + reply for re-acking
    /// retries, evicting the oldest entries past the cap.
    fn index_committed(&mut self, cmd: A::Cmd, slot: u64, offset: u64, reply: A::Reply) {
        if self
            .committed_index
            .insert(cmd.clone(), (slot, offset, reply))
            .is_none()
        {
            self.reack_order.push_back(cmd);
        }
        while self.reack_order.len() > self.cfg.reack_index_cap {
            if let Some(old) = self.reack_order.pop_front() {
                self.committed_index.remove(&old);
            }
        }
    }

    fn respond(&self, conn_id: u64, resp: &ClientResponse<A::Cmd, A::Reply>) {
        let mut conns = self.conns.lock();
        let Some(stream) = conns.get_mut(&conn_id) else {
            return; // client went away; the commit stands regardless
        };
        if let Err(e) = write_frame(stream, resp).and_then(|()| stream.flush()) {
            if std::env::var_os("GENCON_NODE_DEBUG").is_some() {
                eprintln!("[gateway] respond to conn {conn_id} failed: {e}");
            }
            conns.remove(&conn_id);
        }
    }
}

/// Reads `Submit` frames off one client connection until EOF/error.
fn conn_reader<A: App>(conn_id: u64, mut stream: TcpStream, tx: &Sender<(u64, A::Cmd)>) {
    loop {
        match read_frame::<_, ClientRequest<A::Cmd>>(&mut stream) {
            Ok(ClientRequest::Submit { cmd }) => {
                if tx.send((conn_id, cmd)).is_err() {
                    return; // node loop gone: shutting down
                }
            }
            Err(e) => {
                if std::env::var_os("GENCON_NODE_DEBUG").is_some() {
                    eprintln!("[gateway] conn {conn_id} reader exit: {e}");
                }
                return; // disconnect or protocol violation
            }
        }
    }
}

impl<A: App> NodeHook<A::Cmd> for ClientGateway<A> {
    fn before_round(&mut self, _round: u64, replica: &mut BatchingReplica<A::Cmd>) {
        while let Ok((conn_id, cmd)) = self.submissions.try_recv() {
            // A retry of a command that already committed: re-ack it —
            // the replica's dedup would swallow the resubmission, and
            // the client would otherwise never hear back.
            if let Some((slot, offset, reply)) = self.committed_index.get(&cmd) {
                let resp = ClientResponse::Committed {
                    cmd,
                    slot: *slot,
                    offset: *offset,
                    reply: Some(reply.clone()),
                };
                self.respond(conn_id, &resp);
                continue;
            }
            if let Some(to) = self.cfg.redirect_to {
                self.bounced += 1;
                self.respond(conn_id, &ClientResponse::Redirect { cmd, to });
                continue;
            }
            if replica.queued() >= self.cfg.backpressure_limit {
                self.bounced += 1;
                self.respond(
                    conn_id,
                    &ClientResponse::Backpressure {
                        cmd: cmd.clone(),
                        queued: replica.queued() as u64,
                    },
                );
                continue;
            }
            self.inflight.insert(cmd.clone(), conn_id);
            replica.submit(cmd);
        }
    }

    fn after_round(&mut self, _round: u64, replica: &mut BatchingReplica<A::Cmd>) {
        // 1. Apply every newly flattened command through the live app —
        // ungated: deterministic replay carries no durability promise,
        // and holding the *app* (rather than just acks) behind the fsync
        // watermark would stall state hashes and replies for nothing.
        let limit = replica.applied_len() as u64;
        let pending = &mut self.pending_acks;
        self.applier.track(
            replica.applied(),
            replica.applied_slots(),
            replica.applied_base() as u64,
            limit,
            |cmd, slot, offset, reply| pending.push_back((cmd.clone(), slot, offset, reply)),
        );
        // Bound the parked acks: under a healthy gate the queue drains
        // every group-commit window, but a gate that stops advancing
        // (failing disk) must not grow memory with throughput forever.
        // The *newest* entries are dropped — the oldest are the next to
        // become durable. A dropped command is still committed, and its
        // coordinates go straight into the (equally bounded) re-ack
        // index so a client retry after the gate recovers gets answered
        // instead of being swallowed by the replica's dedup.
        while self.pending_acks.len() > self.cfg.reack_index_cap {
            let (cmd, slot, offset, reply) = self.pending_acks.pop_back().expect("over cap");
            self.acks_dropped += 1;
            self.index_committed(cmd, slot, offset, reply);
        }
        // 2. Release acks up to the durable watermark (everything, when
        // no gate is installed).
        let gate = self.ack_gate.as_ref().map_or(limit, |g| {
            g.load(std::sync::atomic::Ordering::SeqCst).min(limit)
        });
        while self
            .pending_acks
            .front()
            .is_some_and(|(_, _, offset, _)| *offset < gate)
        {
            let (cmd, slot, offset, reply) = self.pending_acks.pop_front().expect("front exists");
            self.index_committed(cmd.clone(), slot, offset, reply.clone());
            if let Some(conn_id) = self.inflight.remove(&cmd) {
                self.respond(
                    conn_id,
                    &ClientResponse::Committed {
                        cmd,
                        slot,
                        offset,
                        reply: Some(reply),
                    },
                );
            }
        }
    }

    fn snapshot_installed(
        &mut self,
        _manifest: &SnapshotManifest,
        _state: &[u8],
        fs: &FoldedState<A::Cmd>,
        _replica: &mut BatchingReplica<A::Cmd>,
    ) {
        // A state transfer replaced the replica's log wholesale; restore
        // the live app from the transferred fold. Pending acks for
        // offsets below the fold were produced before the jump and stay
        // answerable (their replies were computed at apply time).
        if let Err(e) = self.applier.restore(fs) {
            eprintln!("[gateway] live app restore failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::paxos;
    use gencon_app::{KvApp, KvCmd, KvOp, KvReply, LogApp};
    use gencon_smr::Batch;

    fn test_replica(cap: usize) -> BatchingReplica<u64> {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), cap, usize::MAX).unwrap()
    }

    fn connect_and_submit(addr: SocketAddr, cmds: &[u64]) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        for &cmd in cmds {
            write_frame(&mut stream, &ClientRequest::Submit { cmd }).unwrap();
        }
        stream
    }

    fn drain_submissions(gw: &mut ClientGateway<LogApp<u64>>, replica: &mut BatchingReplica<u64>) {
        // Connection readers run on their own threads; poll briefly.
        for _ in 0..100 {
            gw.before_round(1, replica);
            if replica.queued() + gw.inflight.len() > 0 || gw.bounced() > 0 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn submissions_reach_the_replica() {
        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let mut replica = test_replica(8);
        let _conn = connect_and_submit(gw.local_addr(), &[11, 22]);
        for _ in 0..100 {
            gw.before_round(1, &mut replica);
            if replica.queued() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(replica.queued(), 2);
        assert_eq!(gw.inflight(), 2);
    }

    #[test]
    fn backpressure_bounces_instead_of_queueing() {
        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig {
                backpressure_limit: 0,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let mut replica = test_replica(8);
        let mut conn = connect_and_submit(gw.local_addr(), &[33]);
        drain_submissions(&mut gw, &mut replica);
        let resp: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        assert_eq!(resp, ClientResponse::Backpressure { cmd: 33, queued: 0 });
        assert_eq!(replica.queued(), 0);
        assert_eq!(gw.inflight(), 0);
    }

    /// A client retry of an already-committed command must be re-acked
    /// from the commit index — the replica's dedup swallows the
    /// resubmission, so without the index the client would hang forever.
    #[test]
    fn retry_of_committed_command_is_reacked_with_its_reply() {
        use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
        use gencon_types::Round;

        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        // A single-replica log (Paxos n = 1): commits without peers when
        // driven by hand, which is all this unit test needs.
        let spec = paxos::<Batch<u64>>(1, 0, ProcessId::new(0)).unwrap();
        let mut replica =
            BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 4, usize::MAX).unwrap();

        let mut conn = connect_and_submit(gw.local_addr(), &[77]);
        drain_submissions(&mut gw, &mut replica);
        assert_eq!(replica.queued(), 1, "submission reached the replica");
        for round in 1..=20u64 {
            let r = Round::new(round);
            gw.before_round(round, &mut replica);
            let out = replica.send(r);
            let mut heard: HeardOf<_> = HeardOf::empty(1);
            if let Outgoing::Broadcast(m) = out {
                heard.put(ProcessId::new(0), m);
            }
            replica.receive(r, &heard);
            gw.after_round(round, &mut replica);
            if !replica.applied().is_empty() {
                break;
            }
        }
        assert_eq!(replica.applied(), &[77], "single-replica log commits");
        let first: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        let ClientResponse::Committed {
            cmd, slot, offset, ..
        } = first
        else {
            panic!("expected a commit ack, got {first:?}");
        };
        assert_eq!((cmd, offset), (77, 0));

        // The retry: the replica dedups it, but the gateway re-acks with
        // the same coordinates. Poll before_round until the retry has
        // drained through the connection reader and been answered.
        write_frame(&mut conn, &ClientRequest::Submit { cmd: 77u64 }).unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_millis(20)))
            .unwrap();
        let mut reack = None;
        for _ in 0..200 {
            gw.before_round(100, &mut replica);
            if let Ok(resp) = read_frame::<_, ClientResponse<u64>>(&mut conn) {
                reack = Some(resp);
                break;
            }
        }
        let reack = reack.expect("retry re-acked within the polling budget");
        assert_eq!(
            reack,
            ClientResponse::Committed {
                cmd: 77,
                slot,
                offset: 0,
                reply: Some(0),
            }
        );
        assert_eq!(replica.applied(), &[77], "no duplicate apply");
        assert_eq!(gw.applier().cursor(), 1, "the live app applied it once");
    }

    #[test]
    fn follower_mode_redirects() {
        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig {
                redirect_to: Some(ProcessId::new(0)),
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let mut replica = test_replica(8);
        let mut conn = connect_and_submit(gw.local_addr(), &[44]);
        drain_submissions(&mut gw, &mut replica);
        let resp: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        assert_eq!(
            resp,
            ClientResponse::Redirect {
                cmd: 44,
                to: ProcessId::new(0)
            }
        );
        assert_eq!(replica.queued(), 0);
    }

    /// End-to-end kv over the gateway: a put then a get commit, and the
    /// get's ack carries the put's value as its app reply.
    #[test]
    fn kv_acks_carry_app_replies() {
        use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
        use gencon_types::Round;

        let mut gw = ClientGateway::<KvApp>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let spec = paxos::<Batch<KvCmd>>(1, 0, ProcessId::new(0)).unwrap();
        let mut replica =
            BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 4, usize::MAX).unwrap();

        let put = KvCmd {
            id: 1,
            op: KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        };
        let get = KvCmd {
            id: 2,
            op: KvOp::Get { key: b"k".to_vec() },
        };
        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        write_frame(&mut conn, &ClientRequest::Submit { cmd: put.clone() }).unwrap();
        write_frame(&mut conn, &ClientRequest::Submit { cmd: get.clone() }).unwrap();
        for _ in 0..100 {
            gw.before_round(1, &mut replica);
            if replica.queued() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for round in 1..=30u64 {
            let r = Round::new(round);
            gw.before_round(round, &mut replica);
            let out = replica.send(r);
            let mut heard: HeardOf<_> = HeardOf::empty(1);
            if let Outgoing::Broadcast(m) = out {
                heard.put(ProcessId::new(0), m);
            }
            replica.receive(r, &heard);
            gw.after_round(round, &mut replica);
            if replica.applied_len() >= 2 {
                break;
            }
        }
        let mut replies = std::collections::HashMap::new();
        for _ in 0..2 {
            let resp: ClientResponse<KvCmd, KvReply> = read_frame(&mut conn).unwrap();
            let ClientResponse::Committed { cmd, reply, .. } = resp else {
                panic!("expected commits");
            };
            replies.insert(cmd.id, reply.expect("app reply attached"));
        }
        assert_eq!(replies[&1], KvReply::Stored { replaced: false });
        assert_eq!(replies[&2], KvReply::Value(Some(b"v".to_vec())));
        assert_eq!(gw.applier().app().len(), 1);
    }
}
