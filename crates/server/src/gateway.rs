//! The TCP client gateway: accepts client connections, feeds submissions
//! into the replica, runs the **live application** over the applied log,
//! and acks commands — with the application's reply payload — once they
//! commit.
//!
//! The gateway is a [`NodeHook`] split across three stages:
//!
//! ```text
//!   conn readers ──▶ submissions queue ──▶ ORDER (node event loop)
//!                                              │ applied-log deltas
//!                                              ▼
//!                                           APPLY thread ── replies ──┐
//!                                              │                      ▼
//!                    ORDER ── inflight/retry notes ─────────────▶  ACK thread
//!                                                                     │
//!                                              client sockets ◀───────┘
//! ```
//!
//! * the **order** side (the hook methods, on the node event loop) drains
//!   queued submissions into the replica — applying **backpressure** (the
//!   command is bounced with the observed queue depth instead of being
//!   enqueued) once the pending queue exceeds its limit, and
//!   **redirecting** every submission when the server is configured as a
//!   non-accepting follower — and ships each round's newly applied log
//!   suffix to the apply stage. It never touches a socket and never
//!   fsyncs: consensus rounds are not gated on either;
//! * the **apply** stage walks shipped deltas through the live
//!   [`Applier`] — producing each command's [`App::Reply`] the moment it
//!   flattens — and forwards `(cmd, slot, offset, reply)` entries to the
//!   ack stage. Application is ungated by durability: deterministic
//!   replay carries no durability promise;
//! * the **ack** stage owns all client-visible bookkeeping (inflight
//!   map, pending acks, re-ack index) and the sockets. Under durable-ack
//!   it parks entries until the durable watermark published by the
//!   persist stage passes the command's offset, so an acked command is
//!   one a crash cannot lose.
//!
//! Stage channels are bounded; a full channel blocks the producer (acks
//! are never dropped — blocking *is* the backpressure). Since both
//! producer notes for one command flow through the same ack channel in
//! FIFO order, an inflight note always precedes its commit entry.
//!
//! Two protections keep one client from hurting the rest: ack writes run
//! under a short write timeout (a client that stops reading gets its
//! connection dropped instead of wedging the ack stage), and retried
//! submissions of already-committed commands are re-acked from the
//! gateway's commit index (the replica's dedup would otherwise swallow
//! them silently). After a state-transfer jump the index is seeded from
//! the transferred fold's dedup pairs, so a retry of a command committed
//! *below* the jump is still answered (with its slot; the reply itself
//! was never computed locally and is reported as absent).

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use gencon_app::{App, Applier};
use gencon_metrics::{Counter, Gauge, Histogram, Registry, SloTracker};
use gencon_net::wire_sync::{FoldedState, SnapshotManifest};
use gencon_smr::BatchingReplica;
use gencon_trace::{CmdExemplar, EventKind, FlightRecorder, HashCell, SlowCmdRing, Stage, Tracer};
use gencon_types::{CmdKey, ProcessId};

use crate::node::NodeHook;
use crate::protocol::{read_frame, write_frame, ClientRequest, ClientResponse};

/// Shared writer registry: connection id → writer half of the socket.
type Conns = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Capacity of the order→apply and →ack stage channels. A full channel
/// blocks the producer: deltas and ack notes are never dropped.
pub const STAGE_QUEUE_CAP: usize = 1024;

/// Ack-stage poll interval: how often the durable watermark is re-read
/// when no messages arrive (the release latency floor under durable-ack).
const ACK_POLL: std::time::Duration = std::time::Duration::from_micros(500);

/// Retries parked awaiting a commit that hasn't surfaced yet (bounded so
/// a flood of retries for never-committed commands can't grow memory).
const PARKED_RETRIES_CAP: usize = 1024;

/// Gateway tuning.
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// Submissions bounce with [`ClientResponse::Backpressure`] while the
    /// replica's pending queue is at or above this depth.
    pub backpressure_limit: usize,
    /// When set, every submission bounces with
    /// [`ClientResponse::Redirect`] to this process (follower mode).
    pub redirect_to: Option<ProcessId>,
    /// Ack writes block at most this long; a client that stops reading
    /// is disconnected rather than allowed to stall the ack stage.
    pub write_timeout: std::time::Duration,
    /// Commands kept in the re-ack index (retries of already-committed
    /// submissions are answered from it). Oldest entries are evicted
    /// past the cap, bounding gateway memory on a long-running node — a
    /// retry arriving later than this many commits is treated as new,
    /// the same window semantics as the replica's dedup horizon.
    pub reack_index_cap: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backpressure_limit: 65_536,
            redirect_to: None,
            write_timeout: std::time::Duration::from_millis(500),
            reack_index_cap: 1 << 20,
        }
    }
}

/// Order→apply stage messages.
enum ApplyMsg<A: App> {
    /// Newly flattened `(cmd, slot, offset)` log entries, in offset order.
    Delta(Vec<(A::Cmd, u64, u64)>),
    /// A state transfer replaced the log; restore the live app from the
    /// transferred fold.
    Restore(Box<FoldedState<A::Cmd>>),
    /// Rendezvous: forwarded to the ack stage once every prior delta has
    /// been applied, answered there once every prior ack note is handled.
    Barrier(Sender<()>),
}

/// Notes flowing into the ack stage — from the order side (submission
/// outcomes) and the apply side (commit entries with replies). One
/// channel, FIFO: an `Inflight` note always precedes its `Entry`.
enum AckMsg<A: App> {
    /// A fresh local submission was enqueued: remember who to answer
    /// and when the submit frame was drained (for the e2e latency the
    /// released ack reports).
    Inflight {
        cmd: A::Cmd,
        conn: u64,
        submitted_us: u64,
    },
    /// A command flattened and was applied; ack once durable.
    Entry {
        cmd: A::Cmd,
        slot: u64,
        offset: u64,
        reply: A::Reply,
    },
    /// The replica's dedup swallowed a resubmission. Re-ack from the
    /// commit index, adopt the new connection if the command is still
    /// inflight, bounce with `fallback` if one is given (redirect /
    /// backpressure), else park awaiting the commit surfacing.
    Retry {
        cmd: A::Cmd,
        conn: u64,
        fallback: Option<ClientResponse<A::Cmd, A::Reply>>,
    },
    /// `(cmd, slot)` pairs known committed from a transferred fold's
    /// dedup window — replies were computed on another node and are
    /// unavailable; retries are answered with `reply: None`.
    KnownCommitted(Vec<(A::Cmd, u64)>),
    /// Rendezvous: release everything releasable, then answer.
    Barrier(Sender<()>),
}

/// Per-stage instrumentation (`apply.*` / `ack.*`).
#[derive(Clone)]
struct GatewayMeters {
    applied: Counter,
    /// Depth sampled on every enqueue and dequeue (histogram, so its
    /// p99 is meaningful), plus a last-value gauge for live status.
    apply_depth: Histogram,
    apply_depth_now: Gauge,
    acked: Counter,
    reacks: Counter,
    parked: Counter,
    dropped: Counter,
    bounced_backpressure: Counter,
    bounced_redirect: Counter,
}

impl GatewayMeters {
    fn new(reg: &Registry) -> GatewayMeters {
        GatewayMeters {
            applied: reg.counter("apply.applied"),
            apply_depth: reg.histogram("apply.queue_depth"),
            apply_depth_now: reg.gauge("apply.queue_depth_now"),
            acked: reg.counter("ack.acked"),
            reacks: reg.counter("ack.reacks"),
            parked: reg.counter("ack.parked"),
            dropped: reg.counter("ack.dropped"),
            bounced_backpressure: reg.counter("ack.bounced_backpressure"),
            bounced_redirect: reg.counter("ack.bounced_redirect"),
        }
    }
}

/// Handles + channels of the spawned apply/ack stages.
struct GatewayStages<A: App> {
    apply_tx: Sender<ApplyMsg<A>>,
    ack_tx: Sender<AckMsg<A>>,
    apply_handle: std::thread::JoinHandle<()>,
    ack_handle: std::thread::JoinHandle<()>,
}

/// The client-facing service half of a `gencon-server` node, running
/// application `A` over the replicated log.
pub struct ClientGateway<A: App> {
    submissions: Receiver<(u64, A::Cmd)>,
    conns: Conns,
    /// The live application, owned by the apply stage once spawned. The
    /// order side only locks it at spawn (cursor seed) and on behalf of
    /// [`applier`](ClientGateway::applier) callers.
    applier: Arc<Mutex<Applier<A>>>,
    /// Absolute log offset up to which deltas have been shipped to the
    /// apply stage.
    applied_seen: u64,
    /// Apply/ack stage threads, spawned lazily on the first hook call
    /// (so builders like [`with_applier`](ClientGateway::with_applier)
    /// run before any stage captures state).
    stages: Option<GatewayStages<A>>,
    /// Submissions bounced (backpressure or redirect) so far.
    bounced: Arc<AtomicU64>,
    /// Parked acks dropped because the pending queue hit its bound (a
    /// persistently stalled durable gate — e.g. a failing disk — must
    /// not grow memory without limit; the dropped commands are committed
    /// and safe, their clients just never hear back, exactly as under a
    /// stalled gate in general).
    acks_dropped: Arc<AtomicU64>,
    /// Mirror of the ack stage's inflight-map size.
    inflight_count: Arc<AtomicUsize>,
    /// Durable-ack watermark: when set, commands at absolute log offsets
    /// at or past the gate are **applied but not acked** yet — their
    /// batch is not fsynced/snapshotted (see
    /// [`DurableNode`](crate::DurableNode)). Acks resume as the gate
    /// advances.
    ack_gate: Option<Arc<AtomicU64>>,
    /// `(cell, every)`: publish the live app's state hash into `cell` at
    /// applied-count multiples of `every` (the memory-mode audit trail;
    /// durable nodes publish from the snapshot fold instead).
    hash_cell: Option<(HashCell, u64)>,
    /// Classifies each released ack's e2e latency against the SLO
    /// budget (`--slo-p99-us`).
    slo: Option<SloTracker>,
    /// Retains top-K-by-e2e exemplars for the admin `slowest` command.
    slow_ring: Option<SlowCmdRing>,
    /// Fallback submit-timestamp clock when no tracer is installed
    /// (`Tracer::now_us` is 0 when disabled; e2e still needs a clock).
    epoch: std::time::Instant,
    meters: GatewayMeters,
    tracer: Tracer,
    cfg: GatewayConfig,
    local_addr: SocketAddr,
}

impl<A: App> ClientGateway<A> {
    /// Binds `addr` and starts accepting client connections.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind error.
    pub fn listen(addr: SocketAddr, cfg: GatewayConfig) -> std::io::Result<ClientGateway<A>> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = channel::unbounded();

        let acceptor_conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            loop {
                let Ok((stream, peer)) = listener.accept() else {
                    return;
                };
                if std::env::var_os("GENCON_NODE_DEBUG").is_some() {
                    eprintln!(
                        "[gateway {}] accepted conn {next_id} from {peer}",
                        stream
                            .local_addr()
                            .map_or_else(|_| "?".into(), |a| a.to_string())
                    );
                }
                stream.set_nodelay(true).ok();
                let conn_id = next_id;
                next_id += 1;
                let Ok(writer) = stream.try_clone() else {
                    continue;
                };
                writer.set_write_timeout(Some(cfg.write_timeout)).ok();
                acceptor_conns.lock().insert(conn_id, writer);
                let tx = tx.clone();
                let reader_conns = Arc::clone(&acceptor_conns);
                std::thread::spawn(move || {
                    conn_reader::<A>(conn_id, stream, &tx);
                    reader_conns.lock().remove(&conn_id);
                });
            }
        });

        Ok(ClientGateway {
            submissions: rx,
            conns,
            applier: Arc::new(Mutex::new(Applier::default())),
            applied_seen: 0,
            stages: None,
            bounced: Arc::new(AtomicU64::new(0)),
            acks_dropped: Arc::new(AtomicU64::new(0)),
            inflight_count: Arc::new(AtomicUsize::new(0)),
            ack_gate: None,
            hash_cell: None,
            slo: None,
            slow_ring: None,
            epoch: std::time::Instant::now(),
            meters: GatewayMeters::new(&Registry::new()),
            tracer: Tracer::disabled(),
            cfg,
            local_addr,
        })
    }

    /// Installs the durable-ack watermark (see
    /// [`DurableNode::ack_gate`](crate::DurableNode::ack_gate)): acks are
    /// held back until the command's absolute log offset falls below the
    /// gate. Application of commands is *not* gated — replies are simply
    /// parked until durable.
    #[must_use]
    pub fn with_ack_gate(mut self, gate: Arc<AtomicU64>) -> ClientGateway<A> {
        self.ack_gate = Some(gate);
        self
    }

    /// Replaces the live applier — the recovery path: after
    /// [`recover_replica`](crate::recover_replica), seed the gateway with
    /// an applier resumed from the recovered fold so replies and state
    /// hashes continue where the previous process left off. Must run
    /// before the first round (the apply stage seeds its shipping cursor
    /// from the applier when it spawns).
    #[must_use]
    pub fn with_applier(mut self, applier: Applier<A>) -> ClientGateway<A> {
        self.applier = Arc::new(Mutex::new(applier));
        self
    }

    /// Registers the gateway's per-stage meters (`apply.*`, `ack.*`) in
    /// `reg`. Must run before the first round — the stage threads capture
    /// their meter handles when they spawn.
    #[must_use]
    pub fn with_metrics(mut self, reg: &Registry) -> ClientGateway<A> {
        self.meters = GatewayMeters::new(reg);
        self
    }

    /// Records the apply/ack slot lifecycle (`apply_queued`, `applied`,
    /// `acked` events) into `recorder` — pass the same recorder as the
    /// node and durable layers so per-slot spans assemble across all
    /// stages. Must run before the first round, like
    /// [`with_metrics`](ClientGateway::with_metrics).
    #[must_use]
    pub fn with_trace(mut self, recorder: FlightRecorder) -> ClientGateway<A> {
        self.tracer = Tracer::new(Some(recorder));
        self
    }

    /// Installs an SLO tracker: every released ack's end-to-end latency
    /// (submit-frame drain → reply released) is classified against the
    /// tracker's budget into the `slo.good`/`slo.bad` registry counters.
    /// Must run before the first round, like
    /// [`with_metrics`](ClientGateway::with_metrics).
    #[must_use]
    pub fn with_slo(mut self, slo: SloTracker) -> ClientGateway<A> {
        self.slo = Some(slo);
        self
    }

    /// Installs the slow-command exemplar ring: each released ack's
    /// `(cmd, e2e, slot)` is offered to `ring`, which keeps the top-K
    /// by e2e for the admin `slowest` command. Share the same ring with
    /// the admin endpoint. Must run before the first round, like
    /// [`with_metrics`](ClientGateway::with_metrics).
    #[must_use]
    pub fn with_slow_ring(mut self, ring: SlowCmdRing) -> ClientGateway<A> {
        self.slow_ring = Some(ring);
        self
    }

    /// Publishes the live app's `(applied count, state hash)` into
    /// `cell` whenever the applied count reaches a multiple of `every`
    /// (0 disables). Memory-mode nodes use this for the admin `hash`
    /// command; durable nodes publish from the snapshot-boundary fold
    /// instead — wire exactly one publisher per node. Must run before
    /// the first round, like [`with_metrics`](ClientGateway::with_metrics).
    #[must_use]
    pub fn with_hash_cell(mut self, cell: HashCell, every: u64) -> ClientGateway<A> {
        self.hash_cell = (every > 0).then_some((cell, every));
        self
    }

    /// The live applier (cursor, app state, captured hash). Shared with
    /// the apply stage — don't hold the guard across waits; call
    /// [`drain`](ClientGateway::drain) first for a quiesced view.
    pub fn applier(&self) -> parking_lot::MutexGuard<'_, Applier<A>> {
        self.applier.lock()
    }

    /// The address the gateway actually bound (resolves `:0` port probes).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Commands submitted locally and not yet committed.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight_count.load(Ordering::Relaxed)
    }

    /// Submissions bounced so far (backpressure or redirect).
    #[must_use]
    pub fn bounced(&self) -> u64 {
        self.bounced.load(Ordering::Relaxed)
    }

    /// Parked acks dropped at the pending-queue bound (only a stalled
    /// durable gate can make this nonzero).
    #[must_use]
    pub fn acks_dropped(&self) -> u64 {
        self.acks_dropped.load(Ordering::Relaxed)
    }

    /// Submissions bounced with `Backpressure` so far.
    #[must_use]
    pub fn bounced_backpressure(&self) -> u64 {
        self.meters.bounced_backpressure.get()
    }

    /// Submissions bounced with `Redirect` so far.
    #[must_use]
    pub fn bounced_redirect(&self) -> u64 {
        self.meters.bounced_redirect.get()
    }

    /// The submit-timestamp clock: the tracer's recorder clock when
    /// tracing (so stamps and spans share a timebase), else a private
    /// epoch. Both ends of an e2e measurement use the same source.
    fn stamp_us(&self) -> u64 {
        if self.tracer.enabled() {
            self.tracer.now_us()
        } else {
            self.epoch.elapsed().as_micros() as u64
        }
    }

    /// Blocks until every delta and ack note shipped so far has been
    /// processed and every releasable ack has been written — the
    /// shutdown/rendezvous barrier ([`NodeHook::finish`] calls it, tests
    /// use it before asserting on applier or ack state).
    pub fn drain(&mut self) {
        let Some(stages) = &self.stages else {
            return;
        };
        let (done_tx, done_rx) = channel::unbounded();
        if stages.apply_tx.send(ApplyMsg::Barrier(done_tx)).is_ok() {
            let _ = done_rx.recv();
        }
    }

    /// Spawns the apply + ack stage threads on first use.
    fn ensure_stages(&mut self) {
        if self.stages.is_some() {
            return;
        }
        // The applier's cursor is the ship-from point: after recovery it
        // already covers the recovered prefix (fold + replayed tail).
        self.applied_seen = self.applier.lock().cursor();
        let (apply_tx, apply_rx) = channel::bounded(STAGE_QUEUE_CAP);
        let (ack_tx, ack_rx) = channel::bounded(STAGE_QUEUE_CAP);

        let applier = Arc::clone(&self.applier);
        let apply_ack_tx = ack_tx.clone();
        let apply_meters = self.meters.clone();
        let apply_tracer = self.tracer.clone();
        let apply_hash = self.hash_cell.clone();
        let apply_handle = std::thread::spawn(move || {
            apply_loop::<A>(
                &applier,
                &apply_rx,
                &apply_ack_tx,
                &apply_meters,
                &apply_tracer,
                apply_hash.as_ref(),
            );
        });

        let state = AckState::<A> {
            conns: Arc::clone(&self.conns),
            cfg: self.cfg,
            gate: self.ack_gate.clone(),
            inflight: HashMap::new(),
            pending: VecDeque::new(),
            index: HashMap::new(),
            index_order: VecDeque::new(),
            parked: HashMap::new(),
            bounced: Arc::clone(&self.bounced),
            acks_dropped: Arc::clone(&self.acks_dropped),
            inflight_count: Arc::clone(&self.inflight_count),
            slo: self.slo.clone(),
            slow: self.slow_ring.clone(),
            epoch: self.epoch,
            m: self.meters.clone(),
            t: self.tracer.clone(),
        };
        let ack_handle = std::thread::spawn(move || state.run(&ack_rx));

        self.stages = Some(GatewayStages {
            apply_tx,
            ack_tx,
            apply_handle,
            ack_handle,
        });
    }

    /// Ships to the apply stage, blocking when the channel is full.
    fn ship_apply(&self, msg: ApplyMsg<A>) {
        if let Some(stages) = &self.stages {
            let _ = stages.apply_tx.send(msg);
        }
    }

    /// Ships to the ack stage, blocking when the channel is full.
    fn ship_ack(&self, msg: AckMsg<A>) {
        if let Some(stages) = &self.stages {
            let _ = stages.ack_tx.send(msg);
        }
    }
}

impl<A: App> Drop for ClientGateway<A> {
    fn drop(&mut self) {
        if let Some(stages) = self.stages.take() {
            let GatewayStages {
                apply_tx,
                ack_tx,
                apply_handle,
                ack_handle,
            } = stages;
            // Closing the senders lets both loops observe disconnect;
            // the apply thread's ack sender clone drops when it exits.
            drop(apply_tx);
            drop(ack_tx);
            let _ = apply_handle.join();
            let _ = ack_handle.join();
        }
    }
}

/// Reads `Submit` frames off one client connection until EOF/error.
fn conn_reader<A: App>(conn_id: u64, mut stream: TcpStream, tx: &Sender<(u64, A::Cmd)>) {
    loop {
        match read_frame::<_, ClientRequest<A::Cmd>>(&mut stream) {
            Ok(ClientRequest::Submit { cmd }) => {
                if tx.send((conn_id, cmd)).is_err() {
                    return; // node loop gone: shutting down
                }
            }
            Err(e) => {
                if std::env::var_os("GENCON_NODE_DEBUG").is_some() {
                    eprintln!("[gateway] conn {conn_id} reader exit: {e}");
                }
                return; // disconnect or protocol violation
            }
        }
    }
}

/// The apply stage: walks shipped deltas through the live applier and
/// forwards each entry — with its computed reply — to the ack stage.
fn apply_loop<A: App>(
    applier: &Mutex<Applier<A>>,
    rx: &Receiver<ApplyMsg<A>>,
    ack_tx: &Sender<AckMsg<A>>,
    m: &GatewayMeters,
    t: &Tracer,
    hash: Option<&(HashCell, u64)>,
) {
    // Publish `(applied, state_hash)` at exact applied-count multiples
    // of `every` — every node then publishes for the same counts, which
    // is what makes the pairs comparable across the cluster.
    let maybe_publish = |applier: &Applier<A>| {
        if let Some((cell, every)) = hash {
            let cursor = applier.cursor();
            if cursor > 0 && cursor.is_multiple_of(*every) {
                cell.publish(cursor, applier.app().state_hash());
            }
        }
    };
    while let Ok(msg) = rx.recv() {
        m.apply_depth.record(rx.len() as u64);
        m.apply_depth_now.set(rx.len() as u64);
        match msg {
            ApplyMsg::Delta(entries) => {
                let mut applier = applier.lock();
                let mut last_traced_slot = u64::MAX;
                for (cmd, slot, offset) in entries {
                    let svc_start = t.now_us();
                    let reply = applier.apply(slot, &cmd);
                    maybe_publish(&applier);
                    m.applied.inc();
                    // One `applied` event per slot (the first command's
                    // service time stands in for the slot).
                    if t.enabled() && slot != last_traced_slot {
                        last_traced_slot = slot;
                        t.rec(
                            Stage::Apply,
                            EventKind::Applied,
                            slot,
                            t.now_us().saturating_sub(svc_start),
                        );
                    }
                    if ack_tx
                        .send(AckMsg::Entry {
                            cmd,
                            slot,
                            offset,
                            reply,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
            ApplyMsg::Restore(fs) => {
                let mut applier = applier.lock();
                if let Err(e) = applier.restore(&fs) {
                    eprintln!("[gateway] live app restore failed: {e}");
                } else {
                    // A restore that lands exactly on a boundary stands
                    // in for the applies it skipped.
                    maybe_publish(&applier);
                }
            }
            ApplyMsg::Barrier(done) => {
                let _ = ack_tx.send(AckMsg::Barrier(done));
            }
        }
    }
}

/// Commit coordinates (`slot`, `offset`) and the reply (if computed
/// locally) kept per command for re-acking retries.
type ReackIndex<A> = HashMap<<A as App>::Cmd, (u64, u64, Option<<A as App>::Reply>)>;

/// An applied-but-unacked entry: `(cmd, slot, offset, reply, enq_us)`.
type PendingAck<A> = (<A as App>::Cmd, u64, u64, <A as App>::Reply, u64);

/// The ack stage's working state: owns the sockets and every piece of
/// client-visible bookkeeping.
struct AckState<A: App> {
    conns: Conns,
    cfg: GatewayConfig,
    gate: Option<Arc<AtomicU64>>,
    /// Locally submitted, not yet acked: command →
    /// `(connection, submit timestamp)`.
    inflight: HashMap<A::Cmd, (u64, u64)>,
    /// Applied but not yet acked `(cmd, slot, offset, reply, enq_us)` —
    /// drained in offset order as the durable watermark advances
    /// (immediately, without a gate). `enq_us` is the tracer timestamp
    /// at arrival, so the released `acked` event carries the gate-wait.
    pending: VecDeque<PendingAck<A>>,
    /// Commit coordinates and replies of recently acked commands, for
    /// re-acking client retries of already-committed submissions. The
    /// reply is `None` for commands learned via state transfer (their
    /// replies were computed on another node). Bounded by
    /// [`GatewayConfig::reack_index_cap`]; `index_order` is the eviction
    /// FIFO.
    index: ReackIndex<A>,
    index_order: VecDeque<A::Cmd>,
    /// Retries of commands neither committed nor locally inflight —
    /// typically committed below a state-transfer jump — parked until a
    /// `KnownCommitted` or released `Entry` surfaces them.
    parked: HashMap<A::Cmd, Vec<u64>>,
    bounced: Arc<AtomicU64>,
    acks_dropped: Arc<AtomicU64>,
    inflight_count: Arc<AtomicUsize>,
    slo: Option<SloTracker>,
    slow: Option<SlowCmdRing>,
    /// Same fallback clock as the order side's submit stamps.
    epoch: std::time::Instant,
    m: GatewayMeters,
    t: Tracer,
}

impl<A: App> AckState<A> {
    fn run(mut self, rx: &Receiver<AckMsg<A>>) {
        loop {
            match rx.recv_timeout(ACK_POLL) {
                Ok(msg) => self.handle(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.release();
                    return;
                }
            }
            self.release();
        }
    }

    fn handle(&mut self, msg: AckMsg<A>) {
        match msg {
            AckMsg::Inflight {
                cmd,
                conn,
                submitted_us,
            } => {
                if self.reack(&cmd, conn) {
                    return; // raced past its own commit (belt & braces)
                }
                if self.inflight.insert(cmd, (conn, submitted_us)).is_none() {
                    self.inflight_count.fetch_add(1, Ordering::Relaxed);
                }
            }
            AckMsg::Entry {
                cmd,
                slot,
                offset,
                reply,
            } => {
                self.pending
                    .push_back((cmd, slot, offset, reply, self.t.now_us()));
                // Bound the parked acks: under a healthy gate the queue
                // drains every group-commit window, but a gate that
                // stops advancing (failing disk) must not grow memory
                // with throughput forever. The *newest* entries are
                // dropped — the oldest are the next to become durable.
                // A dropped command is still committed, and its
                // coordinates go straight into the (equally bounded)
                // re-ack index so a client retry after the gate recovers
                // gets answered instead of being swallowed by the
                // replica's dedup.
                while self.pending.len() > self.cfg.reack_index_cap {
                    let (cmd, slot, offset, reply, _) = self.pending.pop_back().expect("over cap");
                    self.acks_dropped.fetch_add(1, Ordering::Relaxed);
                    self.m.dropped.inc();
                    self.index_committed(cmd, slot, offset, Some(reply));
                }
            }
            AckMsg::Retry {
                cmd,
                conn,
                fallback,
            } => {
                if self.reack(&cmd, conn) {
                    return;
                }
                if let Some((owner, _)) = self.inflight.get_mut(&cmd) {
                    // Still awaiting its commit: the newest connection
                    // wins the eventual ack.
                    *owner = conn;
                    return;
                }
                if let Some(resp) = fallback {
                    self.bounced.fetch_add(1, Ordering::Relaxed);
                    let kind = match &resp {
                        ClientResponse::Redirect { .. } => 1,
                        _ => 0,
                    };
                    if kind == 1 {
                        self.m.bounced_redirect.inc();
                    } else {
                        self.m.bounced_backpressure.inc();
                    }
                    self.t
                        .rec(Stage::Ack, EventKind::Bounced, cmd.cmd_key(), kind);
                    self.respond(conn, &resp);
                    return;
                }
                // Dedup-swallowed but not answerable yet: committed below
                // a state-transfer jump (the KnownCommitted note is in
                // flight) or committed remotely and not yet released.
                if self.parked.len() < PARKED_RETRIES_CAP {
                    self.parked.entry(cmd).or_default().push(conn);
                    self.m.parked.inc();
                }
            }
            AckMsg::KnownCommitted(pairs) => {
                for (cmd, slot) in pairs {
                    // The transferred fold knows the commit slot but not
                    // the reply — don't clobber a richer local entry.
                    if !self.index.contains_key(&cmd) {
                        self.index_committed(cmd.clone(), slot, 0, None);
                    }
                    if let Some(waiters) = self.parked.remove(&cmd) {
                        let (slot, offset, reply) = self.index[&cmd].clone();
                        for conn in waiters {
                            self.respond(
                                conn,
                                &ClientResponse::Committed {
                                    cmd: cmd.clone(),
                                    slot,
                                    offset,
                                    reply: reply.clone(),
                                },
                            );
                            self.m.reacks.inc();
                        }
                    }
                }
            }
            AckMsg::Barrier(done) => {
                self.release();
                let _ = done.send(());
            }
        }
    }

    /// Releases pending acks in offset order up to the durable watermark
    /// (everything, when no gate is installed).
    fn release(&mut self) {
        let gate = self
            .gate
            .as_ref()
            .map_or(u64::MAX, |g| g.load(Ordering::SeqCst));
        while self
            .pending
            .front()
            .is_some_and(|(_, _, offset, _, _)| *offset < gate)
        {
            let (cmd, slot, offset, reply, enq_us) =
                self.pending.pop_front().expect("front exists");
            // The gate-wait (time parked behind the durable watermark) is
            // the ack event's detail; the span assembler reports it as
            // `ack_gate_us`.
            self.t.rec(
                Stage::Ack,
                EventKind::Acked,
                slot,
                self.t.now_us().saturating_sub(enq_us),
            );
            self.index_committed(cmd.clone(), slot, offset, Some(reply.clone()));
            if let Some((conn, submitted_us)) = self.inflight.remove(&cmd) {
                self.inflight_count.fetch_sub(1, Ordering::Relaxed);
                // The locally submitted command's full story: stamp the
                // ack (detail = decided slot, the join key into slot
                // spans), classify the e2e against the SLO budget, and
                // offer it to the slow-command exemplar ring.
                let now = if self.t.enabled() {
                    self.t.now_us()
                } else {
                    self.epoch.elapsed().as_micros() as u64
                };
                let e2e = now.saturating_sub(submitted_us);
                self.t
                    .rec(Stage::Ack, EventKind::CmdAcked, cmd.cmd_key(), slot);
                if let Some(slo) = &self.slo {
                    slo.observe(e2e);
                }
                if let Some(ring) = &self.slow {
                    ring.offer(CmdExemplar {
                        cmd: cmd.cmd_key(),
                        e2e_us: e2e,
                        slot,
                        submitted_ts_us: submitted_us,
                        relay_hops: 0,
                    });
                }
                self.respond(
                    conn,
                    &ClientResponse::Committed {
                        cmd: cmd.clone(),
                        slot,
                        offset,
                        reply: Some(reply.clone()),
                    },
                );
                self.m.acked.inc();
            }
            if let Some(waiters) = self.parked.remove(&cmd) {
                for conn in waiters {
                    self.respond(
                        conn,
                        &ClientResponse::Committed {
                            cmd: cmd.clone(),
                            slot,
                            offset,
                            reply: Some(reply.clone()),
                        },
                    );
                    self.m.reacks.inc();
                }
            }
        }
    }

    /// Answers `conn` from the commit index; `false` if the command
    /// isn't indexed.
    fn reack(&mut self, cmd: &A::Cmd, conn: u64) -> bool {
        let Some((slot, offset, reply)) = self.index.get(cmd).cloned() else {
            return false;
        };
        self.respond(
            conn,
            &ClientResponse::Committed {
                cmd: cmd.clone(),
                slot,
                offset,
                reply,
            },
        );
        self.m.reacks.inc();
        true
    }

    /// Records a committed command's coordinates + reply for re-acking
    /// retries, evicting the oldest entries past the cap.
    fn index_committed(&mut self, cmd: A::Cmd, slot: u64, offset: u64, reply: Option<A::Reply>) {
        if self
            .index
            .insert(cmd.clone(), (slot, offset, reply))
            .is_none()
        {
            self.index_order.push_back(cmd);
        }
        while self.index_order.len() > self.cfg.reack_index_cap {
            if let Some(old) = self.index_order.pop_front() {
                self.index.remove(&old);
            }
        }
    }

    fn respond(&self, conn_id: u64, resp: &ClientResponse<A::Cmd, A::Reply>) {
        let mut conns = self.conns.lock();
        let Some(stream) = conns.get_mut(&conn_id) else {
            return; // client went away; the commit stands regardless
        };
        if let Err(e) = write_frame(stream, resp).and_then(|()| stream.flush()) {
            if std::env::var_os("GENCON_NODE_DEBUG").is_some() {
                eprintln!("[gateway] respond to conn {conn_id} failed: {e}");
            }
            conns.remove(&conn_id);
        }
    }
}

impl<A: App> NodeHook<A::Cmd> for ClientGateway<A> {
    fn before_round(&mut self, _round: u64, replica: &mut BatchingReplica<A::Cmd>) {
        self.ensure_stages();
        while let Ok((conn_id, cmd)) = self.submissions.try_recv() {
            // The submit stamp covers every arrival — bounced commands
            // trace too (their span ends at the `bounced` event).
            let submitted_us = self.stamp_us();
            if self.tracer.enabled() {
                self.tracer
                    .rec(Stage::Ingest, EventKind::Submitted, cmd.cmd_key(), conn_id);
            }
            if let Some(to) = self.cfg.redirect_to {
                // The ack stage checks its commit index before bouncing:
                // a retry of a committed command is re-acked, not
                // redirected.
                self.ship_ack(AckMsg::Retry {
                    cmd: cmd.clone(),
                    conn: conn_id,
                    fallback: Some(ClientResponse::Redirect { cmd, to }),
                });
                continue;
            }
            if replica.queued() >= self.cfg.backpressure_limit {
                let queued = replica.queued() as u64;
                self.ship_ack(AckMsg::Retry {
                    cmd: cmd.clone(),
                    conn: conn_id,
                    fallback: Some(ClientResponse::Backpressure { cmd, queued }),
                });
                continue;
            }
            if replica.submit(cmd.clone()) {
                if self.tracer.enabled() {
                    self.tracer.rec(
                        Stage::Ingest,
                        EventKind::CmdQueued,
                        cmd.cmd_key(),
                        replica.queued() as u64,
                    );
                }
                self.ship_ack(AckMsg::Inflight {
                    cmd,
                    conn: conn_id,
                    submitted_us,
                });
            } else {
                // Dedup-swallowed: already committed (re-ack from the
                // index), still inflight (adopt the new connection), or
                // committed below a transfer jump (park).
                self.ship_ack(AckMsg::Retry {
                    cmd,
                    conn: conn_id,
                    fallback: None,
                });
            }
        }
    }

    fn after_round(&mut self, _round: u64, replica: &mut BatchingReplica<A::Cmd>) {
        self.ensure_stages();
        let base = replica.applied_base() as u64;
        let limit = replica.applied_len() as u64;
        if self.applied_seen < base {
            // Compaction can't outrun the local applier in practice;
            // clamp defensively so indexing below never underflows.
            self.applied_seen = base;
        }
        if self.applied_seen < limit {
            let applied = replica.applied();
            let slots = replica.applied_slots();
            let delta: Vec<(A::Cmd, u64, u64)> = (self.applied_seen..limit)
                .map(|offset| {
                    let i = (offset - base) as usize;
                    (applied[i].clone(), slots[i], offset)
                })
                .collect();
            self.applied_seen = limit;
            if self.tracer.enabled() {
                let depth = self.stages.as_ref().map_or(0, |s| s.apply_tx.len() as u64);
                let mut last = u64::MAX;
                for &(_, slot, _) in &delta {
                    if slot != last {
                        last = slot;
                        self.tracer
                            .rec(Stage::Apply, EventKind::ApplyQueued, slot, depth);
                    }
                }
            }
            self.ship_apply(ApplyMsg::Delta(delta));
        }
        if let Some(stages) = &self.stages {
            let depth = stages.apply_tx.len() as u64;
            self.meters.apply_depth.record(depth);
            self.meters.apply_depth_now.set(depth);
        }
    }

    fn snapshot_installed(
        &mut self,
        _manifest: &SnapshotManifest,
        _state: &[u8],
        fs: &FoldedState<A::Cmd>,
        _replica: &mut BatchingReplica<A::Cmd>,
    ) {
        self.ensure_stages();
        // A state transfer replaced the replica's log wholesale; restore
        // the live app from the transferred fold and fast-forward the
        // shipping cursor past the jump. Pending acks for offsets below
        // the fold were produced before the jump and stay answerable
        // (their replies were computed at apply time). The fold's dedup
        // window seeds the re-ack index so retries of commands committed
        // below the jump are answered instead of parked forever.
        self.applied_seen = self.applied_seen.max(fs.applied_len);
        self.ship_apply(ApplyMsg::Restore(Box::new(fs.clone())));
        self.ship_ack(AckMsg::KnownCommitted(fs.dedup.clone()));
    }

    fn finish(&mut self, _replica: &mut BatchingReplica<A::Cmd>) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::paxos;
    use gencon_app::{KvApp, KvCmd, KvOp, KvReply, LogApp};
    use gencon_smr::Batch;

    fn test_replica(cap: usize) -> BatchingReplica<u64> {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), cap, usize::MAX).unwrap()
    }

    fn connect_and_submit(addr: SocketAddr, cmds: &[u64]) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        for &cmd in cmds {
            write_frame(&mut stream, &ClientRequest::Submit { cmd }).unwrap();
        }
        stream
    }

    fn drain_submissions(gw: &mut ClientGateway<LogApp<u64>>, replica: &mut BatchingReplica<u64>) {
        // Connection readers and the ack stage run on their own threads;
        // poll briefly.
        for _ in 0..100 {
            gw.before_round(1, replica);
            gw.drain();
            if replica.queued() + gw.inflight() > 0 || gw.bounced() > 0 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn submissions_reach_the_replica() {
        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let mut replica = test_replica(8);
        let _conn = connect_and_submit(gw.local_addr(), &[11, 22]);
        for _ in 0..100 {
            gw.before_round(1, &mut replica);
            if replica.queued() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(replica.queued(), 2);
        gw.drain();
        assert_eq!(gw.inflight(), 2);
    }

    #[test]
    fn backpressure_bounces_instead_of_queueing() {
        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig {
                backpressure_limit: 0,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let mut replica = test_replica(8);
        let mut conn = connect_and_submit(gw.local_addr(), &[33]);
        drain_submissions(&mut gw, &mut replica);
        let resp: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        assert_eq!(resp, ClientResponse::Backpressure { cmd: 33, queued: 0 });
        assert_eq!(replica.queued(), 0);
        gw.drain();
        assert_eq!(gw.inflight(), 0);
    }

    /// A client retry of an already-committed command must be re-acked
    /// from the commit index — the replica's dedup swallows the
    /// resubmission, so without the index the client would hang forever.
    #[test]
    fn retry_of_committed_command_is_reacked_with_its_reply() {
        use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
        use gencon_types::Round;

        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        // A single-replica log (Paxos n = 1): commits without peers when
        // driven by hand, which is all this unit test needs.
        let spec = paxos::<Batch<u64>>(1, 0, ProcessId::new(0)).unwrap();
        let mut replica =
            BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 4, usize::MAX).unwrap();

        let mut conn = connect_and_submit(gw.local_addr(), &[77]);
        drain_submissions(&mut gw, &mut replica);
        assert_eq!(replica.queued(), 1, "submission reached the replica");
        for round in 1..=20u64 {
            let r = Round::new(round);
            gw.before_round(round, &mut replica);
            let out = replica.send(r);
            let mut heard: HeardOf<_> = HeardOf::empty(1);
            if let Outgoing::Broadcast(m) = out {
                heard.put(ProcessId::new(0), m);
            }
            replica.receive(r, &heard);
            gw.after_round(round, &mut replica);
            if !replica.applied().is_empty() {
                break;
            }
        }
        assert_eq!(replica.applied(), &[77], "single-replica log commits");
        let first: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        let ClientResponse::Committed {
            cmd, slot, offset, ..
        } = first
        else {
            panic!("expected a commit ack, got {first:?}");
        };
        assert_eq!((cmd, offset), (77, 0));

        // The retry: the replica dedups it, but the gateway re-acks with
        // the same coordinates. Poll before_round until the retry has
        // drained through the connection reader and been answered.
        write_frame(&mut conn, &ClientRequest::Submit { cmd: 77u64 }).unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_millis(20)))
            .unwrap();
        let mut reack = None;
        for _ in 0..200 {
            gw.before_round(100, &mut replica);
            if let Ok(resp) = read_frame::<_, ClientResponse<u64>>(&mut conn) {
                reack = Some(resp);
                break;
            }
        }
        let reack = reack.expect("retry re-acked within the polling budget");
        assert_eq!(
            reack,
            ClientResponse::Committed {
                cmd: 77,
                slot,
                offset: 0,
                reply: Some(0),
            }
        );
        assert_eq!(replica.applied(), &[77], "no duplicate apply");
        gw.drain();
        assert_eq!(gw.applier().cursor(), 1, "the live app applied it once");
    }

    #[test]
    fn follower_mode_redirects() {
        let mut gw = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig {
                redirect_to: Some(ProcessId::new(0)),
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let mut replica = test_replica(8);
        let mut conn = connect_and_submit(gw.local_addr(), &[44]);
        drain_submissions(&mut gw, &mut replica);
        let resp: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        assert_eq!(
            resp,
            ClientResponse::Redirect {
                cmd: 44,
                to: ProcessId::new(0)
            }
        );
        assert_eq!(replica.queued(), 0);
    }

    /// End-to-end kv over the gateway: a put then a get commit, and the
    /// get's ack carries the put's value as its app reply.
    #[test]
    fn kv_acks_carry_app_replies() {
        use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
        use gencon_types::Round;

        let mut gw = ClientGateway::<KvApp>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let spec = paxos::<Batch<KvCmd>>(1, 0, ProcessId::new(0)).unwrap();
        let mut replica =
            BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 4, usize::MAX).unwrap();

        let put = KvCmd {
            id: 1,
            op: KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        };
        let get = KvCmd {
            id: 2,
            op: KvOp::Get { key: b"k".to_vec() },
        };
        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        write_frame(&mut conn, &ClientRequest::Submit { cmd: put.clone() }).unwrap();
        write_frame(&mut conn, &ClientRequest::Submit { cmd: get.clone() }).unwrap();
        for _ in 0..100 {
            gw.before_round(1, &mut replica);
            if replica.queued() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for round in 1..=30u64 {
            let r = Round::new(round);
            gw.before_round(round, &mut replica);
            let out = replica.send(r);
            let mut heard: HeardOf<_> = HeardOf::empty(1);
            if let Outgoing::Broadcast(m) = out {
                heard.put(ProcessId::new(0), m);
            }
            replica.receive(r, &heard);
            gw.after_round(round, &mut replica);
            if replica.applied_len() >= 2 {
                break;
            }
        }
        let mut replies = std::collections::HashMap::new();
        for _ in 0..2 {
            let resp: ClientResponse<KvCmd, KvReply> = read_frame(&mut conn).unwrap();
            let ClientResponse::Committed { cmd, reply, .. } = resp else {
                panic!("expected commits");
            };
            replies.insert(cmd.id, reply.expect("app reply attached"));
        }
        assert_eq!(replies[&1], KvReply::Stored { replaced: false });
        assert_eq!(replies[&2], KvReply::Value(Some(b"v".to_vec())));
        gw.drain();
        assert_eq!(gw.applier().app().len(), 1);
    }
}
