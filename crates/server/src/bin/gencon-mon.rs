//! `gencon-mon` — the cluster-wide monitor and watchdog.
//!
//! ```bash
//! gencon-mon --nodes 127.0.0.1:7900,127.0.0.1:7901,127.0.0.1:7902,127.0.0.1:7903 \
//!   [--interval-ms 500] [--once | --polls N] [--out report.json] \
//!   [--connect-timeout-ms 500] [--io-timeout-ms 1000] \
//!   [--stall-polls 3] [--straggler-slots 2048] [--straggler-rounds 64]
//! ```
//!
//! Given every node's **admin** address (`gencon-server --admin-addr`),
//! the monitor polls `status`/`rates`/`hash` each interval, assembles
//! one JSON cluster report per poll — round skew, per-node watermark
//! waterfall (committed / applied / durable gate), derived rates, the
//! peer-lag matrix, and state-hash agreement at the max applied count
//! common to all reachable nodes — and runs the watchdog described in
//! [`gencon_server::mon`]. Reports go to stdout (and `--out`, rewritten
//! each poll so the file always holds the latest view); watchdog alerts
//! go to stderr as structured JSON lines the moment they fire.
//!
//! `--once` renders a single report and exits with status 1 if any
//! alert fired (the CI assertion mode); `--polls N` stops after N
//! polls; the default runs until killed.

use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use gencon_server::cli::{flag_value, parse_flag, required_flag};
use gencon_server::mon::{MonConfig, Monitor};

const BIN: &str = "gencon-mon";
const USAGE: &str = "gencon-mon --nodes admin:port,admin:port,... \
     [--interval-ms 500] [--once | --polls N] [--out FILE]";

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag(BIN, args, flag, default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: Vec<SocketAddr> = required_flag(BIN, &args, "--nodes", USAGE)
        .split(',')
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("gencon-mon: bad admin address {s}");
                exit(2);
            })
        })
        .collect();
    if nodes.is_empty() {
        eprintln!("gencon-mon: --nodes needs at least one admin address");
        exit(2);
    }
    let cfg = MonConfig {
        interval: Duration::from_millis(parse(&args, "--interval-ms", 500)),
        connect_timeout: Duration::from_millis(parse(&args, "--connect-timeout-ms", 500)),
        io_timeout: Duration::from_millis(parse(&args, "--io-timeout-ms", 1_000)),
        stall_polls: parse(&args, "--stall-polls", 3),
        straggler_slots: parse(&args, "--straggler-slots", 2_048),
        straggler_rounds: parse(&args, "--straggler-rounds", 64),
    };
    let once = args.iter().any(|a| a == "--once");
    let polls: u64 = parse(&args, "--polls", if once { 1 } else { u64::MAX });
    let out = flag_value(&args, "--out");

    let mut mon = Monitor::new(nodes, cfg);
    let mut alerts_total: u64 = 0;
    for i in 0..polls {
        let report = mon.poll_once();
        for alert in &report.alerts {
            eprintln!("{}", alert.to_json());
        }
        alerts_total += report.alerts.len() as u64;
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("gencon-mon: cannot write report to {path}: {e}");
            }
        }
        if i + 1 < polls {
            std::thread::sleep(mon.interval());
        }
    }
    if once && alerts_total > 0 {
        exit(1);
    }
}
