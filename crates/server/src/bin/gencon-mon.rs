//! `gencon-mon` — the cluster-wide monitor and watchdog.
//!
//! ```bash
//! gencon-mon --nodes 127.0.0.1:7900,127.0.0.1:7901,127.0.0.1:7902,127.0.0.1:7903 \
//!   [--interval-ms 500] [--once | --polls N] [--out report.json] \
//!   [--connect-timeout-ms 500] [--io-timeout-ms 1000] \
//!   [--stall-polls 3] [--straggler-slots 2048] [--straggler-rounds 64]
//! ```
//!
//! Given every node's **admin** address (`gencon-server --admin-addr`),
//! the monitor polls `status`/`rates`/`hash` each interval, assembles
//! one JSON cluster report per poll — round skew, per-node watermark
//! waterfall (committed / applied / durable gate), derived rates, the
//! peer-lag matrix, and state-hash agreement at the max applied count
//! common to all reachable nodes — and runs the watchdog described in
//! [`gencon_server::mon`]. Reports go to stdout (and `--out`, rewritten
//! each poll so the file always holds the latest view); watchdog alerts
//! go to stderr as structured JSON lines the moment they fire.
//!
//! `--once` renders a single report and exits with status 1 if any
//! alert fired (the CI assertion mode); `--polls N` stops after N
//! polls; the default runs until killed.
//!
//! ## `trace-pull` — the cross-node slot autopsy
//!
//! ```bash
//! gencon-mon trace-pull --nodes admin:port,... \
//!   [--cmds] [--spans-window 65536] [--clock-samples 8] [--out CLUSTER_SPANS.jsonl]
//! ```
//!
//! Estimates each node's recorder-clock offset from `--clock-samples`
//! round-trips of the admin `clock` command (minimum-RTT sample wins;
//! the ± uncertainty rides along in the output), pulls each node's
//! `spans`, and stitches them by slot into cluster autopsies: one JSON
//! line per [`ClusterSlotSpan`](gencon_trace::ClusterSlotSpan) — decide
//! skew, quorum wait, propose fan-out, slowest-voucher attribution and
//! the per-slot critical path — followed by one `{"summary":…}` line
//! with percentiles and every node's clock offset. Exits 1 when no
//! span could be stitched (the CI assertion mode).
//!
//! With `--cmds` the pull is command-scoped instead: each node's
//! `cmds` and `slowest` answers are stitched into one
//! [`ClusterCmdSpan`](gencon_trace::ClusterCmdSpan) JSON line per
//! command — relay hops mapped across nodes with the clock uncertainty
//! carried — and the summary line splits e2e percentiles by
//! coordinator-path vs relay-path and merges the slow-command
//! exemplars cluster-wide. Exits 1 when no command could be stitched.

use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use gencon_server::cli::{flag_value, parse_flag, required_flag};
use gencon_server::mon::{
    trace_pull, trace_pull_cmds, MonConfig, Monitor, CLOCK_SAMPLES_DEFAULT,
    TRACE_PULL_WINDOW_DEFAULT,
};

const BIN: &str = "gencon-mon";
const USAGE: &str = "gencon-mon [trace-pull] --nodes admin:port,admin:port,... \
     [--interval-ms 500] [--once | --polls N] [--out FILE] \
     [--spans-window N] [--clock-samples K]";

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag(BIN, args, flag, default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: Vec<SocketAddr> = required_flag(BIN, &args, "--nodes", USAGE)
        .split(',')
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("gencon-mon: bad admin address {s}");
                exit(2);
            })
        })
        .collect();
    if nodes.is_empty() {
        eprintln!("gencon-mon: --nodes needs at least one admin address");
        exit(2);
    }
    let cfg = MonConfig {
        interval: Duration::from_millis(parse(&args, "--interval-ms", 500)),
        connect_timeout: Duration::from_millis(parse(&args, "--connect-timeout-ms", 500)),
        io_timeout: Duration::from_millis(parse(&args, "--io-timeout-ms", 1_000)),
        stall_polls: parse(&args, "--stall-polls", 3),
        straggler_slots: parse(&args, "--straggler-slots", 2_048),
        straggler_rounds: parse(&args, "--straggler-rounds", 64),
        slo_burn_max: parse(&args, "--slo-burn-max", 2.0),
        slo_window_short: parse(&args, "--slo-window-short", 2),
        slo_window_long: parse(&args, "--slo-window-long", 8),
    };
    let once = args.iter().any(|a| a == "--once");
    let polls: u64 = parse(&args, "--polls", if once { 1 } else { u64::MAX });
    let out = flag_value(&args, "--out");

    if args.iter().any(|a| a == "trace-pull") {
        let window: usize = parse(&args, "--spans-window", TRACE_PULL_WINDOW_DEFAULT);
        let samples: u32 = parse(&args, "--clock-samples", CLOCK_SAMPLES_DEFAULT);
        let (body, stitched) = if args.iter().any(|a| a == "--cmds") {
            let pull = trace_pull_cmds(&nodes, window, samples, &cfg);
            let mut body = String::new();
            for span in &pull.spans {
                body.push_str(&span.to_json());
                body.push('\n');
            }
            body.push_str(&format!("{{\"summary\":{}}}\n", pull.summary_json()));
            (body, pull.spans.len())
        } else {
            let pull = trace_pull(&nodes, window, samples, &cfg);
            let mut body = String::new();
            for span in &pull.spans {
                body.push_str(&span.to_json());
                body.push('\n');
            }
            body.push_str(&format!("{{\"summary\":{}}}\n", pull.summary_json()));
            (body, pull.spans.len())
        };
        print!("{body}");
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("gencon-mon: cannot write autopsy to {path}: {e}");
            }
        }
        if stitched == 0 {
            eprintln!("gencon-mon: trace-pull stitched no spans");
            exit(1);
        }
        return;
    }

    let mut mon = Monitor::new(nodes, cfg);
    let mut alerts_total: u64 = 0;
    for i in 0..polls {
        let report = mon.poll_once();
        for alert in &report.alerts {
            eprintln!("{}", alert.to_json());
        }
        alerts_total += report.alerts.len() as u64;
        let json = report.to_json();
        println!("{json}");
        if let Some(path) = &out {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("gencon-mon: cannot write report to {path}: {e}");
            }
        }
        if i + 1 < polls {
            std::thread::sleep(mon.interval());
        }
    }
    if once && alerts_total > 0 {
        exit(1);
    }
}
