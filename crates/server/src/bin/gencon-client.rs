//! `gencon-client` — closed-loop load against a `gencon-server` node.
//!
//! ```bash
//! gencon-client --server 127.0.0.1:7000 --count 10000 \
//!   [--workload log|kv] [--keys 1024] [--value-bytes 64] \
//!   [--clients 8] [--outstanding 16] [--id 0] [--json] \
//!   [--servers 127.0.0.1:7000,127.0.0.1:7001,...]   # for Redirect handling
//! ```
//!
//! Runs `--clients` logical clients, each keeping `--outstanding` commands
//! in flight, until `--count` commands have been acked as committed.
//! Reports wall-clock throughput and exact submit→commit latency
//! percentiles (sorted-sample, in microseconds). Backpressure bounces
//! are retried after a bounded exponential backoff with deterministic
//! jitter (1 ms doubling to a 64 ms ceiling, equal-jittered by a hash
//! of the bounce count so concurrent clients desynchronise without any
//! RNG state); redirects reconnect to the named server when `--servers`
//! is given.
//!
//! `--workload kv` drives a `--app kv` server end-to-end: each client
//! interleaves puts and gets over a `--keys`-sized keyspace and the acks
//! carry real [`KvReply`] payloads (get values, cas outcomes), which the
//! client tallies — the full request/response path, not just append-acks.
//!
//! `--json` replaces the human-readable report with a single JSON object
//! on stdout (counts, wall clock, throughput, latency percentiles,
//! bounce tallies, total backoff wait, kv hit/miss counts) for scripted
//! harnesses and CI.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::process::exit;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver};
use gencon_app::{KvCmd, KvOp, KvReply};
use gencon_net::Wire;
use gencon_server::cli::{flag_value, parse_flag};
use gencon_server::{read_frame, write_frame, ClientRequest, ClientResponse};
use gencon_types::Value;

/// 16-bit namespace, 16-bit client, 32-bit sequence (mirrors
/// `gencon_load::encode_cmd` without the dependency).
fn encode_cmd(namespace: u16, client: u16, seq: u32) -> u64 {
    ((namespace as u64) << 48) | ((client as u64) << 32) | seq as u64
}

fn decode_client(cmd: u64) -> u16 {
    (cmd >> 32) as u16
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag("gencon-client", args, flag, default)
}

/// Backpressure retry delay: bounded exponential over the consecutive
/// bounce `streak` (1 ms doubling to a 64 ms ceiling) with equal
/// jitter — the delay lands in `[exp/2, exp]`, the jitter half picked
/// by a mix of the global bounce count. Deterministic (same bounce
/// sequence, same delays) yet desynchronising, since concurrent
/// clients reach different bounce counts.
fn backoff_delay(streak: u32, bounces: u64) -> Duration {
    const BASE_US: u64 = 1_000;
    const CAP_US: u64 = 64_000;
    let exp = (BASE_US << streak.min(6)).min(CAP_US);
    // SplitMix64-style finalizer as the jitter hash.
    let mut x = bounces.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    Duration::from_micros(exp / 2 + x % (exp / 2 + 1))
}

/// A connected submit stream plus the channel its reader thread feeds.
type Conn<V, R> = (TcpStream, Receiver<(ClientResponse<V, R>, Instant)>);

/// Connects and spawns a reader thread forwarding responses with their
/// arrival instant.
fn connect<V, R>(addr: SocketAddr) -> Conn<V, R>
where
    V: Value + Wire,
    R: Clone + PartialEq + std::fmt::Debug + Send + Wire + 'static,
{
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("gencon-client: cannot connect {addr}: {e}");
        exit(1);
    });
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("gencon-client: cannot clone the socket for reading: {e}");
        exit(1);
    });
    let (tx, rx) = channel::unbounded();
    std::thread::spawn(move || loop {
        match read_frame::<_, ClientResponse<V, R>>(&mut reader) {
            Ok(resp) => {
                if tx.send((resp, Instant::now())).is_err() {
                    return;
                }
            }
            Err(_) => return, // disconnected
        }
    });
    (stream, rx)
}

struct Shared {
    servers: Vec<SocketAddr>,
    namespace: u16,
    clients: u16,
    outstanding: u32,
    count: u64,
    ack_timeout: Duration,
}

/// What one closed-loop run measured; rendered human-readable or as one
/// JSON object (`--json`).
struct RunReport {
    acked: u64,
    wall_s: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
    backpressured: u64,
    redirects: u64,
    retry_wait: Duration,
}

impl RunReport {
    fn cmds_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.acked as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn print_human(&self) {
        println!(
            "acked {} commands in {:.3}s — {:.0} cmds/sec",
            self.acked,
            self.wall_s,
            self.cmds_per_sec()
        );
        println!(
            "latency µs: p50 {}  p90 {}  p99 {}  max {}",
            self.p50_us, self.p90_us, self.p99_us, self.max_us
        );
        if self.backpressured + self.redirects > 0 {
            println!(
                "bounces: {} backpressure, {} redirect — {:.1}ms total backoff wait",
                self.backpressured,
                self.redirects,
                self.retry_wait.as_secs_f64() * 1_000.0
            );
        }
    }

    /// One JSON object; `extra` is appended verbatim inside the braces
    /// (workload-specific tallies), empty for none.
    fn to_json(&self, extra: &str) -> String {
        format!(
            "{{\"acked\":{},\"wall_s\":{:.3},\"cmds_per_sec\":{:.0},\
             \"latency_us\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},\
             \"backpressure_bounces\":{},\"redirect_bounces\":{},\
             \"retry_wait_us\":{}{extra}}}",
            self.acked,
            self.wall_s,
            self.cmds_per_sec(),
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
            self.backpressured,
            self.redirects,
            self.retry_wait.as_micros(),
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let server: SocketAddr = flag_value(&args, "--server")
        .unwrap_or_else(|| {
            eprintln!(
                "usage: gencon-client --server a:p --count N [--workload log|kv] \
                 [--clients C] [--outstanding K]"
            );
            exit(2);
        })
        .parse()
        .unwrap_or_else(|_| {
            eprintln!("gencon-client: bad --server address");
            exit(2);
        });
    let servers: Vec<SocketAddr> = flag_value(&args, "--servers")
        .map(|raw| {
            raw.split(',')
                .map(|s| {
                    s.parse().unwrap_or_else(|_| {
                        eprintln!("gencon-client: bad address in --servers: {s}");
                        exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let shared = Shared {
        servers,
        namespace: parse(&args, "--id", 0),
        clients: parse(&args, "--clients", 8),
        outstanding: parse(&args, "--outstanding", 16),
        count: parse(&args, "--count", 10_000),
        ack_timeout: Duration::from_secs(parse(&args, "--timeout-secs", 60)),
    };
    if shared.clients == 0 || shared.outstanding == 0 || shared.count == 0 {
        eprintln!("gencon-client: --clients, --outstanding and --count must be positive");
        exit(2);
    }

    let json = args.iter().any(|a| a == "--json");
    match flag_value(&args, "--workload").as_deref().unwrap_or("log") {
        "log" => {
            let ns = shared.namespace;
            let report = run::<u64, u64>(
                server,
                &shared,
                |client, seq| encode_cmd(ns, client, seq),
                |cmd| decode_client(*cmd),
                |_reply| {},
            );
            if json {
                println!("{}", report.to_json(""));
            } else {
                report.print_human();
            }
        }
        "kv" => {
            let keys: u64 = parse(&args, "--keys", 1_024).max(1);
            // Values embed the 8-byte request id, so the floor is 8.
            let value_bytes: usize = parse(&args, "--value-bytes", 64).max(8);
            let ns = shared.namespace;
            let mut hits: u64 = 0;
            let mut misses: u64 = 0;
            let make = move |client: u16, seq: u32| -> KvCmd {
                let id = encode_cmd(ns, client, seq);
                // Deterministic key choice spread across the keyspace;
                // every 4th op is a linearized read.
                let key = format!("k{:08}", id.wrapping_mul(0x9E37_79B9) % keys).into_bytes();
                let op = if seq % 4 == 3 {
                    KvOp::Get { key }
                } else {
                    let mut value = vec![0u8; value_bytes];
                    value[..8].copy_from_slice(&id.to_le_bytes());
                    KvOp::Put { key, value }
                };
                KvCmd { id, op }
            };
            let report = run::<KvCmd, KvReply>(
                server,
                &shared,
                make,
                |cmd| decode_client(cmd.id),
                |reply| match reply {
                    Some(KvReply::Value(Some(_))) => hits += 1,
                    Some(KvReply::Value(None)) => misses += 1,
                    _ => {}
                },
            );
            if json {
                let extra = format!(",\"kv_get_hits\":{hits},\"kv_get_misses\":{misses}");
                println!("{}", report.to_json(&extra));
            } else {
                report.print_human();
                println!("kv gets: {hits} hits, {misses} misses");
            }
        }
        other => {
            eprintln!("gencon-client: unknown --workload {other} (log|kv)");
            exit(2);
        }
    }
}

fn run<V, R>(
    server: SocketAddr,
    shared: &Shared,
    make_cmd: impl Fn(u16, u32) -> V,
    client_of: impl Fn(&V) -> u16,
    mut on_reply: impl FnMut(Option<R>),
) -> RunReport
where
    V: Value + Wire,
    R: Clone + PartialEq + std::fmt::Debug + Send + Wire + 'static,
{
    let (mut stream, mut responses) = connect::<V, R>(server);
    let mut next_seq = vec![0u32; shared.clients as usize];
    // Issue exactly `count` distinct commands per run: once acks drain
    // the windows, the run ends with no stray in-flight extras — which
    // is what lets scripts pin a cluster's exact final command count
    // (`--stop-after` / `--hash-at` on the servers).
    let mut issued: u64 = 0;
    let mut submitted: HashMap<V, Instant> = HashMap::new();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(shared.count as usize);
    let mut backpressured: u64 = 0;
    let mut redirects: u64 = 0;
    let mut bp_streak: u32 = 0;
    let mut retry_wait = Duration::ZERO;
    let started = Instant::now();

    // Retries and redirect re-submissions keep the first submit instant:
    // the client reports end-to-end latency, bounces included.
    let submit = |stream: &mut TcpStream, submitted: &mut HashMap<V, Instant>, cmd: V| {
        submitted.entry(cmd.clone()).or_insert_with(Instant::now);
        if write_frame(stream, &ClientRequest::Submit { cmd }).is_err() {
            eprintln!("gencon-client: server connection lost");
            exit(1);
        }
    };

    // Prime every client's window.
    'prime: for c in 0..shared.clients {
        for _ in 0..shared.outstanding {
            if issued >= shared.count {
                break 'prime;
            }
            let cmd = make_cmd(c, next_seq[c as usize]);
            next_seq[c as usize] += 1;
            issued += 1;
            submit(&mut stream, &mut submitted, cmd);
        }
    }

    while (latencies_us.len() as u64) < shared.count {
        let Ok((resp, at)) = responses.recv_timeout(shared.ack_timeout) else {
            eprintln!(
                "gencon-client: no response for {:?} ({} of {} acked) — aborting",
                shared.ack_timeout,
                latencies_us.len(),
                shared.count
            );
            exit(1);
        };
        match resp {
            ClientResponse::Committed { cmd, reply, .. } => {
                let Some(sent) = submitted.remove(&cmd) else {
                    continue; // duplicate ack
                };
                bp_streak = 0; // the server is accepting again
                on_reply(reply);
                latencies_us.push(at.duration_since(sent).as_micros() as u64);
                // Closed loop: the acked client's window refills, until
                // the issuance budget is spent.
                if issued < shared.count {
                    let c = client_of(&cmd);
                    let next = make_cmd(c, next_seq[c as usize]);
                    next_seq[c as usize] += 1;
                    issued += 1;
                    submit(&mut stream, &mut submitted, next);
                }
            }
            ClientResponse::Backpressure { cmd, .. } => {
                backpressured += 1;
                let delay = backoff_delay(bp_streak, backpressured);
                bp_streak = bp_streak.saturating_add(1);
                retry_wait += delay;
                std::thread::sleep(delay);
                submit(&mut stream, &mut submitted, cmd);
            }
            ClientResponse::Redirect { cmd, to } => {
                redirects += 1;
                let Some(&target) = shared.servers.get(to.index()) else {
                    eprintln!("gencon-client: redirected to process {to} but --servers not given");
                    exit(1);
                };
                let (s, r) = connect::<V, R>(target);
                stream = s;
                responses = r;
                // Re-submit everything in flight on the new connection.
                let inflight: Vec<V> = submitted.keys().cloned().collect();
                for c in inflight {
                    submit(&mut stream, &mut submitted, c);
                }
                let _ = cmd; // already among the re-submitted in-flight set
            }
        }
    }

    let wall = started.elapsed();
    latencies_us.sort_unstable();
    let q = |p: f64| -> u64 {
        let idx =
            ((p * latencies_us.len() as f64).ceil() as usize).clamp(1, latencies_us.len()) - 1;
        latencies_us[idx]
    };
    RunReport {
        acked: latencies_us.len() as u64,
        wall_s: wall.as_secs_f64(),
        p50_us: q(0.50),
        p90_us: q(0.90),
        p99_us: q(0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
        backpressured,
        redirects,
        retry_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential_with_equal_jitter() {
        for streak in 0..20u32 {
            for bounces in 1..50u64 {
                let d = backoff_delay(streak, bounces).as_micros() as u64;
                let exp = (1_000u64 << streak.min(6)).min(64_000);
                assert!(d >= exp / 2 && d <= exp, "streak {streak}: {d} vs {exp}");
            }
        }
        // Deterministic: same inputs, same delay.
        assert_eq!(backoff_delay(3, 7), backoff_delay(3, 7));
        // Jitter actually varies across bounce counts.
        let delays: std::collections::HashSet<_> =
            (1..20u64).map(|b| backoff_delay(6, b)).collect();
        assert!(delays.len() > 1, "jitter never varied");
    }
}
