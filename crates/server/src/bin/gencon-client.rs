//! `gencon-client` — closed-loop load against a `gencon-server` node.
//!
//! ```bash
//! gencon-client --server 127.0.0.1:7000 --count 10000 \
//!   [--clients 8] [--outstanding 16] [--id 0] \
//!   [--servers 127.0.0.1:7000,127.0.0.1:7001,...]   # for Redirect handling
//! ```
//!
//! Runs `--clients` logical clients, each keeping `--outstanding` commands
//! in flight, until `--count` commands have been acked as committed.
//! Reports wall-clock throughput and exact submit→commit latency
//! percentiles (sorted-sample, in microseconds). Backpressure bounces are
//! retried after a pause; redirects reconnect to the named server when
//! `--servers` is given.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::process::exit;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver};
use gencon_server::cli::{flag_value, parse_flag};
use gencon_server::{read_frame, write_frame, ClientRequest, ClientResponse};

/// 16-bit namespace, 16-bit client, 32-bit sequence (mirrors
/// `gencon_load::encode_cmd` without the dependency).
fn encode_cmd(namespace: u16, client: u16, seq: u32) -> u64 {
    ((namespace as u64) << 48) | ((client as u64) << 32) | seq as u64
}

fn decode_client(cmd: u64) -> u16 {
    (cmd >> 32) as u16
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag("gencon-client", args, flag, default)
}

/// Connects and spawns a reader thread forwarding responses with their
/// arrival instant.
fn connect(addr: SocketAddr) -> (TcpStream, Receiver<(ClientResponse<u64>, Instant)>) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("gencon-client: cannot connect {addr}: {e}");
        exit(1);
    });
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("gencon-client: cannot clone the socket for reading: {e}");
        exit(1);
    });
    let (tx, rx) = channel::unbounded();
    std::thread::spawn(move || loop {
        match read_frame::<_, ClientResponse<u64>>(&mut reader) {
            Ok(resp) => {
                if tx.send((resp, Instant::now())).is_err() {
                    return;
                }
            }
            Err(_) => return, // disconnected
        }
    });
    (stream, rx)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let server: SocketAddr = flag_value(&args, "--server")
        .unwrap_or_else(|| {
            eprintln!(
                "usage: gencon-client --server a:p --count N [--clients C] [--outstanding K]"
            );
            exit(2);
        })
        .parse()
        .unwrap_or_else(|_| {
            eprintln!("gencon-client: bad --server address");
            exit(2);
        });
    let servers: Vec<SocketAddr> = flag_value(&args, "--servers")
        .map(|raw| {
            raw.split(',')
                .map(|s| {
                    s.parse().unwrap_or_else(|_| {
                        eprintln!("gencon-client: bad address in --servers: {s}");
                        exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let namespace: u16 = parse(&args, "--id", 0);
    let clients: u16 = parse(&args, "--clients", 8);
    let outstanding: u32 = parse(&args, "--outstanding", 16);
    let count: u64 = parse(&args, "--count", 10_000);
    let ack_timeout = Duration::from_secs(parse(&args, "--timeout-secs", 60));
    if clients == 0 || outstanding == 0 || count == 0 {
        eprintln!("gencon-client: --clients, --outstanding and --count must be positive");
        exit(2);
    }

    let (mut stream, mut responses) = connect(server);
    let mut next_seq = vec![0u32; clients as usize];
    let mut submitted: HashMap<u64, Instant> = HashMap::new();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(count as usize);
    let mut backpressured: u64 = 0;
    let mut redirects: u64 = 0;
    let started = Instant::now();

    // Retries and redirect re-submissions keep the first submit instant:
    // the client reports end-to-end latency, bounces included.
    let submit = |stream: &mut TcpStream, submitted: &mut HashMap<u64, Instant>, cmd: u64| {
        submitted.entry(cmd).or_insert_with(Instant::now);
        if write_frame(stream, &ClientRequest::Submit { cmd }).is_err() {
            eprintln!("gencon-client: server connection lost");
            exit(1);
        }
    };

    // Prime every client's window.
    for c in 0..clients {
        for _ in 0..outstanding {
            let cmd = encode_cmd(namespace, c, next_seq[c as usize]);
            next_seq[c as usize] += 1;
            submit(&mut stream, &mut submitted, cmd);
        }
    }

    while (latencies_us.len() as u64) < count {
        let Ok((resp, at)) = responses.recv_timeout(ack_timeout) else {
            eprintln!(
                "gencon-client: no response for {ack_timeout:?} ({} of {count} acked) — aborting",
                latencies_us.len()
            );
            exit(1);
        };
        match resp {
            ClientResponse::Committed { cmd, .. } => {
                let Some(sent) = submitted.remove(&cmd) else {
                    continue; // duplicate ack
                };
                latencies_us.push(at.duration_since(sent).as_micros() as u64);
                // Closed loop: the acked client's window refills.
                let c = decode_client(cmd);
                let cmd = encode_cmd(namespace, c, next_seq[c as usize]);
                next_seq[c as usize] += 1;
                submit(&mut stream, &mut submitted, cmd);
            }
            ClientResponse::Backpressure { cmd, .. } => {
                backpressured += 1;
                std::thread::sleep(Duration::from_millis(10));
                submit(&mut stream, &mut submitted, cmd);
            }
            ClientResponse::Redirect { cmd, to } => {
                redirects += 1;
                let Some(&target) = servers.get(to.index()) else {
                    eprintln!("gencon-client: redirected to process {to} but --servers not given");
                    exit(1);
                };
                let (s, r) = connect(target);
                stream = s;
                responses = r;
                // Re-submit everything in flight on the new connection.
                let inflight: Vec<u64> = submitted.keys().copied().collect();
                for c in inflight {
                    submit(&mut stream, &mut submitted, c);
                }
                let _ = cmd; // already among the re-submitted in-flight set
            }
        }
    }

    let wall = started.elapsed();
    latencies_us.sort_unstable();
    let q = |p: f64| -> u64 {
        let idx =
            ((p * latencies_us.len() as f64).ceil() as usize).clamp(1, latencies_us.len()) - 1;
        latencies_us[idx]
    };
    println!(
        "acked {} commands in {:.3}s — {:.0} cmds/sec",
        latencies_us.len(),
        wall.as_secs_f64(),
        latencies_us.len() as f64 / wall.as_secs_f64()
    );
    println!(
        "latency µs: p50 {}  p90 {}  p99 {}  max {}",
        q(0.50),
        q(0.90),
        q(0.99),
        latencies_us.last().copied().unwrap_or(0)
    );
    if backpressured + redirects > 0 {
        println!("bounces: {backpressured} backpressure, {redirects} redirect");
    }
}
