//! `gencon-server` — one node of a networked SMR cluster.
//!
//! ```bash
//! gencon-server --id 0 --algo pbft \
//!   --peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//!   --client-addr 127.0.0.1:7000 \
//!   [--app log|kv|bank] \
//!   [--batch-cap 64] [--window 4] [--min-timeout-ms 2] [--max-timeout-ms 1000]
//!   [--backpressure 65536] [--redirect-to ID] [--stop-after N] [--max-rounds R]
//!   [--durable --data-dir DIR] [--fsync-interval-ms 5] [--snapshot-every 512]
//!   [--snapshot-keep 2] [--ack-mode durable|fast] [--hash-at N]
//!   [--metrics-file PATH] [--slo-p99-us N]
//! ```
//!
//! The node connects the TCP mesh (peers may start late: dialing retries
//! with bounded backoff), serves clients at `--client-addr`, and runs the
//! replicated log until killed (or `--stop-after` commands applied).
//!
//! `--app` selects the replicated state machine: `log` (append-only,
//! `u64` commands — the pre-application-layer behavior), `kv` (ordered
//! key-value store with put/get/del/cas; acks carry the app reply) or
//! `bank` (mint/transfer with a conservation invariant).
//!
//! With `--durable`, committed batches are written to a CRC-framed WAL
//! under `--data-dir` (fsync group-committed every
//! `--fsync-interval-ms`), snapshots store the **folded application
//! state** every `--snapshot-every` slots — O(live state), not
//! O(history) — and a restart **recovers from disk first**: fold restore
//! and WAL replay rebuild the state before the node rejoins the mesh, so
//! recovery works even when the survivors have long compacted the slots
//! this node missed (the remaining gap closes via `b + 1`-vouched
//! chunked state transfer). `--ack-mode durable` (the default with
//! `--durable`) acks clients only after their command's slot is on disk;
//! `--ack-mode fast` acks at apply time and lets persistence trail
//! behind.
//!
//! `--hash-at N` prints `app-hash@N` — the application's state hash once
//! exactly N commands have applied — on exit; agreeing nodes print
//! identical hashes (the CI jobs compare them across a kill −9 +
//! restart).
//!
//! `--metrics-file PATH` dumps the per-stage metrics registry (ingest /
//! order / apply / persist / ack counters, gauges and latency
//! histograms) as flat JSON to PATH on exit, and also on `SIGUSR1` for a
//! live snapshot of a running node (with the admin port enabled, the
//! flight-recorder tail and assembled spans also land in
//! `PATH.spans.jsonl`, so a wedged node can be post-mortemed without the
//! port). `--snapshot-keep K` retains the last K snapshot cuts on disk
//! (default 2) so chunked state transfer can still serve a cut that a
//! concurrent snapshot just superseded.
//!
//! `--admin-addr ADDR` turns on the flight recorder (`--trace-events N`
//! sizes its ring, default 65536) and serves the line-oriented admin
//! port there: one command per connection — `metrics`, `status`,
//! `trace [n]`, `spans [n]`, `spans <from>..<to>`, `clock`,
//! `history [n]`, `rates`, `hash`, `cmds [n]`, `slowest [n]` — see
//! [`gencon_server::admin`]. A sampler thread snapshots the registry
//! every `--history-interval-ms` (default 500) into a ring of
//! `--history-len` entries (default 128) backing `history`/`rates`, and
//! the node publishes `(applied count, state hash)` pairs at
//! snapshot-boundary folds backing `hash` — the feed `gencon-mon`
//! aggregates cluster-wide.
//!
//! `--slo-p99-us N` tracks a p99 latency SLO: every acked command's
//! end-to-end latency is classified against the `N` µs budget into the
//! `slo.good`/`slo.bad` counters, which the history sampler snapshots —
//! burn rates over any window fall out of the `history` feed
//! (`gencon-mon` raises `slo-burn` alerts from them).

use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use gencon_app::{App, Applier, BankApp, Folder, KvApp, LogApp};
use gencon_metrics::Registry;
use gencon_server::cli::{flag_value, parse_flag, required_flag};
use gencon_server::{
    recover_replica, run_smr_node_observed, spawn_admin, AdminState, ClientGateway, DurableConfig,
    DurableNode, GatewayConfig, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{FileWal, Log, WalConfig};
use gencon_types::ProcessId;

const BIN: &str = "gencon-server";
const USAGE: &str =
    "gencon-server --id N --algo paxos|pbft|mqb --peers a:p,b:p,... --client-addr a:p \
     [--app log|kv|bank] [--durable --data-dir DIR] [--metrics-file PATH]";

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag(BIN, args, flag, default)
}

fn required(args: &[String], flag: &str) -> String {
    required_flag(BIN, args, flag, USAGE)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match flag_value(&args, "--app").as_deref().unwrap_or("log") {
        "log" => serve::<LogApp<u64>>(&args),
        "kv" => serve::<KvApp>(&args),
        "bank" => serve::<BankApp>(&args),
        other => {
            eprintln!("gencon-server: unknown --app {other} (log|kv|bank)");
            exit(2);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn serve<A: App>(args: &[String]) {
    let id: usize = required(args, "--id").parse().unwrap_or_else(|_| {
        eprintln!("gencon-server: --id must be an index into --peers");
        exit(2);
    });
    let algo = required(args, "--algo");
    let peers: Vec<SocketAddr> = required(args, "--peers")
        .split(',')
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("gencon-server: bad peer address {s}");
                exit(2);
            })
        })
        .collect();
    let client_addr: SocketAddr = required(args, "--client-addr").parse().unwrap_or_else(|_| {
        eprintln!("gencon-server: bad --client-addr");
        exit(2);
    });
    let n = peers.len();
    if id >= n {
        eprintln!("gencon-server: --id {id} out of range for {n} peers");
        exit(2);
    }

    let batch_cap: usize = parse(args, "--batch-cap", 64);
    let window: usize = parse(args, "--window", 4);
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(parse(args, "--initial-timeout-ms", 50)),
        min_round_timeout: Duration::from_millis(parse(args, "--min-timeout-ms", 2)),
        max_round_timeout: Duration::from_millis(parse(args, "--max-timeout-ms", 1_000)),
        max_rounds: parse(args, "--max-rounds", u64::MAX),
        stop_after_commands: flag_value(args, "--stop-after").map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("gencon-server: bad --stop-after");
                exit(2);
            })
        }),
    };
    let gateway_cfg = GatewayConfig {
        backpressure_limit: parse(args, "--backpressure", 65_536),
        redirect_to: flag_value(args, "--redirect-to").map(|raw| {
            ProcessId::new(raw.parse().unwrap_or_else(|_| {
                eprintln!("gencon-server: bad --redirect-to");
                exit(2);
            }))
        }),
        write_timeout: Duration::from_millis(parse(args, "--write-timeout-ms", 500)),
        reack_index_cap: parse(args, "--reack-index-cap", 1 << 20),
    };

    // --- durability flags ---
    let durable = args.iter().any(|a| a == "--durable");
    let ack_mode = flag_value(args, "--ack-mode").unwrap_or_else(|| "durable".to_string());
    if ack_mode != "durable" && ack_mode != "fast" {
        eprintln!("gencon-server: --ack-mode must be durable or fast");
        exit(2);
    }
    let data_dir = flag_value(args, "--data-dir");
    if durable && data_dir.is_none() {
        eprintln!("gencon-server: --durable requires --data-dir");
        eprintln!("usage: {USAGE}");
        exit(2);
    }
    let wal_cfg = WalConfig {
        fsync_interval: Duration::from_millis(parse(args, "--fsync-interval-ms", 5)),
        segment_bytes: parse(args, "--segment-bytes", 4 << 20),
        snapshot_keep: parse(args, "--snapshot-keep", 2),
    };
    let durable_cfg = DurableConfig {
        snapshot_every: parse(args, "--snapshot-every", 512),
        snapshot_tail: parse(args, "--snapshot-tail", 64),
        durable_ack: ack_mode == "durable",
    };
    let hash_at: u64 = parse(args, "--hash-at", 0);
    let metrics_file = flag_value(args, "--metrics-file");
    let admin_addr: Option<SocketAddr> = flag_value(args, "--admin-addr").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("gencon-server: bad --admin-addr");
            exit(2);
        })
    });
    // The flight recorder rides with the admin port: without a place to
    // drain it from, recording would be dead weight.
    let recorder = admin_addr
        .is_some()
        .then(|| gencon_trace::FlightRecorder::new(parse(args, "--trace-events", 65_536)));
    let peer_table = gencon_trace::PeerTable::new(n);
    // The state-hash audit cell and history ring also ride with the
    // admin port (they back its `hash`/`history`/`rates` commands).
    let hash_cell = admin_addr.is_some().then(gencon_trace::HashCell::new);
    // The slow-command exemplar ring backs the admin `slowest` command;
    // the gateway offers every acked command's e2e to it.
    let slow_ring = gencon_trace::SlowCmdRing::new();
    let slo_budget_us: u64 = parse(args, "--slo-p99-us", 0);

    // Per-stage metrics. The registry is created unconditionally (the
    // counters are cheap); the JSON dump happens on exit and on SIGUSR1
    // only when `--metrics-file` names a destination.
    let registry = Registry::new();
    if let Some(path) = &metrics_file {
        gencon_metrics::install_sigusr1_dump(registry.clone(), path.clone().into());
        // With tracing on, SIGUSR1 also drops the recorder tail +
        // assembled spans next to the metrics file.
        if let Some(rec) = &recorder {
            let rec = rec.clone();
            let spans_path = format!("{path}.spans.jsonl");
            gencon_metrics::install_sigusr1(move || {
                let events = rec.tail(rec.capacity());
                let mut out = String::new();
                for ev in &events {
                    out.push_str(&ev.to_json());
                    out.push('\n');
                }
                for span in gencon_trace::assemble_spans(&events) {
                    out.push_str(&span.to_json());
                    out.push('\n');
                }
                if let Err(e) = std::fs::write(&spans_path, out) {
                    eprintln!("gencon-server: cannot write spans to {spans_path}: {e}");
                }
            });
        }
    }

    // Fault bounds from the cluster size: the largest each model tolerates.
    let params = match algo.as_str() {
        "paxos" => {
            gencon_algos::paxos::<Batch<A::Cmd>>(n, (n - 1) / 2, ProcessId::new(0))
                .unwrap_or_else(|e| {
                    eprintln!("gencon-server: {e}");
                    exit(2);
                })
                .params
        }
        "pbft" => {
            gencon_algos::pbft::<Batch<A::Cmd>>(n, (n - 1) / 3)
                .unwrap_or_else(|e| {
                    eprintln!("gencon-server: {e} (pbft needs n ≥ 3b + 1, e.g. 4 nodes)");
                    exit(2);
                })
                .params
        }
        "mqb" => {
            gencon_algos::mqb::<Batch<A::Cmd>>(n, (n - 1) / 4)
                .unwrap_or_else(|e| {
                    eprintln!("gencon-server: {e} (mqb needs n ≥ 4b + 1, e.g. 5 nodes)");
                    exit(2);
                })
                .params
        }
        other => {
            eprintln!("gencon-server: unknown --algo {other} (paxos|pbft|mqb)");
            exit(2);
        }
    };

    let mut gateway = ClientGateway::<A>::listen(client_addr, gateway_cfg)
        .unwrap_or_else(|e| {
            eprintln!("gencon-server: cannot bind client address {client_addr}: {e}");
            exit(1);
        })
        .with_metrics(&registry)
        .with_slow_ring(slow_ring.clone());
    if slo_budget_us > 0 {
        gateway = gateway.with_slo(gencon_metrics::SloTracker::new(&registry, slo_budget_us));
    }
    if let Some(rec) = &recorder {
        gateway = gateway.with_trace(rec.clone());
    }
    // Exactly one hash publisher per node: durable nodes publish from
    // the snapshot-boundary fold (see below); memory nodes publish from
    // the live applier at the same applied-count cadence.
    if let (Some(cell), false) = (&hash_cell, durable) {
        gateway = gateway.with_hash_cell(cell.clone(), durable_cfg.snapshot_every);
    }
    // The durable-ack watermark, shared between the persistence layer
    // (writer) and the gateway (ack limit).
    let ack_gate = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    if durable {
        gateway = gateway.with_ack_gate(std::sync::Arc::clone(&ack_gate));
    }

    let mut replica = BatchingReplica::new(ProcessId::new(id), params, batch_cap, usize::MAX)
        .unwrap_or_else(|e| {
            eprintln!("gencon-server: invalid consensus parameters: {e}");
            exit(2);
        })
        .with_window(window)
        .with_dedup_horizon(parse(args, "--dedup-horizon", 8_192));

    // --- durable path: open the WAL, recover the fold + replica before
    // joining the mesh, and seed the live applier from the fold ---
    let mut folder: Folder<A> = Folder::default();
    let durable_parts = if durable {
        let dir = data_dir.expect("checked above");
        let (wal, recovery) = FileWal::open(&dir, wal_cfg).unwrap_or_else(|e| {
            eprintln!("gencon-server: cannot open data dir {dir}: {e}");
            exit(1);
        });
        let recovered = recover_replica(&mut replica, &mut folder, &recovery);
        eprintln!(
            "gencon-server {id}: recovered {} slots from snapshot + {} from WAL \
             ({} commands{}{})",
            recovered.snapshot_slots,
            recovered.replayed_slots,
            recovered.applied,
            if recovery.truncated_bytes > 0 {
                format!(", torn tail truncated: {} bytes", recovery.truncated_bytes)
            } else {
                String::new()
            },
            if recovery.snapshot_corrupt {
                ", corrupt snapshot ignored"
            } else {
                ""
            },
        );
        Some(wal)
    } else {
        None
    };
    let mut applier = Applier::resume(folder.app().clone(), folder.applied_len());
    if hash_at > 0 {
        applier = applier.with_hash_target(hash_at);
    }
    let gateway = gateway.with_applier(applier);

    eprintln!(
        "gencon-server {id}: serving {} clients at {} ({} acks), connecting {n}-node {algo} mesh …",
        A::NAME,
        gateway.local_addr(),
        if durable { ack_mode.as_str() } else { "memory" },
    );
    let transport = gencon_net::TcpTransport::connect_mesh(ProcessId::new(id), &peers)
        .unwrap_or_else(|e| {
            eprintln!("gencon-server: mesh connection failed: {e}");
            exit(1);
        });
    eprintln!("gencon-server {id}: mesh up, log running");

    if let (Some(addr), Some(rec)) = (admin_addr, &recorder) {
        let history = gencon_metrics::HistoryRing::new(parse(args, "--history-len", 128));
        history.spawn_sampler(
            registry.clone(),
            Duration::from_millis(parse(args, "--history-interval-ms", 500)),
        );
        let state = AdminState {
            node_id: id,
            registry: registry.clone(),
            recorder: rec.clone(),
            peers: peer_table.clone(),
            history,
            hashes: hash_cell.clone().unwrap_or_default(),
            slow_cmds: slow_ring.clone(),
            io_timeout: gencon_server::ADMIN_IO_TIMEOUT,
        };
        match spawn_admin(addr, state) {
            Ok(local) => eprintln!("gencon-server {id}: admin endpoint at {local}"),
            Err(e) => eprintln!("gencon-server {id}: cannot bind admin address {addr}: {e}"),
        }
    }

    let (replica, stats, captured) = if let Some(wal) = durable_parts {
        let mut node = DurableNode::new(wal, durable_cfg, folder, gateway)
            .with_gate(ack_gate)
            .with_metrics(&registry);
        if let Some(rec) = &recorder {
            node = node.with_trace(rec.clone());
        }
        if let Some(cell) = &hash_cell {
            node = node.with_hash_cell(cell.clone());
        }
        let (replica, _transport, stats, node) = run_smr_node_observed(
            replica,
            transport,
            cfg,
            node,
            Some(&registry),
            recorder.as_ref(),
            Some(&peer_table),
        );
        // One guard for both reads — the store lock is not reentrant, so
        // a second `store()` in the same statement would self-deadlock.
        let (wal_bytes, wal_syncs) = {
            let store = node.store();
            (store.bytes_appended(), store.syncs())
        };
        eprintln!(
            "gencon-server {id}: WAL wrote {wal_bytes} payload bytes over {wal_syncs} fsyncs, \
             {} snapshots taken ({} manifests from disk, {} synthesized)",
            node.snapshots_taken(),
            node.served_from_disk(),
            node.served_synthesized(),
        );
        let captured = node.inner().applier().captured_hash();
        (replica, stats, captured)
    } else {
        let (replica, _transport, stats, hook) = run_smr_node_observed(
            replica,
            transport,
            cfg,
            gateway,
            Some(&registry),
            recorder.as_ref(),
            Some(&peer_table),
        );
        let captured = hook.applier().captured_hash();
        (replica, stats, captured)
    };

    if let Some(path) = &metrics_file {
        if let Err(e) = registry.dump_to_file(path) {
            eprintln!("gencon-server {id}: cannot write metrics to {path}: {e}");
        } else {
            eprintln!("gencon-server {id}: per-stage metrics written to {path}");
        }
    }

    if let Some(hash) = captured {
        println!("gencon-server {id}: app-hash@{hash_at} = {}", hex(&hash));
    } else if hash_at > 0 {
        eprintln!(
            "gencon-server {id}: app-hash@{hash_at} not captured (applied {} commands)",
            replica.applied_len()
        );
    }
    eprintln!(
        "gencon-server {id}: stopped at round {} — {} commands applied over {} slots \
         ({} full rounds, {} timeouts, {} fast-forwards, {} snapshots installed, \
         {} chunks fetched)",
        stats.last_round,
        replica.applied_len(),
        replica.committed_slots(),
        stats.full_rounds,
        stats.timeouts,
        stats.fast_forwards,
        stats.snapshots_installed,
        stats.chunks_fetched,
    );
}
