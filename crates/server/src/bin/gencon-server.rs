//! `gencon-server` — one node of a networked SMR cluster.
//!
//! ```bash
//! gencon-server --id 0 --algo pbft \
//!   --peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//!   --client-addr 127.0.0.1:7000 \
//!   [--batch-cap 64] [--window 4] [--min-timeout-ms 2] [--max-timeout-ms 1000]
//!   [--backpressure 65536] [--redirect-to ID] [--stop-after N] [--max-rounds R]
//! ```
//!
//! The node connects the TCP mesh (peers may start late: dialing retries
//! with bounded backoff), serves clients at `--client-addr`, and runs the
//! replicated log until killed (or `--stop-after` commands applied).

use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use gencon_server::cli::{flag_value, parse_flag, required_flag};
use gencon_server::{run_smr_node, ClientGateway, GatewayConfig, ServerConfig};
use gencon_smr::{Batch, BatchingReplica};
use gencon_types::ProcessId;

const BIN: &str = "gencon-server";
const USAGE: &str =
    "gencon-server --id N --algo paxos|pbft|mqb --peers a:p,b:p,... --client-addr a:p";

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    parse_flag(BIN, args, flag, default)
}

fn required(args: &[String], flag: &str) -> String {
    required_flag(BIN, args, flag, USAGE)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id: usize = required(&args, "--id").parse().unwrap_or_else(|_| {
        eprintln!("gencon-server: --id must be an index into --peers");
        exit(2);
    });
    let algo = required(&args, "--algo");
    let peers: Vec<SocketAddr> = required(&args, "--peers")
        .split(',')
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("gencon-server: bad peer address {s}");
                exit(2);
            })
        })
        .collect();
    let client_addr: SocketAddr = required(&args, "--client-addr")
        .parse()
        .unwrap_or_else(|_| {
            eprintln!("gencon-server: bad --client-addr");
            exit(2);
        });
    let n = peers.len();
    if id >= n {
        eprintln!("gencon-server: --id {id} out of range for {n} peers");
        exit(2);
    }

    let batch_cap: usize = parse(&args, "--batch-cap", 64);
    let window: usize = parse(&args, "--window", 4);
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(parse(&args, "--initial-timeout-ms", 50)),
        min_round_timeout: Duration::from_millis(parse(&args, "--min-timeout-ms", 2)),
        max_round_timeout: Duration::from_millis(parse(&args, "--max-timeout-ms", 1_000)),
        max_rounds: parse(&args, "--max-rounds", u64::MAX),
        stop_after_commands: flag_value(&args, "--stop-after").map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("gencon-server: bad --stop-after");
                exit(2);
            })
        }),
    };
    let gateway_cfg = GatewayConfig {
        backpressure_limit: parse(&args, "--backpressure", 65_536),
        redirect_to: flag_value(&args, "--redirect-to").map(|raw| {
            ProcessId::new(raw.parse().unwrap_or_else(|_| {
                eprintln!("gencon-server: bad --redirect-to");
                exit(2);
            }))
        }),
        write_timeout: Duration::from_millis(parse(&args, "--write-timeout-ms", 500)),
    };

    // Fault bounds from the cluster size: the largest each model tolerates.
    let params = match algo.as_str() {
        "paxos" => {
            gencon_algos::paxos::<Batch<u64>>(n, (n - 1) / 2, ProcessId::new(0))
                .unwrap_or_else(|e| {
                    eprintln!("gencon-server: {e}");
                    exit(2);
                })
                .params
        }
        "pbft" => {
            gencon_algos::pbft::<Batch<u64>>(n, (n - 1) / 3)
                .unwrap_or_else(|e| {
                    eprintln!("gencon-server: {e} (pbft needs n ≥ 3b + 1, e.g. 4 nodes)");
                    exit(2);
                })
                .params
        }
        "mqb" => {
            gencon_algos::mqb::<Batch<u64>>(n, (n - 1) / 4)
                .unwrap_or_else(|e| {
                    eprintln!("gencon-server: {e} (mqb needs n ≥ 4b + 1, e.g. 5 nodes)");
                    exit(2);
                })
                .params
        }
        other => {
            eprintln!("gencon-server: unknown --algo {other} (paxos|pbft|mqb)");
            exit(2);
        }
    };

    let gateway = ClientGateway::listen(client_addr, gateway_cfg).unwrap_or_else(|e| {
        eprintln!("gencon-server: cannot bind client address {client_addr}: {e}");
        exit(1);
    });
    eprintln!(
        "gencon-server {id}: serving clients at {}, connecting {n}-node {algo} mesh …",
        gateway.local_addr()
    );
    let transport = gencon_net::TcpTransport::connect_mesh(ProcessId::new(id), &peers)
        .unwrap_or_else(|e| {
            eprintln!("gencon-server: mesh connection failed: {e}");
            exit(1);
        });
    eprintln!("gencon-server {id}: mesh up, log running");

    let replica = BatchingReplica::new(ProcessId::new(id), params, batch_cap, usize::MAX)
        .expect("catalog params validate")
        .with_window(window);
    let (replica, _transport, stats) = run_smr_node(replica, transport, cfg, gateway);

    eprintln!(
        "gencon-server {id}: stopped at round {} — {} commands applied over {} slots \
         ({} full rounds, {} timeouts, {} fast-forwards)",
        stats.last_round,
        replica.applied().len(),
        replica.committed_slots(),
        stats.full_rounds,
        stats.timeouts,
        stats.fast_forwards,
    );
}
