//! The SMR node event loop: a replicated log over a real transport.
//!
//! [`run_smr_node`] drives one [`BatchingReplica`] slot-by-slot over any
//! [`Transport`] with wall-clock round pacing:
//!
//! * **Adaptive deadlines** — each round's collect window comes from an
//!   [`AdaptiveDeadline`]: it shrinks toward 2× the observed round time
//!   while the mesh is timely (good periods commit at network speed) and
//!   backs off exponentially when rounds expire incomplete (bad periods
//!   don't spin). "Complete" is judged against the *live* senders — a
//!   peer silent past [`LIVENESS_GRACE`] rounds stops being waited for,
//!   so a crashed node degrades pacing for a bounded window instead of
//!   pinning every subsequent round at the maximum deadline (the cluster
//!   keeps serving at speed with up to f nodes down); any frame from the
//!   peer re-enrolls it instantly.
//! * **Closed rounds** — frames tagged with an old round are dropped,
//!   future rounds are buffered (bounded: one frame per sender per round,
//!   nothing past a [`FUTURE_HORIZON`] — a Byzantine peer cannot grow the
//!   buffer without limit); within a round the node collects until every
//!   live sender was heard or the deadline expires, exactly the
//!   partial-synchrony realization `gencon-net`'s single-shot runtime uses.
//! * **Round fast-forward** — a node that restarts (or falls far behind)
//!   would otherwise have to grind through every skipped round number
//!   while peers drop its stale frames. When `b + 1` distinct senders have
//!   sent frames for rounds ahead of ours, the cluster is provably there
//!   (at least one sender is honest), so the node jumps its round counter
//!   forward. Skipped rounds are indistinguishable from message loss,
//!   which every instantiation tolerates; a lone Byzantine peer cannot
//!   trigger a jump. From the new round the existing catch-up machinery
//!   takes over: peers answer the laggard's stale-slot bundles with
//!   decision claims, and `b + 1` concordant claims commit any missed
//!   prefix ([`gencon_smr`]'s certificate path).
//! * **Chunked state transfer** — a laggard whose gap outran the claim
//!   horizon broadcasts a `SnapshotRequest`; peers answer with a
//!   [`SnapshotManifest`] (metadata only, served by the
//!   [`NodeHook`] — the durable hook prefers its on-disk snapshot and
//!   synthesizes a fold only when none exists). Once `b + 1` distinct
//!   senders vouch for the byte-identical manifest, the laggard pulls the
//!   state chunk by chunk ([`ChunkRequest`]/`Chunk` frames, CRC-stamped,
//!   resumable across rounds, round-robin over the vouchers), reassembles
//!   it, verifies the manifest's SHA-256, and installs the decoded
//!   [`FoldedState`] — the folded application state plus replica resume
//!   data, **not** the applied history, so transfer size is O(live app
//!   state) with no history ceiling.
//! * **Hooks** — a [`NodeHook`] injects client submissions before each
//!   round, harvests commits after it, and serves/persists snapshots; the
//!   TCP client gateway, the durability layer and the load harness are
//!   all hooks.
//!
//! [`SnapshotManifest`]: gencon_net::SnapshotManifest
//! [`ChunkRequest`]: gencon_net::SyncFrame::ChunkRequest
//! [`FoldedState`]: gencon_net::FoldedState

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, TrySendError};

use gencon_metrics::{Counter, Gauge, Histogram, Registry};
use gencon_net::wire::{Envelope, Wire};
use gencon_net::wire_sync::{
    AssemblyOutcome, ChunkAssembly, FoldedState, SnapshotManifest, SyncFrame,
};
use gencon_net::{RecvHalf, Transport};
use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
use gencon_smr::{Batch, BatchingReplica, SmrMsg};
use gencon_trace::{EventKind, FlightRecorder, PeerTable, Stage, Tracer};
use gencon_types::{CmdKey, ProcessId, ProcessSet, Round, Value};

use crate::config::ServerConfig;
use crate::deadline::AdaptiveDeadline;

/// Per-round callbacks around the replica, with typed mutable access.
///
/// All methods default to no-ops; implement whichever sides you need.
/// Closures `FnMut(u64, &mut BatchingReplica<V>)` work as before-round
/// hooks.
pub trait NodeHook<V: Value>: Send {
    /// Called before the round's send step — the place to drain client
    /// submissions into the replica.
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<V>) {
        let _ = (round, replica);
    }

    /// Called after the round's transition step — the place to harvest
    /// newly applied commands (acks, latency accounting).
    fn after_round(&mut self, round: u64, replica: &mut BatchingReplica<V>) {
        let _ = (round, replica);
    }

    /// Polled once per round after [`NodeHook::after_round`]; returning
    /// `true` stops the loop. The default runs until
    /// [`ServerConfig::max_rounds`].
    fn should_stop(&mut self, replica: &BatchingReplica<V>) -> bool {
        let _ = replica;
        false
    }

    /// Asked when a laggard peer whose log ends at `have_slot` requests
    /// state transfer: the manifest of the snapshot this node can serve,
    /// or `None` to stay silent. The durable hook answers from its
    /// on-disk snapshot when one covers the request and synthesizes a
    /// fold from the retained log only when none exists; a hook-less
    /// memory node serves nothing (claims remain its only catch-up path).
    fn serve_manifest(
        &mut self,
        replica: &BatchingReplica<V>,
        have_slot: u64,
    ) -> Option<SnapshotManifest> {
        let _ = (replica, have_slot);
        None
    }

    /// Asked for chunk `index` of the snapshot this node manifested at
    /// `upto_slot`. The event loop stamps the CRC.
    fn serve_chunk(
        &mut self,
        replica: &BatchingReplica<V>,
        upto_slot: u64,
        index: u32,
    ) -> Option<Vec<u8>> {
        let _ = (replica, upto_slot, index);
        None
    }

    /// Called after the event loop installed a `b + 1`-vouched,
    /// hash-verified snapshot into the replica — `state` is the encoded
    /// [`FoldedState`] (for persisting verbatim) and `fs` its decoded
    /// form (so hooks need not re-parse). The durable hook persists it
    /// (so a later restart recovers past the transferred prefix) and
    /// restores its fold; the gateway restores its live application.
    fn snapshot_installed(
        &mut self,
        manifest: &SnapshotManifest,
        state: &[u8],
        fs: &FoldedState<V>,
        replica: &mut BatchingReplica<V>,
    ) {
        let _ = (manifest, state, fs, replica);
    }

    /// Called exactly once when the event loop exits, before the node's
    /// pipeline threads are torn down. Staged hooks drain here: the
    /// durable hook flushes its persist stage (every appended record
    /// reaches disk and the durable watermark), the gateway then releases
    /// or fails every remaining client ack — no ack is stranded in a
    /// queue when the process returns.
    fn finish(&mut self, replica: &mut BatchingReplica<V>) {
        let _ = replica;
    }
}

/// Any `FnMut(round, &mut replica)` closure is a before-round hook.
impl<V: Value, F> NodeHook<V> for F
where
    F: FnMut(u64, &mut BatchingReplica<V>) + Send,
{
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<V>) {
        self(round, replica);
    }
}

/// A hook that does nothing: the node just keeps the log turning.
pub struct NoHook;

impl<V: Value> NodeHook<V> for NoHook {}

/// Frames buffered for rounds this node has not reached yet: round →
/// `(sender, bundle)` pairs (at most one per sender per round).
type FutureFrames<V> = BTreeMap<u64, Vec<(ProcessId, SmrMsg<Batch<V>>)>>;

/// Rounds a silent sender keeps counting toward the full-round
/// expectation before pacing writes it off as down.
pub const LIVENESS_GRACE: u64 = 16;

/// Frames tagged further ahead than this are not buffered (their round
/// number still feeds the fast-forward evidence). Bounds the future map
/// at `FUTURE_HORIZON × n` bundles against Byzantine flooding.
pub const FUTURE_HORIZON: u64 = 1024;

/// Rounds without commit progress (while peers demonstrably work slots
/// ahead of ours) before the node starts asking for snapshot state
/// transfer. Short gaps are the decision-claim path's job; this fires
/// only when claims have visibly stopped working — peers compacted the
/// needed slots below their claim horizon.
pub const SNAPSHOT_PROBE_AFTER: u64 = 8;

/// Minimum slot gap (peers' highest referenced slot vs. our contiguous
/// commit point) that makes a stall snapshot-worthy.
pub const SNAPSHOT_GAP_MIN: u64 = 8;

/// Missing chunks re-requested per round while a fetch is active — the
/// transfer self-paces with the round cadence, and chunks that were lost
/// in flight are simply re-requested on a later round (resumability).
pub const CHUNK_REQUESTS_PER_ROUND: usize = 8;

/// Chunk responses served to one peer within one round (a Byzantine
/// requester must not turn chunk serving into an amplification flood).
pub const CHUNKS_SERVED_PER_SENDER_PER_ROUND: u32 = 16;

/// Rounds without a newly accepted chunk before an in-flight fetch is
/// abandoned (its manifest is dropped from the tally and re-learned
/// fresh) — the resumability safety valve against chasing a snapshot
/// the vouchers have already superseded.
pub const FETCH_STALL_ROUNDS: u64 = 32;

/// Command ids remembered per relay-trace direction. Relay chunks
/// rebroadcast in-flight commands every round, so without first-seen
/// gating a single slow command would stamp a `Relayed`/`RelayMerged`
/// event per round per peer and flood the flight recorder.
const RELAY_SEEN_CAP: usize = 8192;

/// A bounded first-seen filter: `insert` answers whether the key is new
/// within the window. FIFO eviction — old ids age out, so a command
/// re-relayed long after its window can stamp again (acceptable: span
/// assembly is first-occurrence-wins anyway).
struct SeenWindow {
    set: std::collections::HashSet<u64>,
    order: std::collections::VecDeque<u64>,
    cap: usize,
}

impl SeenWindow {
    fn new(cap: usize) -> Self {
        SeenWindow {
            set: std::collections::HashSet::with_capacity(cap),
            order: std::collections::VecDeque::with_capacity(cap),
            cap,
        }
    }

    fn insert(&mut self, key: u64) -> bool {
        if !self.set.insert(key) {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

/// Senders heard within the liveness grace window (everyone at startup,
/// since nobody has had a chance to speak yet).
fn live_senders(last_heard: &[u64], r: u64) -> usize {
    last_heard
        .iter()
        .filter(|&&lr| lr + LIVENESS_GRACE >= r)
        .count()
}

/// What one node run did, for logs and assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Rounds executed (not counting fast-forwarded skips).
    pub rounds: u64,
    /// The last round number reached (≥ `rounds` once fast-forwards happen).
    pub last_round: u64,
    /// Rounds that heard every sender before the deadline.
    pub full_rounds: u64,
    /// Rounds cut off by the deadline.
    pub timeouts: u64,
    /// Round-counter jumps taken (restart/laggard catch-up).
    pub fast_forwards: u64,
    /// Snapshot state-transfer requests this node broadcast.
    pub snapshot_requests: u64,
    /// Snapshot manifests this node served to laggards.
    pub snapshots_served: u64,
    /// State chunks this node served to laggards.
    pub chunks_served: u64,
    /// Verified state chunks this node fetched during transfers.
    pub chunks_fetched: u64,
    /// Snapshots installed from peers (`b + 1`-vouched, SHA-verified).
    pub snapshots_installed: u64,
}

/// An in-progress chunked state fetch: the vouched manifest, who vouched
/// (only they are asked for chunks), the resumable reassembly, and a
/// round-robin cursor so retries rotate across vouchers — a single lying
/// voucher can delay a fetch round but not starve it.
struct Fetch {
    assembly: ChunkAssembly,
    voters: Vec<ProcessId>,
    /// Which voucher this attempt pulls from: `voters[attempt % len]`.
    /// All chunks of one attempt come from a **single source**, and the
    /// source rotates on failure (SHA mismatch or stall) — so at most
    /// one rotation per voucher reaches the attempt whose source is
    /// honest (the voter set has ≥ b + 1 members), which then completes
    /// with the correct bytes. Mixing sources within an attempt would
    /// let a single lying voucher poison every assembly forever.
    attempt: usize,
    /// Last round a chunk was newly accepted (or the attempt rotated). A
    /// fetch that stops progressing — typically because the vouchers'
    /// snapshots moved past this manifest's cut and nobody can serve its
    /// chunks any more — rotates its source after
    /// [`FETCH_STALL_ROUNDS`], and is abandoned entirely once every
    /// voucher was tried twice, so the tally can converge on a servable
    /// manifest instead of pinning a stale one.
    last_progress: u64,
}

impl Fetch {
    fn source(&self) -> ProcessId {
        self.voters[self.attempt % self.voters.len()]
    }
}

/// Decoded frames queued between the ingest stage and the order stage.
/// When the queue is full, fresh frames are dropped (and counted) —
/// consensus frames are loss-tolerant by design, so shedding inbound
/// load under overload is exactly what a congested network would do.
pub const INGEST_QUEUE_CAP: usize = 4096;

/// How often the ingest stage re-checks its stop flag while idle.
const INGEST_POLL: Duration = Duration::from_millis(10);

/// A decoded, sender-authenticated frame handed from ingest to order.
type IngestFrame<V> = (ProcessId, SyncFrame<SmrMsg<Batch<V>>>);

/// Instrument handles for the ingest stage (cloned into its thread).
#[derive(Clone)]
struct IngestMeters {
    frames: Counter,
    dropped: Counter,
    decode_errors: Counter,
    /// Depth sampled on **every** enqueue and dequeue — a histogram, so
    /// `ingest.queue_depth` p99 reflects the whole run, not whichever
    /// depth happened to be written last.
    queue_depth: Histogram,
    queue_depth_now: Gauge,
}

/// Per-stage instrument handles resolved once per node run.
struct NodeMeters {
    ingest: IngestMeters,
    rounds: Counter,
    round_us: Histogram,
    timeouts: Counter,
    fast_forwards: Counter,
    chunks_served: Counter,
    chunks_fetched: Counter,
    // Live position gauges the admin `status` command reads.
    round_now: Gauge,
    committed_now: Gauge,
    applied_now: Gauge,
    queued_now: Gauge,
}

impl NodeMeters {
    fn new(reg: &Registry) -> Self {
        NodeMeters {
            ingest: IngestMeters {
                frames: reg.counter("ingest.frames"),
                dropped: reg.counter("ingest.dropped"),
                decode_errors: reg.counter("ingest.decode_errors"),
                queue_depth: reg.histogram("ingest.queue_depth"),
                queue_depth_now: reg.gauge("ingest.queue_depth_now"),
            },
            rounds: reg.counter("order.rounds"),
            round_us: reg.histogram("order.round_us"),
            timeouts: reg.counter("order.timeouts"),
            fast_forwards: reg.counter("order.fast_forwards"),
            chunks_served: reg.counter("transfer.chunks_served"),
            chunks_fetched: reg.counter("transfer.chunks_fetched"),
            round_now: reg.gauge("order.round"),
            committed_now: reg.gauge("order.committed_slots"),
            applied_now: reg.gauge("order.applied"),
            queued_now: reg.gauge("order.queued"),
        }
    }
}

/// The ingest stage: owns the transport's receive half, decodes and
/// sender-authenticates every inbound frame off the order thread, and
/// queues the survivors. Runs until the order stage raises `stop`.
fn ingest_loop<V: Value + Wire>(
    half: &RecvHalf,
    n: usize,
    tx: channel::Sender<IngestFrame<V>>,
    stop: &AtomicBool,
    m: &IngestMeters,
    tracer: &Tracer,
) {
    while !stop.load(Ordering::Acquire) {
        let Some((sender, frame)) = half.recv_timeout(INGEST_POLL) else {
            m.queue_depth_now.set(tx.len() as u64);
            continue;
        };
        if sender.index() >= n {
            continue;
        }
        let Some(sync) = decode_frame::<SmrMsg<Batch<V>>>(&frame) else {
            m.decode_errors.inc(); // garbage from a Byzantine peer
            continue;
        };
        // Transport-level sender authentication.
        if sync.sender() != sender {
            m.decode_errors.inc();
            continue;
        }
        m.frames.inc();
        match tx.try_send((sender, sync)) {
            Ok(()) => {
                let depth = tx.len() as u64;
                m.queue_depth.record(depth);
                tracer.rec(Stage::Ingest, EventKind::Ingested, 0, depth);
            }
            // Backpressure by shedding: a full queue drops the frame
            // like a congested link would (the round machinery already
            // tolerates loss); blocking here would stall the socket
            // readers behind a slow order stage instead.
            Err(TrySendError::Full(_)) => {
                m.dropped.inc();
                tracer.rec(Stage::Ingest, EventKind::Shed, 0, INGEST_QUEUE_CAP as u64);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
        m.queue_depth_now.set(tx.len() as u64);
    }
}

/// Drives `replica` over `transport` until the hook stops it or
/// `cfg.max_rounds` elapse. Returns the replica (its applied log is the
/// result), the transport (reusable — e.g. to restart a node on the same
/// endpoint after a simulated crash), run statistics, and the hook (so
/// callers can read its end state — gateway counters, WAL statistics).
pub fn run_smr_node<V, T, H>(
    replica: BatchingReplica<V>,
    transport: T,
    cfg: ServerConfig,
    hook: H,
) -> (BatchingReplica<V>, T, NodeStats, H)
where
    V: Value + Wire + CmdKey,
    T: Transport,
    H: NodeHook<V>,
{
    run_smr_node_metered(replica, transport, cfg, hook, None)
}

/// [`run_smr_node`] with per-stage instruments registered in `metrics`
/// (`ingest.*`, `order.*`, `transfer.*`; the durable and gateway hooks
/// add `persist.*`, `apply.*` and `ack.*` when built with the same
/// registry). With `None` the node meters into a private throwaway
/// registry — the instruments cost a handful of atomics either way.
///
/// The node core is a staged pipeline:
///
/// ```text
/// socket → [ingest] → bounded queue → [order] → hook stages
///           decode      (shed on       rounds    (apply / persist /
///           auth         overflow)     (this      ack — see the
///                                      thread)    gateway & durable
///                                                 hooks)
/// ```
///
/// The **ingest** stage owns the transport's receive half (when the
/// transport can split one off — see [`Transport::split_recv`]) and
/// decodes + sender-authenticates frames concurrently with the round
/// loop. The **order** stage — this thread — stays single-threaded and
/// deterministic: it consumes decoded frames, runs the consensus rounds,
/// and drives the hook, exactly as before the split. On exit the ingest
/// stage is stopped and joined, the receive half is restored into the
/// transport, and [`NodeHook::finish`] drains the downstream stages.
pub fn run_smr_node_metered<V, T, H>(
    replica: BatchingReplica<V>,
    transport: T,
    cfg: ServerConfig,
    hook: H,
    metrics: Option<&Registry>,
) -> (BatchingReplica<V>, T, NodeStats, H)
where
    V: Value + Wire + CmdKey,
    T: Transport,
    H: NodeHook<V>,
{
    run_smr_node_observed(replica, transport, cfg, hook, metrics, None, None)
}

/// [`run_smr_node_metered`] plus the flight recorder and per-peer health
/// table: `trace` receives the slot-lifecycle, state-transfer and
/// peer-liveness events of this node (ingest/order here; the gateway and
/// durable hooks record their own stages when built with the same
/// recorder), and `peers` is continuously updated with last-heard
/// rounds, advertised watermarks and written-off flags — the table the
/// admin endpoint's `status` command snapshots.
pub fn run_smr_node_observed<V, T, H>(
    mut replica: BatchingReplica<V>,
    mut transport: T,
    cfg: ServerConfig,
    mut hook: H,
    metrics: Option<&Registry>,
    trace: Option<&FlightRecorder>,
    peers: Option<&PeerTable>,
) -> (BatchingReplica<V>, T, NodeStats, H)
where
    V: Value + Wire + CmdKey,
    T: Transport,
    H: NodeHook<V>,
{
    let scratch = Registry::new();
    let meters = NodeMeters::new(metrics.unwrap_or(&scratch));
    let tracer = Tracer::new(trace.cloned());
    let peers = peers.cloned().unwrap_or_default();
    let n = transport.peers();
    let mut recv_half = transport.split_recv();
    let stop_ingest = AtomicBool::new(false);
    let mut returned_half = None;
    let stats = std::thread::scope(|scope| {
        let mut ingest_handle = None;
        let ingest_rx = recv_half.take().map(|half| {
            let (tx, rx) = channel::bounded(INGEST_QUEUE_CAP);
            let im = meters.ingest.clone();
            let it = tracer.clone();
            let stop = &stop_ingest;
            ingest_handle = Some(scope.spawn(move || {
                ingest_loop::<V>(&half, n, tx, stop, &im, &it);
                half
            }));
            rx
        });
        let stats = order_loop(
            &mut replica,
            &mut transport,
            &cfg,
            &mut hook,
            ingest_rx.as_ref(),
            &meters,
            &tracer,
            &peers,
        );
        stop_ingest.store(true, Ordering::Release);
        if let Some(h) = ingest_handle {
            returned_half = Some(h.join().expect("ingest stage panicked"));
        }
        hook.finish(&mut replica);
        stats
    });
    if let Some(half) = returned_half {
        transport.restore_recv(half);
    }
    (replica, transport, stats, hook)
}

/// The order stage: the deterministic, single-threaded consensus round
/// loop. Reads pre-decoded frames from the ingest queue when one exists,
/// or falls back to decoding inline for transports without a splittable
/// receive half.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn order_loop<V, T, H>(
    replica: &mut BatchingReplica<V>,
    transport: &mut T,
    cfg: &ServerConfig,
    hook: &mut H,
    ingest_rx: Option<&Receiver<IngestFrame<V>>>,
    meters: &NodeMeters,
    tracer: &Tracer,
    peers: &PeerTable,
) -> NodeStats
where
    V: Value + Wire + CmdKey,
    T: Transport,
    H: NodeHook<V>,
{
    let me = transport.local();
    let n = transport.peers();
    let ff_threshold = replica.config().b() + 1;
    let td = replica.td();
    let mut deadline = AdaptiveDeadline::new(
        cfg.initial_round_timeout,
        cfg.min_round_timeout,
        cfg.max_round_timeout,
    );
    let mut stats = NodeStats::default();
    // Frames for rounds we have not reached yet, and the highest future
    // round each sender has shown us (the fast-forward evidence).
    let mut future: FutureFrames<V> = BTreeMap::new();
    let mut ahead: Vec<u64> = vec![0; n];
    // --- state-transfer bookkeeping ---
    // The highest slot any peer frame referenced: evidence of how far the
    // cluster's log extends past ours.
    let mut peer_slot_high: u64 = 0;
    // Commit progress tracking: a stalled laggard with a big slot gap has
    // outrun the decision-claim horizon and needs a snapshot.
    let mut last_commit_len: u64 = replica.committed_slots() as u64;
    let mut stall_rounds: u64 = 0;
    // Manifests tallied by value: a chunk fetch starts only once b + 1
    // distinct senders vouch for the identical manifest — at least one is
    // honest, so the described state is the real folded prefix. Each
    // sender holds at most one live manifest (a newer one replaces its
    // older vote), so a Byzantine peer cannot crowd the tally.
    let mut manifest_votes: BTreeMap<SnapshotManifest, ProcessSet> = BTreeMap::new();
    // The active chunk fetch, if any (one at a time).
    let mut fetch: Option<Fetch> = None;
    // Serve throttles: last round each peer was served a manifest, and
    // chunks served to each peer this round.
    let mut last_served: Vec<u64> = vec![0; n];
    let mut chunk_budget: Vec<u32> = vec![0; n];
    // The round each sender was last heard in (any round tag counts as a
    // liveness signal). A sender silent for more than LIVENESS_GRACE
    // rounds stops counting toward the "full round" expectation, so a
    // crashed peer degrades pacing for a bounded window instead of
    // forcing every subsequent round to its deadline — the cluster is
    // explicitly supposed to keep serving with up to f nodes down.
    let mut last_heard: Vec<u64> = vec![0; n];
    // Liveness as of the previous round, to trace write-off/re-enroll
    // transitions exactly once per edge.
    let mut was_live: Vec<bool> = vec![true; n];
    // The lowest slot this node has not yet proposed a value for — new
    // slots in an outgoing bundle get a `proposed` trace event exactly
    // once.
    let mut proposed_next: u64 = 0;
    // First-seen windows gating the per-command relay stamps (relay
    // chunks repeat in-flight commands every round).
    let mut relayed_seen = SeenWindow::new(RELAY_SEEN_CAP);
    let mut merged_seen = SeenWindow::new(RELAY_SEEN_CAP);

    let mut r: u64 = 1;
    while r <= cfg.max_rounds {
        // Fast-forward: the (b+1)-th largest per-sender future round is
        // vouched for by at least one honest process.
        let mut tops = ahead.clone();
        tops.sort_unstable_by(|a, b| b.cmp(a));
        if let Some(&target) = tops.get(ff_threshold - 1) {
            if target > r {
                stats.fast_forwards += 1;
                meters.fast_forwards.inc();
                r = target;
                // Rounds below the jump are closed without executing.
                future = future.split_off(&r);
            }
        }

        let round = Round::new(r);
        let armed_deadline_us = deadline.current().as_micros() as u64;
        tracer.rec(Stage::Order, EventKind::RoundAdvance, r, armed_deadline_us);
        hook.before_round(r, replica);

        // --- send step ---
        // Stamps the outgoing bundle: `Proposed` once per new slot,
        // `Batched` once per command drained into a new slot's batch
        // (the batch-wait endpoint, detail = the proposed slot), and
        // `Relayed` once per first-relayed command (detail = peers the
        // chunk ships to).
        let trace_outgoing = |m: &SmrMsg<Batch<V>>,
                              next: &mut u64,
                              replica: &BatchingReplica<V>,
                              relayed_seen: &mut SeenWindow,
                              dest_peers: u64| {
            if tracer.enabled() {
                for (slot, _) in m.iter() {
                    if slot >= *next {
                        tracer.rec(Stage::Order, EventKind::Proposed, slot, r);
                        if let Some(cmds) = replica.proposed_batch(slot) {
                            for cmd in cmds {
                                tracer.rec(Stage::Order, EventKind::Batched, cmd.cmd_key(), slot);
                            }
                        }
                    }
                }
                for chunk in m.relays() {
                    for cmd in chunk.commands() {
                        let key = cmd.cmd_key();
                        if relayed_seen.insert(key) {
                            tracer.rec(Stage::Order, EventKind::Relayed, key, dest_peers);
                        }
                    }
                }
                *next = (*next).max(max_slot_of(m) + 1);
            }
        };
        let mut loopback: Option<SmrMsg<Batch<V>>> = None;
        match replica.send(round) {
            Outgoing::Silent => {}
            Outgoing::Broadcast(m) => {
                let frame = SyncFrame::Round(Envelope {
                    sender: me,
                    round,
                    msg: m.clone(),
                })
                .to_bytes();
                for d in (0..n).map(ProcessId::new).filter(|&d| d != me) {
                    transport.send(d, frame.clone());
                }
                trace_outgoing(
                    &m,
                    &mut proposed_next,
                    replica,
                    &mut relayed_seen,
                    n as u64 - 1,
                );
                loopback = Some(m);
            }
            Outgoing::Multicast { dests, msg } => {
                let frame = SyncFrame::Round(Envelope {
                    sender: me,
                    round,
                    msg: msg.clone(),
                })
                .to_bytes();
                trace_outgoing(
                    &msg,
                    &mut proposed_next,
                    replica,
                    &mut relayed_seen,
                    dests.iter().filter(|&d| d != me).count() as u64,
                );
                for d in dests.iter() {
                    if d == me {
                        loopback = Some(msg.clone());
                    } else {
                        transport.send(d, frame.clone());
                    }
                }
            }
            Outgoing::PerDest(_) => unreachable!("honest replicas never equivocate"),
        }

        // --- collect step ---
        let mut heard: HeardOf<SmrMsg<Batch<V>>> = HeardOf::empty(n);
        if let Some(m) = loopback {
            heard.put(me, m);
        }
        if let Some(buffered) = future.remove(&r) {
            for (sender, msg) in buffered {
                if tracer.enabled() {
                    for chunk in msg.relays() {
                        for cmd in chunk.commands() {
                            let key = cmd.cmd_key();
                            if merged_seen.insert(key) {
                                tracer.rec(
                                    Stage::Order,
                                    EventKind::RelayMerged,
                                    key,
                                    sender.index() as u64,
                                );
                            }
                        }
                    }
                }
                heard.put(sender, msg);
            }
        }
        last_heard[me.index()] = r;
        // Quorum telemetry: who this round heard from (first frame per
        // sender) and the instant the TD-th concordant message landed.
        let mut heard_from: Vec<bool> = vec![false; n];
        let mut quorum_done = heard.count() >= td;
        if quorum_done {
            // Loopback plus buffered frames already held a quorum at
            // round entry; attribute the completion to ourselves.
            tracer.rec(Stage::Order, EventKind::QuorumReached, r, me.index() as u64);
        }
        chunk_budget.iter_mut().for_each(|b| *b = 0);
        let started = Instant::now();
        let round_deadline = started + deadline.current();
        // Bounds the zero-timeout drain below so a flooding peer cannot
        // pin the loop in one round forever.
        let mut drain_budget = 16 * n;
        while heard.count() < n {
            // Once every *live* sender was heard (or the deadline hit),
            // stop waiting — but keep draining frames already queued with
            // a zero timeout: a written-off sender's buffered frames are
            // the only way it can re-enroll, so skipping the inbox
            // entirely would leave a fast-forwarded or formerly isolated
            // node permanently deaf.
            let now = Instant::now();
            let all_live_heard = heard.count() >= live_senders(&last_heard, r);
            let wait = if all_live_heard || now >= round_deadline {
                if drain_budget == 0 {
                    break;
                }
                drain_budget -= 1;
                Duration::ZERO
            } else {
                round_deadline - now
            };
            let got = match ingest_rx {
                // Pipelined path: the ingest stage already decoded and
                // sender-authenticated the frame.
                Some(rx) => {
                    let got = rx.recv_timeout(wait).ok();
                    if got.is_some() {
                        // Sample the depth on dequeue too, so the
                        // histogram sees drain as well as fill.
                        meters.ingest.queue_depth.record(rx.len() as u64);
                    }
                    got
                }
                // Fallback for transports without a splittable receive
                // half: decode inline on the order thread.
                None => match transport.recv_timeout(wait) {
                    Some((sender, frame)) => {
                        if sender.index() >= n {
                            continue;
                        }
                        let Some(sync) = decode_frame::<SmrMsg<Batch<V>>>(&frame) else {
                            continue; // garbage from a Byzantine peer
                        };
                        // Transport-level sender authentication.
                        if sync.sender() != sender {
                            continue;
                        }
                        Some((sender, sync))
                    }
                    None => None,
                },
            };
            let Some((sender, sync)) = got else {
                if all_live_heard || Instant::now() >= round_deadline {
                    break;
                }
                continue;
            };
            // Any authenticated frame is a liveness signal.
            last_heard[sender.index()] = last_heard[sender.index()].max(r);
            peers.heard(sender.index(), r);
            if tracer.enabled() && !heard_from[sender.index()] {
                heard_from[sender.index()] = true;
                tracer.rec(Stage::Order, EventKind::HeardFrom, r, sender.index() as u64);
            }
            let env = match sync {
                SyncFrame::Round(env) => env,
                SyncFrame::SnapshotRequest { have_slot, .. } => {
                    // Describe our snapshot to the laggard (throttled per
                    // sender; a manifest is metadata-only but building a
                    // synthesized fold behind it costs O(state)).
                    if r >= last_served[sender.index()] + SNAPSHOT_PROBE_AFTER / 2 {
                        if let Some(manifest) = hook.serve_manifest(replica, have_slot) {
                            if manifest.upto_slot > have_slot && manifest.consistent() {
                                last_served[sender.index()] = r;
                                stats.snapshots_served += 1;
                                tracer.rec(
                                    Stage::Transfer,
                                    EventKind::ManifestServed,
                                    manifest.upto_slot,
                                    sender.index() as u64,
                                );
                                let resp = SyncFrame::<SmrMsg<Batch<V>>>::Manifest {
                                    sender: me,
                                    manifest,
                                };
                                transport.send(sender, resp.to_bytes());
                            }
                        }
                    }
                    continue;
                }
                SyncFrame::Manifest { manifest, .. } => {
                    // Tally consistent manifests that extend our log; the
                    // fetch decision happens after the collect step. One
                    // live manifest per sender, and keys the log overtook
                    // are dropped — a Byzantine peer cannot grow this.
                    let floor = replica.committed_slots() as u64;
                    if manifest.upto_slot > floor && manifest.consistent() {
                        manifest_votes.retain(|m, who| {
                            who.remove(sender);
                            !who.is_empty() && m.upto_slot > floor
                        });
                        manifest_votes.entry(manifest).or_default().insert(sender);
                    }
                    continue;
                }
                SyncFrame::ChunkRequest {
                    upto_slot, index, ..
                } => {
                    // Serve one chunk (budgeted per sender per round).
                    if chunk_budget[sender.index()] < CHUNKS_SERVED_PER_SENDER_PER_ROUND {
                        if let Some(bytes) = hook.serve_chunk(replica, upto_slot, index) {
                            chunk_budget[sender.index()] += 1;
                            stats.chunks_served += 1;
                            meters.chunks_served.inc();
                            tracer.rec(
                                Stage::Transfer,
                                EventKind::ChunkServed,
                                upto_slot,
                                u64::from(index),
                            );
                            let resp = SyncFrame::<SmrMsg<Batch<V>>>::Chunk {
                                sender: me,
                                upto_slot,
                                index,
                                crc: gencon_crypto::crc32::crc32(&bytes),
                                bytes,
                            };
                            transport.send(sender, resp.to_bytes());
                        }
                    }
                    continue;
                }
                SyncFrame::Chunk {
                    upto_slot,
                    index,
                    crc,
                    bytes,
                    ..
                } => {
                    // Feed the active fetch — only the current attempt's
                    // single source is trusted; chunks from anyone else
                    // (or for other snapshots) are dropped unexamined, so
                    // an unsolicited flood from a lying voucher cannot
                    // race honest chunks into the assembly.
                    if let Some(f) = fetch.as_mut() {
                        if f.assembly.manifest().upto_slot == upto_slot
                            && sender == f.source()
                            && f.assembly.accept(index, crc, bytes)
                        {
                            stats.chunks_fetched += 1;
                            meters.chunks_fetched.inc();
                            tracer.rec(
                                Stage::Transfer,
                                EventKind::ChunkFetched,
                                upto_slot,
                                u64::from(index),
                            );
                            f.last_progress = r;
                        }
                    }
                    continue;
                }
            };
            peer_slot_high = peer_slot_high.max(max_slot_of(&env.msg));
            peers.ahead(sender.index(), max_slot_of(&env.msg));
            match env.round.number().cmp(&r) {
                std::cmp::Ordering::Less => {} // closed round: drop
                std::cmp::Ordering::Equal => {
                    // Stamp each first-seen relayed command before the
                    // bundle moves into the heard set — the receive step
                    // below merges fresh relays into the propose queue.
                    if tracer.enabled() {
                        for chunk in env.msg.relays() {
                            for cmd in chunk.commands() {
                                let key = cmd.cmd_key();
                                if merged_seen.insert(key) {
                                    tracer.rec(
                                        Stage::Order,
                                        EventKind::RelayMerged,
                                        key,
                                        sender.index() as u64,
                                    );
                                }
                            }
                        }
                    }
                    heard.put(sender, env.msg);
                    if !quorum_done && heard.count() >= td {
                        quorum_done = true;
                        tracer.rec(
                            Stage::Order,
                            EventKind::QuorumReached,
                            r,
                            sender.index() as u64,
                        );
                    }
                }
                std::cmp::Ordering::Greater => {
                    ahead[sender.index()] = ahead[sender.index()].max(env.round.number());
                    // Bounded buffering: a Byzantine peer cannot grow the
                    // future map without limit — frames past the horizon
                    // are dropped (the `ahead` evidence above is all the
                    // fast-forward rule needs), and within a round each
                    // sender keeps only its latest frame.
                    if env.round.number() <= r + FUTURE_HORIZON {
                        let entry = future.entry(env.round.number()).or_default();
                        if let Some(slot) = entry.iter_mut().find(|(s, _)| *s == sender) {
                            slot.1 = env.msg;
                        } else {
                            entry.push((sender, env.msg));
                        }
                    }
                }
            }
        }
        // A round is "full" when every live sender was heard — but a node
        // that only heard *itself* is isolated, not fast: it backs off
        // (otherwise an isolated node would spin rounds at the minimum
        // deadline, racing its round counter ahead of the real cluster).
        let solo = heard.count() <= 1 && n > 1;
        if heard.count() >= live_senders(&last_heard, r) && !solo {
            deadline.on_full_round(started.elapsed());
            stats.full_rounds += 1;
        } else {
            deadline.on_timeout();
            stats.timeouts += 1;
            meters.timeouts.inc();
            tracer.rec(Stage::Order, EventKind::Timeout, r, armed_deadline_us);
        }
        // Publish liveness edges: a peer crossing the grace window is
        // written off (and traced) once, not every round; any frame
        // re-enrolls it via `peers.heard` above.
        for p in (0..n).filter(|&p| p != me.index()) {
            let live = last_heard[p] + LIVENESS_GRACE >= r;
            if was_live[p] && !live {
                peers.write_off(p);
                tracer.rec(
                    Stage::Peer,
                    EventKind::PeerWrittenOff,
                    p as u64,
                    last_heard[p],
                );
            } else if live && !was_live[p] {
                tracer.rec(Stage::Peer, EventKind::PeerReEnrolled, p as u64, r);
            }
            was_live[p] = live;
        }

        // --- chunked state transfer: pick a b + 1-vouched manifest, pull
        // its chunks across rounds, install once SHA-verified ---
        let commit_point = replica.committed_slots() as u64;
        if fetch
            .as_ref()
            .is_some_and(|f| f.assembly.manifest().upto_slot <= commit_point)
        {
            fetch = None; // the log overtook the snapshot being fetched
        }
        if let Some(f) = fetch.as_mut() {
            if r.saturating_sub(f.last_progress) > FETCH_STALL_ROUNDS {
                // The current source stopped serving; rotate to the next
                // voucher, discarding its chunks so the next attempt
                // stays single-source (a silent-then-lying voucher must
                // not leave poisoned chunks behind for an honest source
                // to complete around). Once every voucher was tried
                // twice the manifest itself is stale (everyone
                // superseded it) — drop it and re-learn from fresh
                // requests.
                f.assembly.clear();
                f.attempt += 1;
                f.last_progress = r;
                if f.attempt > 2 * f.voters.len() {
                    manifest_votes.remove(f.assembly.manifest());
                    fetch = None;
                }
            }
        }
        if fetch.is_none() {
            let vouched = manifest_votes
                .iter()
                .filter(|(m, who)| who.len() >= ff_threshold && m.upto_slot > commit_point)
                .max_by_key(|(m, _)| m.upto_slot)
                .map(|(m, who)| (*m, *who));
            if let Some((manifest, voters)) = vouched {
                match ChunkAssembly::new(manifest) {
                    Some(assembly) => {
                        fetch = Some(Fetch {
                            assembly,
                            voters: voters.iter().collect(),
                            attempt: 0,
                            last_progress: r,
                        });
                    }
                    None => {
                        manifest_votes.remove(&manifest);
                    }
                }
            }
        }
        let mut assembled: Option<(SnapshotManifest, Vec<u8>)> = None;
        let mut abandon = false;
        if let Some(f) = fetch.as_mut() {
            match f.assembly.finish() {
                AssemblyOutcome::Done(state) => {
                    assembled = Some((*f.assembly.manifest(), state));
                }
                AssemblyOutcome::Corrupt => {
                    // This attempt's source served lying chunks (CRC
                    // fine, SHA wrong); the assembly discarded everything
                    // — rotate to the next voucher for a clean attempt,
                    // with the same twice-around abandonment bound as
                    // the stall path.
                    f.attempt += 1;
                    f.last_progress = r;
                    abandon = f.attempt > 2 * f.voters.len();
                }
                AssemblyOutcome::Incomplete => {
                    // Resumable pull: re-request a few missing indices
                    // from this attempt's source.
                    let dest = f.source();
                    let upto_slot = f.assembly.manifest().upto_slot;
                    for index in f.assembly.missing(CHUNK_REQUESTS_PER_ROUND) {
                        let req = SyncFrame::<SmrMsg<Batch<V>>>::ChunkRequest {
                            sender: me,
                            upto_slot,
                            index,
                        };
                        transport.send(dest, req.to_bytes());
                    }
                }
            }
        }
        if abandon {
            if let Some(f) = fetch.take() {
                manifest_votes.remove(f.assembly.manifest());
            }
        }
        if let Some((manifest, state)) = assembled {
            fetch = None;
            let mut buf = Bytes::from(state.clone());
            let decoded = FoldedState::<V>::decode(&mut buf).ok();
            let installed = decoded.as_ref().is_some_and(|fs| {
                replica.install_folded(&fs.dedup, fs.applied_len, manifest.upto_slot, r)
            });
            if installed {
                stats.snapshots_installed += 1;
                tracer.rec(
                    Stage::Transfer,
                    EventKind::SnapshotInstalled,
                    manifest.upto_slot,
                    state.len() as u64,
                );
                let fs = decoded.expect("installed implies decoded");
                hook.snapshot_installed(&manifest, &state, &fs, replica);
                manifest_votes.clear();
                stall_rounds = 0;
            } else {
                // A vouched-but-undecodable (or non-extending) state:
                // drop the manifest so the fetch is not retried verbatim
                // forever.
                manifest_votes.remove(&manifest);
            }
        }

        // --- transition step ---
        let committed_before = replica.committed_slots() as u64;
        replica.receive(round, &heard);
        if tracer.enabled() {
            for slot in committed_before..replica.committed_slots() as u64 {
                tracer.rec(Stage::Order, EventKind::Decided, slot, r);
            }
        }
        hook.after_round(r, replica);
        stats.rounds += 1;
        stats.last_round = r;
        meters.rounds.inc();
        meters.round_us.record(started.elapsed().as_micros() as u64);
        meters.round_now.set(r);
        meters.committed_now.set(replica.committed_slots() as u64);
        meters.applied_now.set(replica.applied_len() as u64);
        meters.queued_now.set(replica.queued() as u64);

        // --- laggard probe: stalled while peers work slots far ahead ⇒
        // the gap outran the claim horizon; ask for a snapshot ---
        let committed_now = replica.committed_slots() as u64;
        if committed_now > last_commit_len {
            last_commit_len = committed_now;
            stall_rounds = 0;
        } else {
            stall_rounds += 1;
        }
        if stall_rounds >= SNAPSHOT_PROBE_AFTER
            && stall_rounds.is_multiple_of(SNAPSHOT_PROBE_AFTER)
            && peer_slot_high >= committed_now + SNAPSHOT_GAP_MIN
        {
            stats.snapshot_requests += 1;
            tracer.rec(
                Stage::Transfer,
                EventKind::SnapshotRequested,
                committed_now,
                peer_slot_high,
            );
            let frame = SyncFrame::<SmrMsg<Batch<V>>>::SnapshotRequest {
                sender: me,
                have_slot: committed_now,
            }
            .to_bytes();
            for d in (0..n).map(ProcessId::new).filter(|&d| d != me) {
                transport.send(d, frame.clone());
            }
        }

        if debug_pacing() && stats.rounds % 64 == 0 {
            eprintln!(
                "[node {me}] round {r}: applied {} slots {} queued {} deadline {:?} \
                 (full {} timeout {} ff {})",
                replica.applied_len(),
                replica.committed_slots(),
                replica.queued(),
                deadline.current(),
                stats.full_rounds,
                stats.timeouts,
                stats.fast_forwards,
            );
        }

        if hook.should_stop(replica) {
            break;
        }
        if let Some(target) = cfg.stop_after_commands {
            if replica.applied_len() >= target {
                break;
            }
        }
        r += 1;
    }
    stats
}

fn decode_frame<M: Wire>(frame: &Bytes) -> Option<SyncFrame<M>> {
    let mut buf = frame.clone();
    SyncFrame::decode(&mut buf).ok()
}

/// The highest slot a round bundle references (slots, claims or the
/// implied next slot): how far its sender's log demonstrably extends.
fn max_slot_of<V>(msg: &SmrMsg<V>) -> u64 {
    msg.iter()
        .map(|(s, _)| s)
        .chain(msg.claims().iter().map(|(s, _)| *s))
        .max()
        .unwrap_or(0)
}

/// Whether `GENCON_NODE_DEBUG` asks for per-node pacing traces on stderr.
fn debug_pacing() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("GENCON_NODE_DEBUG").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{paxos, pbft};
    use gencon_net::ChannelTransport;
    use std::time::Duration;

    fn small_cfg(max_rounds: u64) -> ServerConfig {
        ServerConfig {
            initial_round_timeout: Duration::from_millis(30),
            min_round_timeout: Duration::from_millis(1),
            max_round_timeout: Duration::from_millis(300),
            max_rounds,
            stop_after_commands: None,
        }
    }

    /// Submits a fixed command block up front, then keeps the node alive
    /// (helping laggards) until *every* node reached the target — the
    /// cluster-wide analogue of the decided-engine linger.
    struct TestLoad {
        id: usize,
        submit: usize,
        target: usize,
        fed: bool,
        marked_done: bool,
        done: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        n: usize,
    }

    impl NodeHook<u64> for TestLoad {
        fn before_round(&mut self, _round: u64, replica: &mut BatchingReplica<u64>) {
            if !self.fed {
                self.fed = true;
                replica
                    .submit_all((0..self.submit as u64).map(|k| (self.id as u64) * 1_000_000 + k));
            }
        }

        fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
            if !self.marked_done && replica.applied().len() >= self.target {
                self.marked_done = true;
                self.done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            self.done.load(std::sync::atomic::Ordering::SeqCst) >= self.n
        }
    }

    fn spawn_cluster(
        n: usize,
        specs: Vec<BatchingReplica<u64>>,
        cfg: ServerConfig,
        submit_per_node: usize,
        target: usize,
    ) -> Vec<(BatchingReplica<u64>, NodeStats)> {
        let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mesh = ChannelTransport::mesh(n);
        let handles: Vec<_> = specs
            .into_iter()
            .zip(mesh)
            .enumerate()
            .map(|(i, (replica, tr))| {
                let hook = TestLoad {
                    id: i,
                    submit: submit_per_node,
                    target,
                    fed: false,
                    marked_done: false,
                    done: std::sync::Arc::clone(&done),
                    n,
                };
                std::thread::spawn(move || {
                    let (rep, _tr, stats, _hook) = run_smr_node(replica, tr, cfg, hook);
                    (rep, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn paxos_channel_cluster_commits_and_agrees() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let replicas: Vec<_> = (0..3)
            .map(|i| {
                BatchingReplica::new(ProcessId::new(i), spec.params.clone(), 8, usize::MAX)
                    .unwrap()
                    .with_window(2)
            })
            .collect();
        let out = spawn_cluster(3, replicas, small_cfg(4_000), 24, 48);
        let reference: Vec<u64> = out[0].0.applied().to_vec();
        assert!(reference.len() >= 48, "committed {}", reference.len());
        for (rep, stats) in &out {
            let log = rep.applied();
            let common = log.len().min(reference.len());
            assert_eq!(&log[..common], &reference[..common], "prefix agreement");
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn pbft_channel_cluster_commits_and_agrees() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let replicas: Vec<_> = (0..4)
            .map(|i| {
                BatchingReplica::new(ProcessId::new(i), spec.params.clone(), 8, usize::MAX)
                    .unwrap()
                    .with_window(2)
            })
            .collect();
        let out = spawn_cluster(4, replicas, small_cfg(4_000), 16, 32);
        let reference: Vec<u64> = out[0].0.applied().to_vec();
        assert!(reference.len() >= 32);
        for (rep, _) in &out {
            let log = rep.applied();
            let common = log.len().min(reference.len());
            assert_eq!(&log[..common], &reference[..common]);
        }
    }

    /// With one node down, rounds must not degenerate to waiting the full
    /// (max) deadline forever: after the liveness grace the dead sender is
    /// written off, the survivors' rounds count as full and the adaptive
    /// deadline re-shrinks. The cluster is supposed to keep *serving* with
    /// up to f nodes down, not limp at one round per max-timeout.
    #[test]
    fn pacing_recovers_when_one_node_is_down() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        // Node 3 never runs: its channel endpoint is silently dropped.
        let mut mesh = ChannelTransport::mesh(4);
        mesh.truncate(3);
        let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = mesh
            .into_iter()
            .enumerate()
            .map(|(i, tr)| {
                let params = spec.params.clone();
                // Enough work that the run extends well past the
                // LIVENESS_GRACE window in which the dead node still
                // counts toward the full-round expectation.
                let hook = TestLoad {
                    id: i,
                    submit: 80,
                    target: 240,
                    fed: false,
                    marked_done: false,
                    done: std::sync::Arc::clone(&done),
                    n: 3,
                };
                std::thread::spawn(move || {
                    let replica = BatchingReplica::new(ProcessId::new(i), params, 8, usize::MAX)
                        .unwrap()
                        .with_window(2);
                    let cfg = ServerConfig {
                        initial_round_timeout: Duration::from_millis(10),
                        min_round_timeout: Duration::from_millis(1),
                        max_round_timeout: Duration::from_millis(50),
                        max_rounds: 5_000,
                        stop_after_commands: None,
                    };
                    run_smr_node(replica, tr, cfg, hook)
                })
            })
            .collect();
        let out: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (rep, _t, stats, _hook) in &out {
            assert!(
                rep.applied().len() >= 240,
                "3 live of 4 (= n − b) keep committing, got {}",
                rep.applied().len()
            );
            // Once the grace window wrote node 3 off, rounds complete at
            // the live count: most rounds are full, not timeouts.
            assert!(
                stats.full_rounds > stats.timeouts,
                "pacing must recover: {} full vs {} timeouts over {} rounds",
                stats.full_rounds,
                stats.timeouts,
                stats.rounds
            );
        }
    }

    #[test]
    fn traced_cluster_records_quorum_telemetry() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let done = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mesh = ChannelTransport::mesh(3);
        let handles: Vec<_> = mesh
            .into_iter()
            .enumerate()
            .map(|(i, tr)| {
                let params = spec.params.clone();
                let hook = TestLoad {
                    id: i,
                    submit: 12,
                    target: 36,
                    fed: false,
                    marked_done: false,
                    done: std::sync::Arc::clone(&done),
                    n: 3,
                };
                std::thread::spawn(move || {
                    let replica = BatchingReplica::new(ProcessId::new(i), params, 8, usize::MAX)
                        .unwrap()
                        .with_window(2);
                    let rec = FlightRecorder::new(65_536);
                    run_smr_node_observed(
                        replica,
                        tr,
                        small_cfg(4_000),
                        hook,
                        None,
                        Some(&rec),
                        None,
                    );
                    rec
                })
            })
            .collect();
        for rec in handles.into_iter().map(|h| h.join().unwrap()) {
            let events = rec.tail(usize::MAX);
            // Every sender heard in a round is attributed, the quorum
            // completion instant is stamped, and both carry peer ids
            // inside the cluster.
            let heard: Vec<_> = events
                .iter()
                .filter(|e| e.kind == EventKind::HeardFrom)
                .collect();
            let quorum: Vec<_> = events
                .iter()
                .filter(|e| e.kind == EventKind::QuorumReached)
                .collect();
            assert!(!heard.is_empty(), "no HeardFrom events recorded");
            assert!(!quorum.is_empty(), "no QuorumReached events recorded");
            assert!(heard
                .iter()
                .all(|e| e.detail < 3 && e.stage == Stage::Order));
            assert!(quorum.iter().all(|e| e.detail < 3));
            // The round-scoped marks must join onto decided slots.
            let spans = gencon_trace::assemble_spans(&events);
            assert!(!spans.is_empty());
            assert!(
                spans.iter().any(|s| s.quorum_ts_us.is_some()),
                "no span joined a quorum mark"
            );
            // Causality on one clock: the quorum completes (and the
            // round's first frame arrives) before the decide lands.
            // Note first-heard may trail quorum — buffered frames from
            // an earlier window can hold a full quorum at round entry.
            for s in &spans {
                let d = s.decided_ts_us.unwrap();
                for ts in [s.first_heard_ts_us, s.quorum_ts_us].into_iter().flatten() {
                    assert!(ts <= d, "quorum mark after decide in slot {}", s.slot);
                }
            }
            // Satellite: timeouts and round advances carry the armed
            // adaptive deadline (µs), which is always ≥ the 1ms floor.
            for e in events
                .iter()
                .filter(|e| e.kind == EventKind::RoundAdvance || e.kind == EventKind::Timeout)
            {
                assert!(
                    e.detail >= 1_000,
                    "{:?} detail {} below the min deadline",
                    e.kind,
                    e.detail
                );
            }
        }
    }

    #[test]
    fn stats_track_rounds() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let replicas: Vec<_> = (0..3)
            .map(|i| {
                BatchingReplica::new(ProcessId::new(i), spec.params.clone(), 4, usize::MAX).unwrap()
            })
            .collect();
        let out = spawn_cluster(3, replicas, small_cfg(500), 4, 8);
        for (_, stats) in &out {
            assert!(stats.last_round >= stats.rounds.saturating_sub(1));
            assert_eq!(stats.fast_forwards, 0, "no restarts in this run");
        }
    }
}
