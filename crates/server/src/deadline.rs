//! Adaptive round deadlines: wall-clock pacing that tracks the network.
//!
//! A fixed round timeout is wrong in both directions: too short and every
//! round is "bad" (messages cut off → no progress), too long and the
//! common case crawls at the worst-case pace. The classic partial-synchrony
//! recipe is adaptive: *shrink* toward a small multiple of the observed
//! round time while rounds complete (every live sender heard before the
//! deadline), *grow* multiplicatively when a round times out — the same
//! shape as DLS/Paxos round-trip estimation or a TCP RTO. The deadline is
//! clamped to a configured `[min, max]` band so neither a burst of fast
//! rounds nor a long partition can push it somewhere it cannot recover
//! from quickly.

use std::time::Duration;

/// An adaptive per-round deadline: EWMA-tracked on full rounds,
/// exponential backoff on timeouts, clamped to `[min, max]`.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveDeadline {
    current: Duration,
    min: Duration,
    max: Duration,
}

impl AdaptiveDeadline {
    /// Starts at `initial`, adapting within `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    #[must_use]
    pub fn new(initial: Duration, min: Duration, max: Duration) -> Self {
        assert!(!min.is_zero(), "a zero deadline would drop every frame");
        assert!(min <= max, "deadline band is empty: {min:?} > {max:?}");
        AdaptiveDeadline {
            current: initial.clamp(min, max),
            min,
            max,
        }
    }

    /// The deadline to give the next round.
    #[must_use]
    pub fn current(&self) -> Duration {
        self.current
    }

    /// A round heard every live sender after `took`: track 2× the observed
    /// round time with an EWMA (α = 1/4), leaving headroom for jitter
    /// without parking at the worst case.
    pub fn on_full_round(&mut self, took: Duration) {
        let target = (took * 2).clamp(self.min, self.max);
        self.current = ((self.current * 3 + target) / 4).clamp(self.min, self.max);
    }

    /// A round expired before all senders were heard: back off
    /// exponentially (liveness under partial synchrony needs the deadline
    /// to eventually exceed the real message delay).
    pub fn on_timeout(&mut self) {
        self.current = (self.current * 2).min(self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn shrinks_toward_fast_rounds() {
        let mut d = AdaptiveDeadline::new(ms(100), ms(2), ms(1000));
        for _ in 0..40 {
            d.on_full_round(ms(1));
        }
        assert!(
            d.current() <= ms(4),
            "tracked down to ~2×1ms, got {:?}",
            d.current()
        );
        assert!(d.current() >= ms(2), "never below the floor");
    }

    #[test]
    fn grows_on_timeouts_and_caps() {
        let mut d = AdaptiveDeadline::new(ms(10), ms(2), ms(200));
        for _ in 0..20 {
            d.on_timeout();
        }
        assert_eq!(d.current(), ms(200), "backoff saturates at max");
    }

    #[test]
    fn recovers_after_a_bad_period() {
        let mut d = AdaptiveDeadline::new(ms(10), ms(2), ms(500));
        for _ in 0..10 {
            d.on_timeout();
        }
        let inflated = d.current();
        for _ in 0..60 {
            d.on_full_round(ms(3));
        }
        assert!(d.current() < inflated / 10, "EWMA re-converges after GST");
    }

    #[test]
    fn initial_is_clamped() {
        let d = AdaptiveDeadline::new(ms(1), ms(5), ms(50));
        assert_eq!(d.current(), ms(5));
        let d2 = AdaptiveDeadline::new(ms(500), ms(5), ms(50));
        assert_eq!(d2.current(), ms(50));
    }

    #[test]
    #[should_panic(expected = "band is empty")]
    fn rejects_inverted_band() {
        let _ = AdaptiveDeadline::new(ms(10), ms(50), ms(5));
    }
}
