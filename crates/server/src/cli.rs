//! Tiny flag parsing shared by the `gencon-server` and `gencon-client`
//! binaries (the workspace is offline — no clap; space-separated
//! `--flag value` pairs are all the cluster tooling needs).

use std::process::exit;

/// The value following `flag`, if present.
#[must_use]
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `flag`'s value, exiting with a usage error (status 2) on a
/// malformed value; `default` when the flag is absent.
pub fn parse_flag<T: std::str::FromStr>(bin: &str, args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("{bin}: bad value for {flag}: {raw}");
            exit(2);
        }),
    }
}

/// `flag`'s value, exiting with `usage` (status 2) when absent.
pub fn required_flag(bin: &str, args: &[String], flag: &str, usage: &str) -> String {
    flag_value(args, flag).unwrap_or_else(|| {
        eprintln!("{bin}: missing required flag {flag}");
        eprintln!("usage: {usage}");
        exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn flag_value_finds_pairs() {
        let a = args(&["bin", "--id", "3", "--algo", "pbft"]);
        assert_eq!(flag_value(&a, "--id").as_deref(), Some("3"));
        assert_eq!(flag_value(&a, "--algo").as_deref(), Some("pbft"));
        assert_eq!(flag_value(&a, "--missing"), None);
        // A trailing flag with no value is absent, not a panic.
        let b = args(&["bin", "--id"]);
        assert_eq!(flag_value(&b, "--id"), None);
    }

    #[test]
    fn parse_flag_defaults_when_absent() {
        let a = args(&["bin", "--cap", "32"]);
        assert_eq!(parse_flag::<usize>("t", &a, "--cap", 64), 32);
        assert_eq!(parse_flag::<usize>("t", &a, "--window", 4), 4);
    }
}
