//! The client-facing protocol: submit a command, get a committed ack.
//!
//! Clients speak length-prefixed frames (the same 4-byte little-endian
//! prefix the peer mesh uses) carrying [`ClientRequest`] /
//! [`ClientResponse`] values:
//!
//! * `Submit { cmd }` → the server queues `cmd` for a batch and, once the
//!   command is applied, answers `Committed { cmd, slot, offset, reply }`
//!   with the consensus slot it committed in, its offset in the
//!   replicated log — the linearization point a client can cite — and,
//!   when the server runs an application layer, the app's **reply**
//!   payload (a kv get's value, a transfer's new balance), making the
//!   protocol a real request/response service rather than a bare
//!   append-ack.
//! * `Backpressure { cmd, queued }` — the server's pending queue is past
//!   its limit; the command was **not** queued and should be retried after
//!   a pause. Echoing the command keeps the client retry loop stateless.
//! * `Redirect { cmd, to }` — this server is configured to not accept
//!   writes (e.g. a follower in a leader-pinned deployment); retry at
//!   process `to`. The command was not queued.
//!
//! Every decoder validates lengths against the same caps as the consensus
//! codec, so a malicious client cannot force allocations either.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gencon_net::wire::{Wire, WireError, MAX_BYTES};
use gencon_types::{ProcessId, Value};

/// What a client sends to a server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientRequest<V> {
    /// Submit one command for replication.
    Submit {
        /// The command; must be globally unique (clients namespace their
        /// ids, see `gencon_load::encode_cmd`).
        cmd: V,
    },
}

/// What a server answers. `R` is the application's reply type (offset
/// `u64` for the plain log application, so pre-application-layer clients
/// keep their old type).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientResponse<V, R = u64> {
    /// The command is applied: committed in `slot`, at log offset
    /// `offset`.
    Committed {
        /// The echoed command.
        cmd: V,
        /// Consensus slot the command's batch won.
        slot: u64,
        /// Position in the flattened replicated log.
        offset: u64,
        /// The application's reply (`None` from servers running without
        /// an application layer, or for re-acks whose reply aged out of
        /// the index).
        reply: Option<R>,
    },
    /// The server's queue is full; retry `cmd` after a pause.
    Backpressure {
        /// The echoed, **not queued** command.
        cmd: V,
        /// Queue depth observed at rejection time.
        queued: u64,
    },
    /// This server does not accept submissions; retry at `to`.
    Redirect {
        /// The echoed, **not queued** command.
        cmd: V,
        /// The process to submit to instead.
        to: ProcessId,
    },
}

impl<V: Value + Wire> Wire for ClientRequest<V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientRequest::Submit { cmd } => {
                buf.put_u8(1);
                cmd.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(ClientRequest::Submit {
                cmd: V::decode(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<V: Value + Wire, R: Wire> Wire for ClientResponse<V, R> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientResponse::Committed {
                cmd,
                slot,
                offset,
                reply,
            } => {
                buf.put_u8(1);
                cmd.encode(buf);
                slot.encode(buf);
                offset.encode(buf);
                reply.encode(buf);
            }
            ClientResponse::Backpressure { cmd, queued } => {
                buf.put_u8(2);
                cmd.encode(buf);
                queued.encode(buf);
            }
            ClientResponse::Redirect { cmd, to } => {
                buf.put_u8(3);
                cmd.encode(buf);
                to.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(ClientResponse::Committed {
                cmd: V::decode(buf)?,
                slot: u64::decode(buf)?,
                offset: u64::decode(buf)?,
                reply: Option::<R>::decode(buf)?,
            }),
            2 => Ok(ClientResponse::Backpressure {
                cmd: V::decode(buf)?,
                queued: u64::decode(buf)?,
            }),
            3 => Ok(ClientResponse::Redirect {
                cmd: V::decode(buf)?,
                to: ProcessId::decode(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write, M: Wire>(w: &mut W, msg: &M) -> std::io::Result<()> {
    let body = msg.to_bytes();
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Reads one length-prefixed frame, validating the length against
/// [`MAX_BYTES`] before allocating.
///
/// # Errors
///
/// I/O errors, oversized frames, or undecodable payloads (all surfaced as
/// `std::io::Error` so connection loops can treat them uniformly).
pub fn read_frame<R: Read, M: Wire>(r: &mut R) -> std::io::Result<M> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut buf = Bytes::from(body);
    let msg =
        M::decode(&mut buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    if buf.remaining() > 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "trailing bytes after frame payload",
        ));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut cursor = Vec::new();
        write_frame(&mut cursor, &v).unwrap();
        let mut rd = &cursor[..];
        let back: T = read_frame(&mut rd).unwrap();
        assert_eq!(back, v);
        assert!(rd.is_empty(), "frame consumed exactly");
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(ClientRequest::Submit { cmd: 42u64 });
        roundtrip(ClientRequest::Submit { cmd: u64::MAX });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip(ClientResponse::<u64>::Committed {
            cmd: 7u64,
            slot: 3,
            offset: 19,
            reply: Some(19),
        });
        roundtrip(ClientResponse::<u64>::Committed {
            cmd: 7u64,
            slot: 3,
            offset: 19,
            reply: None,
        });
        // A non-default reply type (what a kv server sends).
        roundtrip(ClientResponse::<u64, Vec<u8>>::Committed {
            cmd: 7u64,
            slot: 3,
            offset: 19,
            reply: Some(b"value".to_vec()),
        });
        roundtrip(ClientResponse::<u64>::Backpressure {
            cmd: 7u64,
            queued: 4096,
        });
        roundtrip(ClientResponse::<u64>::Redirect {
            cmd: 7u64,
            to: ProcessId::new(2),
        });
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut buf = Bytes::from_static(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            ClientRequest::<u64>::decode(&mut buf),
            Err(WireError::BadTag(9))
        );
        let mut buf2 = Bytes::from_static(&[0]);
        assert!(ClientResponse::<u64>::decode(&mut buf2).is_err());
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut rd = &raw[..];
        let err = read_frame::<_, ClientRequest<u64>>(&mut rd).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_error() {
        let mut cursor = Vec::new();
        write_frame(&mut cursor, &ClientRequest::Submit { cmd: 1u64 }).unwrap();
        for cut in 0..cursor.len() {
            let mut rd = &cursor[..cut];
            assert!(read_frame::<_, ClientRequest<u64>>(&mut rd).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let body = ClientRequest::Submit { cmd: 1u64 }.to_bytes();
        let mut raw = Vec::new();
        raw.extend_from_slice(&((body.len() + 2) as u32).to_le_bytes());
        raw.extend_from_slice(&body);
        raw.extend_from_slice(&[0xaa, 0xbb]);
        let mut rd = &raw[..];
        let err = read_frame::<_, ClientRequest<u64>>(&mut rd).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
