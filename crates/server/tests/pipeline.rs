//! Staged-pipeline safety tests.
//!
//! The gateway's apply and ack stages run on their own threads, so the
//! properties worth pinning down are the ones threading could break:
//!
//! * **Determinism** — a pipelined node's applied log, live application
//!   state and per-command replies are exactly what a single-threaded
//!   replay of the same applied log produces (property test over random
//!   kv command streams).
//! * **Clean shutdown** — `NodeHook::finish` drains the stages: every
//!   ack for an applied command reaches the client socket before the
//!   node returns; nothing is stranded in a queue.
//! * **Re-acks across a state-transfer jump** — a client retry of a
//!   command that committed *below* a chunked-state-transfer jump is
//!   answered from the transferred dedup set instead of being swallowed
//!   by the replica's dedup (the regression this PR fixes).

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;

use gencon_algos::paxos;
use gencon_app::{App, Applier, Folder, KvApp, KvCmd, KvOp, KvReply, LogApp};
use gencon_net::SnapshotManifest;
use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
use gencon_server::{
    read_frame, write_frame, ClientGateway, ClientRequest, ClientResponse, GatewayConfig, NodeHook,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_types::{ProcessId, Round};

/// One hand-driven consensus round of a single-replica (Paxos n = 1)
/// log, with the gateway hooks around it.
fn drive_round<A: gencon_app::App>(
    gw: &mut ClientGateway<A>,
    replica: &mut BatchingReplica<A::Cmd>,
    round: u64,
) {
    let r = Round::new(round);
    gw.before_round(round, replica);
    let out = replica.send(r);
    let mut heard: HeardOf<_> = HeardOf::empty(1);
    if let Outgoing::Broadcast(m) = out {
        heard.put(ProcessId::new(0), m);
    }
    replica.receive(r, &heard);
    gw.after_round(round, replica);
}

fn kv_cmds() -> impl Strategy<Value = Vec<KvCmd>> {
    let key = proptest::collection::vec(any::<u8>(), 0..4);
    let value = proptest::collection::vec(any::<u8>(), 0..6);
    proptest::collection::vec((0u8..3, key, value), 0..20).prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (variant, key, value))| KvCmd {
                id: i as u64,
                op: match variant {
                    0 => KvOp::Put { key, value },
                    1 => KvOp::Get { key },
                    _ => KvOp::Del { key },
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Commands submitted over the wire, ordered by the replica and
    /// applied + acked on the pipeline threads end in exactly the state a
    /// single-threaded replay of the applied log produces — same applied
    /// length, same `state_hash`, and every client ack carries the reply
    /// the sequential reference computes for that command.
    #[test]
    fn pipelined_node_matches_single_thread_reference(cmds in kv_cmds()) {
        let mut gw = ClientGateway::<KvApp>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        let spec = paxos::<Batch<KvCmd>>(1, 0, ProcessId::new(0)).unwrap();
        let mut replica =
            BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 8, usize::MAX).unwrap();

        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for cmd in &cmds {
            write_frame(&mut conn, &ClientRequest::Submit { cmd: cmd.clone() }).unwrap();
        }

        let mut round = 0u64;
        while replica.applied_len() < cmds.len() {
            round += 1;
            prop_assert!(round < 5_000, "stalled at {} of {}", replica.applied_len(), cmds.len());
            let before = replica.applied_len();
            drive_round(&mut gw, &mut replica, round);
            if replica.applied_len() == before && replica.queued() == 0 {
                // Submissions still in flight through the conn reader.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        gw.drain();

        // The single-threaded reference: replay the applied log.
        let mut reference = Applier::<KvApp>::new(KvApp::default());
        let mut expected: HashMap<u64, (u64, KvReply)> = HashMap::new();
        let (applied, slots) = (replica.applied().to_vec(), replica.applied_slots().to_vec());
        for (offset, (cmd, slot)) in applied.iter().zip(slots.iter()).enumerate() {
            let reply = reference.apply(*slot, cmd);
            expected.insert(cmd.id, (offset as u64, reply));
        }
        prop_assert_eq!(gw.applier().cursor(), cmds.len() as u64);
        // The pipelined apply must not diverge from the sequential
        // reference.
        prop_assert_eq!(gw.applier().app().state_hash(), reference.app().state_hash());

        // Every ack matches the reference's offset and reply.
        for _ in 0..cmds.len() {
            let resp: ClientResponse<KvCmd, KvReply> = read_frame(&mut conn).unwrap();
            let ClientResponse::Committed { cmd, offset, reply, .. } = resp else {
                panic!("expected a commit ack, got a bounce under light load");
            };
            let (want_offset, want_reply) = expected.remove(&cmd.id).expect("acked exactly once");
            prop_assert_eq!(offset, want_offset);
            prop_assert_eq!(reply, Some(want_reply));
        }
        prop_assert!(expected.is_empty());
        prop_assert_eq!(gw.acks_dropped(), 0);
    }
}

/// `NodeHook::finish` drains the apply and ack stages: acks for every
/// applied command are on the client socket when it returns, with no
/// reads ever polling in between — nothing is stranded in a stage queue.
#[test]
fn clean_shutdown_strands_no_acks() {
    let mut gw = ClientGateway::<LogApp<u64>>::listen(
        "127.0.0.1:0".parse().unwrap(),
        GatewayConfig::default(),
    )
    .unwrap();
    let spec = paxos::<Batch<u64>>(1, 0, ProcessId::new(0)).unwrap();
    let mut replica =
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 8, usize::MAX).unwrap();

    let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let cmds: Vec<u64> = (100..105).collect();
    for &cmd in &cmds {
        write_frame(&mut conn, &ClientRequest::Submit { cmd }).unwrap();
    }

    let mut round = 0u64;
    while replica.applied_len() < cmds.len() {
        round += 1;
        assert!(round < 5_000, "stalled at {}", replica.applied_len());
        let before = replica.applied_len();
        drive_round(&mut gw, &mut replica, round);
        if replica.applied_len() == before && replica.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // The event loop's exit path: finish() must flush everything.
    gw.finish(&mut replica);
    assert_eq!(gw.inflight(), 0, "an ack was stranded in the pipeline");
    assert_eq!(gw.acks_dropped(), 0);
    for (want_offset, &want_cmd) in cmds.iter().enumerate() {
        let resp: ClientResponse<u64> = read_frame(&mut conn).unwrap();
        let ClientResponse::Committed {
            cmd, offset, reply, ..
        } = resp
        else {
            panic!("expected a commit ack, got {resp:?}");
        };
        assert_eq!(cmd, want_cmd);
        assert_eq!(offset, want_offset as u64);
        assert_eq!(reply, Some(want_offset as u64));
    }
}

/// The transfer-jump re-ack regression: a node that installed a folded
/// snapshot never locally applied the commands below the jump, so a
/// client retry of one of them is dedup-swallowed by the replica. The
/// gateway must answer it from the transferred dedup set (slot known,
/// offset/reply unknown) instead of leaving the client hanging — and new
/// commands must keep committing normally above the jump.
#[test]
fn retry_across_state_transfer_jump_is_reacked() {
    let mut gw = ClientGateway::<LogApp<u64>>::listen(
        "127.0.0.1:0".parse().unwrap(),
        GatewayConfig::default(),
    )
    .unwrap();
    let spec = paxos::<Batch<u64>>(1, 0, ProcessId::new(0)).unwrap();
    let mut replica =
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 8, usize::MAX).unwrap();

    // The cluster's history this node never saw: commands 100, 200, 300
    // at slots 0..3, arriving as a folded snapshot (state transfer).
    let mut folder = Folder::<LogApp<u64>>::default();
    folder.absorb(&[100, 200, 300], &[0, 1, 2], 0, 3);
    let fs = folder.fold(8_192);
    assert_eq!(fs.applied_len, 3);
    assert!(replica.install_folded(&fs.dedup, fs.applied_len, 3, 1));
    let manifest = SnapshotManifest::describe(3, fs.applied_len, &fs.app);
    gw.snapshot_installed(&manifest, &fs.app, &fs, &mut replica);

    // A client retries command 300 — committed below the jump, so the
    // replica's dedup swallows the resubmission.
    let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
    write_frame(&mut conn, &ClientRequest::Submit { cmd: 300u64 }).unwrap();
    conn.set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut reack = None;
    for round in 1..200u64 {
        gw.before_round(round, &mut replica);
        if let Ok(resp) = read_frame::<_, ClientResponse<u64>>(&mut conn) {
            reack = Some(resp);
            break;
        }
    }
    assert_eq!(
        reack.expect("retry answered within the polling budget"),
        ClientResponse::Committed {
            cmd: 300,
            slot: 2,
            offset: 0,
            reply: None,
        },
        "the transferred dedup set must answer the retry (slot from the \
         jump; offset/reply unknown after a fold)"
    );
    assert_eq!(replica.applied_len(), 3, "no duplicate apply");

    // Fresh commands still flow normally above the jump.
    write_frame(&mut conn, &ClientRequest::Submit { cmd: 400u64 }).unwrap();
    let mut round = 200u64;
    while replica.applied_len() < 4 {
        round += 1;
        assert!(round < 5_000, "new command never committed after the jump");
        let before = replica.applied_len();
        drive_round(&mut gw, &mut replica, round);
        if replica.applied_len() == before && replica.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let resp: ClientResponse<u64> = read_frame(&mut conn).unwrap();
    // The slot depends on how many empty rounds elapsed while the
    // submission drained through the conn reader; offset and reply are
    // what the jump must not disturb.
    let ClientResponse::Committed {
        cmd, offset, reply, ..
    } = resp
    else {
        panic!("expected a commit ack, got {resp:?}");
    };
    assert_eq!((cmd, offset, reply), (400, 3, Some(3)));
    gw.drain();
    assert_eq!(gw.applier().cursor(), 4);
    assert_eq!(gw.applier().app().len(), 4, "restored log + one applied");
}
