//! Durability integration: a node dies (state dropped, like `kill -9`),
//! the survivors run on — snapshotting the **folded application state**
//! and compacting their logs far past the dead node's position, so
//! decision claims alone can no longer recover it — and the restarted
//! node must rebuild from its data dir (fold restore + WAL replay) and
//! close the remaining gap via `b + 1`-vouched **chunked state
//! transfer** over the mesh.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gencon_algos::pbft;
use gencon_app::{Applier, Folder, LogApp};
use gencon_net::wire_sync::{FoldedState, SnapshotManifest};
use gencon_net::ChannelTransport;
use gencon_server::{
    recover_replica, run_smr_node, DurableConfig, DurableNode, NodeHook, NodeStats, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_store::{FileWal, MemStore, WalConfig};
use gencon_types::ProcessId;

const N: usize = 4;
/// Commands each live node feeds.
const FEED: usize = 40;
/// Done once this many commands applied everywhere.
const TARGET: usize = 3 * FEED; // node 3's pre-death feed may be partial

/// Feeds a command block, optionally "dies" at a committed-slot count
/// (stop regardless of progress, state dropped), and otherwise serves
/// until every participant reported done. Runs a live `LogApp` applier —
/// the full-history app — so cross-node agreement can be asserted over
/// the *first TARGET applied commands* even though every replica
/// compacts that prefix out of its own memory.
struct Driver {
    id: usize,
    feed: usize,
    fed: bool,
    die_at_slot: Option<u64>,
    marked: bool,
    done: Arc<AtomicUsize>,
    quorum: usize,
    /// Survivors publish their compaction point here so the restarting
    /// node can wait until the claim horizon has provably passed it.
    base_floor: Option<Arc<AtomicU64>>,
    applier: Applier<LogApp<u64>>,
    /// Hard wall-clock stop so a wedged run fails loudly instead of
    /// hanging the suite.
    give_up: Instant,
}

impl NodeHook<u64> for Driver {
    fn before_round(&mut self, _round: u64, replica: &mut BatchingReplica<u64>) {
        if !self.fed {
            self.fed = true;
            replica.submit_all((0..self.feed as u64).map(|k| (self.id as u64) * 1_000_000 + k));
        }
    }

    fn after_round(&mut self, _round: u64, replica: &mut BatchingReplica<u64>) {
        if let Some(floor) = &self.base_floor {
            floor.fetch_max(replica.committed_base_slot(), Ordering::SeqCst);
        }
        // Runs as the inner hook, i.e. before the durable layer compacts,
        // so the applier always sees the suffix from its cursor on.
        self.applier.track(
            replica.applied(),
            replica.applied_slots(),
            replica.applied_base() as u64,
            replica.applied_len() as u64,
            |_, _, _, _| {},
        );
    }

    fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
        if let Some(die) = self.die_at_slot {
            return replica.committed_slots() as u64 >= die;
        }
        if !self.marked && replica.applied_len() >= TARGET {
            self.marked = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        self.done.load(Ordering::SeqCst) >= self.quorum || Instant::now() > self.give_up
    }

    fn snapshot_installed(
        &mut self,
        _manifest: &SnapshotManifest,
        _state: &[u8],
        fs: &FoldedState<u64>,
        _replica: &mut BatchingReplica<u64>,
    ) {
        self.applier.restore(fs).expect("live app restores");
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gencon-durability-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn durable_cfg() -> DurableConfig {
    DurableConfig {
        // Aggressive snapshots: the survivors' claim horizon races ahead
        // of the dead node within the downtime window. The tail stays
        // wider than the period so a transferred snapshot's successors
        // are still claimable when the restarted node lands on its cut
        // (otherwise it chases ever-newer snapshots under scheduling
        // pressure).
        snapshot_every: 16,
        snapshot_tail: 32,
        durable_ack: true,
    }
}

fn server_cfg() -> ServerConfig {
    // Termination comes from the done-quorum (plus the drivers'
    // wall-clock give-up), NOT from a round budget: idle Channel rounds
    // are sub-millisecond, so any fixed round count lets the survivors
    // spin out and exit while a heavily-scheduled restarted node is
    // still mid-transfer (a real flake under parallel test load).
    ServerConfig {
        initial_round_timeout: Duration::from_millis(20),
        min_round_timeout: Duration::from_millis(1),
        max_round_timeout: Duration::from_millis(200),
        max_rounds: u64::MAX,
        stop_after_commands: None,
    }
}

type NodeOut = (BatchingReplica<u64>, NodeStats, u64, u64, Option<[u8; 32]>);

#[test]
fn killed_durable_node_recovers_from_disk_and_chunked_state_transfer() {
    let spec = pbft::<Batch<u64>>(N, 1).unwrap();
    let done = Arc::new(AtomicUsize::new(0));
    let mesh = ChannelTransport::mesh(N);
    let data_dir = tmpdir("kill-restart");
    // One compaction-point cell per survivor: the restarting node waits
    // until every survivor compacted past its recovery point, so the
    // claim path is provably insufficient and state transfer must run.
    let bases: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();

    let make_replica = |i: usize, params: gencon_core::Params<Batch<u64>>| {
        BatchingReplica::new(ProcessId::new(i), params, 4, usize::MAX)
            .unwrap()
            .with_window(4)
            .with_dedup_horizon(256)
    };
    let give_up = Instant::now() + Duration::from_secs(180);
    let make_driver = move |i: usize,
                            feed: usize,
                            fed: bool,
                            die_at_slot: Option<u64>,
                            done: Arc<AtomicUsize>,
                            base_floor: Option<Arc<AtomicU64>>,
                            applier: Applier<LogApp<u64>>| Driver {
        id: i,
        feed,
        fed,
        die_at_slot,
        marked: false,
        done,
        quorum: N,
        base_floor,
        applier,
        give_up,
    };

    let mut handles = Vec::new();
    for (i, tr) in mesh.into_iter().enumerate() {
        let params = spec.params.clone();
        let done = Arc::clone(&done);
        let data_dir = data_dir.clone();
        let bases = bases.clone();
        handles.push(std::thread::spawn(move || -> NodeOut {
            if i == 3 {
                // --- Phase 1: durable node, killed after ~6 slots ---
                let (wal, _) = FileWal::open(&data_dir, WalConfig::default()).expect("open wal");
                let replica = make_replica(i, params.clone());
                let hook = DurableNode::new(
                    wal,
                    durable_cfg(),
                    Folder::<LogApp<u64>>::default(),
                    make_driver(
                        i,
                        FEED,
                        false,
                        Some(6),
                        Arc::clone(&done),
                        None,
                        Applier::default(),
                    ),
                );
                let (dead, transport, _stats, _hook) =
                    run_smr_node(replica, tr, server_cfg(), hook);
                let committed_at_death = dead.committed_slots() as u64;
                drop(dead); // kill -9: every byte of replica state gone
                assert!(committed_at_death >= 6);

                // Wait until every survivor compacted past everything
                // this node could have on disk — decision claims alone
                // then provably cannot recover it.
                let deadline = Instant::now() + Duration::from_secs(60);
                while bases
                    .iter()
                    .any(|b| b.load(Ordering::SeqCst) <= committed_at_death + 16)
                {
                    assert!(
                        Instant::now() < deadline,
                        "survivors never compacted past the dead node"
                    );
                    std::thread::sleep(Duration::from_millis(25));
                }

                // --- Phase 2: restart from the data dir ---
                let (wal, recovery) =
                    FileWal::open(&data_dir, WalConfig::default()).expect("reopen wal");
                let mut fresh = make_replica(i, params);
                let mut folder = Folder::<LogApp<u64>>::default();
                let recovered = recover_replica(&mut fresh, &mut folder, &recovery);
                let recovered_slots = fresh.committed_slots() as u64;
                assert!(
                    recovered_slots >= committed_at_death.saturating_sub(1),
                    "disk recovery must rebuild the committed prefix \
                     (had {committed_at_death} slots at death, recovered {recovered_slots})"
                );
                assert!(recovered.applied > 0, "recovered commands from disk");
                // The live applier resumes from the recovered fold.
                let applier = Applier::resume(folder.app().clone(), folder.applied_len());

                let hook = DurableNode::new(
                    wal,
                    durable_cfg(),
                    folder,
                    make_driver(i, 0, true, None, done, None, applier),
                );
                let (replica, _t, stats, hook) = run_smr_node(fresh, transport, server_cfg(), hook);
                let digest = hook.inner().applier.app().prefix_hash(TARGET);
                (replica, stats, committed_at_death, recovered_slots, digest)
            } else {
                // Survivors: durable semantics over MemStore (snapshot +
                // compaction without the disk, which is node 3's job).
                let replica = make_replica(i, params);
                let hook = DurableNode::new(
                    MemStore::new(),
                    durable_cfg(),
                    Folder::<LogApp<u64>>::default(),
                    make_driver(
                        i,
                        FEED,
                        false,
                        None,
                        done,
                        Some(Arc::clone(&bases[i])),
                        Applier::default(),
                    ),
                );
                let (replica, _t, stats, hook) = run_smr_node(replica, tr, server_cfg(), hook);
                let digest = hook.inner().applier.app().prefix_hash(TARGET);
                (replica, stats, 0, 0, digest)
            }
        }));
    }

    let results: Vec<NodeOut> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let (restarted, stats3, committed_at_death, recovered_slots, digest3) = &results[3];
    assert!(
        restarted.applied_len() >= TARGET,
        "restarted node caught up only to {} of {TARGET}",
        restarted.applied_len()
    );
    assert!(
        stats3.snapshots_installed >= 1,
        "the gap must close via snapshot state transfer, not claims alone \
         (requests: {}, installed: {})",
        stats3.snapshot_requests,
        stats3.snapshots_installed
    );
    assert!(
        stats3.chunks_fetched >= 1,
        "the transfer is chunked: at least one verified chunk was pulled"
    );
    // The claim horizon really was exceeded: the survivors compacted far
    // past everything the dead node had on disk.
    for (rep, stats, _, _, _) in &results[..3] {
        assert!(
            rep.committed_base_slot() > *recovered_slots,
            "survivor compaction point {} must exceed the dead node's \
             recovered prefix {recovered_slots} (death at {committed_at_death})",
            rep.committed_base_slot(),
        );
        assert!(stats.snapshots_served >= 1 || stats.rounds > 0);
    }
    // Agreement: every node's live LogApp (the restarted one included,
    // via fold restore + transfer) hashed the identical first-TARGET
    // applied prefix — the prefix itself is long compacted out of every
    // replica's memory by the end of the run.
    let digest3 = digest3.expect("restarted node's app covers the target prefix");
    for (i, (_, _, _, _, digest)) in results[..3].iter().enumerate() {
        assert_eq!(
            digest.expect("survivor's app covers the target prefix"),
            digest3,
            "node {i}'s applied-prefix digest diverges from the restarted node"
        );
    }
    // Where retained suffixes still overlap, contents must match too.
    let reference = &results[3].0;
    for (i, (rep, _, _, _, _)) in results[..3].iter().enumerate() {
        let lo = reference.applied_base().max(rep.applied_base());
        let hi = reference.applied_len().min(rep.applied_len());
        for abs in lo..hi {
            assert_eq!(
                reference.applied()[abs - reference.applied_base()],
                rep.applied()[abs - rep.applied_base()],
                "node {i} diverges at absolute offset {abs}"
            );
        }
    }

    std::fs::remove_dir_all(&data_dir).ok();
}
