//! End-to-end cluster tests: the full server stack over real transports.
//!
//! * A 4-node PBFT cluster over `TcpTransport` on localhost serves real
//!   TCP clients through the gateway protocol and commits ≥ 1000 client
//!   commands with agreeing applied logs (the repo's wire-level
//!   acceptance bar).
//! * A 4-node Channel cluster loses a node mid-run (thread stopped, state
//!   dropped — a SIGKILL stand-in); a fresh replica started on the same
//!   endpoint fast-forwards to the cluster's round and recommits the
//!   missed prefix via `b + 1`-concordant decision claims.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gencon_algos::pbft;
use gencon_app::LogApp;
use gencon_net::{probe_free_addrs, ChannelTransport, TcpTransport};
use gencon_server::{
    read_frame, run_smr_node, write_frame, ClientGateway, ClientRequest, ClientResponse,
    GatewayConfig, NodeHook, ServerConfig,
};
use gencon_smr::{Batch, BatchingReplica};
use gencon_types::ProcessId;

/// Delegates to the gateway; the node keeps serving until every *client*
/// reported done (the shutdown signal real deployments get from outside),
/// its own log reached the target, and a short grace of extra rounds
/// passed so laggard peers can finish their last slots.
struct GatewayUntilClientsDone {
    gateway: ClientGateway<LogApp<u64>>,
    target: usize,
    clients: usize,
    clients_done: Arc<AtomicUsize>,
    grace_left: u32,
}

impl NodeHook<u64> for GatewayUntilClientsDone {
    fn before_round(&mut self, round: u64, replica: &mut BatchingReplica<u64>) {
        self.gateway.before_round(round, replica);
    }

    fn after_round(&mut self, round: u64, replica: &mut BatchingReplica<u64>) {
        self.gateway.after_round(round, replica);
    }

    fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
        if self.clients_done.load(Ordering::SeqCst) >= self.clients
            && replica.applied().len() >= self.target
        {
            if self.grace_left == 0 {
                return true;
            }
            self.grace_left -= 1;
        }
        false
    }
}

/// A closed-loop TCP client: `clients` logical clients × `outstanding`
/// in flight, until `count` commands acked. Returns the acked commands.
fn closed_loop_client(
    server: SocketAddr,
    namespace: u16,
    clients: u16,
    outstanding: u32,
    count: usize,
) -> Vec<u64> {
    let encode =
        |c: u16, seq: u32| ((namespace as u64) << 48) | ((c as u64) << 32) | u64::from(seq);
    let mut stream = TcpStream::connect(server).expect("client connects");
    stream.set_nodelay(true).ok();
    let mut next_seq = vec![0u32; clients as usize];
    for c in 0..clients {
        for _ in 0..outstanding {
            let cmd = encode(c, next_seq[c as usize]);
            next_seq[c as usize] += 1;
            write_frame(&mut stream, &ClientRequest::Submit { cmd }).unwrap();
        }
    }
    let mut acked = Vec::with_capacity(count);
    while acked.len() < count {
        match read_frame::<_, ClientResponse<u64>>(&mut stream).expect("server answers") {
            ClientResponse::Committed { cmd, .. } => {
                acked.push(cmd);
                let c = (cmd >> 32) as u16;
                let cmd = encode(c, next_seq[c as usize]);
                next_seq[c as usize] += 1;
                write_frame(&mut stream, &ClientRequest::Submit { cmd }).unwrap();
            }
            other => panic!("unexpected bounce under light load: {other:?}"),
        }
    }
    acked
}

#[test]
fn tcp_pbft_cluster_serves_1000_client_commands() {
    const N: usize = 4;
    const PER_NODE: usize = 250;
    const TARGET: usize = N * PER_NODE; // every command reaches every log

    let spec = pbft::<Batch<u64>>(N, 1).unwrap();
    let peer_addrs = probe_free_addrs(N).unwrap();
    let clients_done = Arc::new(AtomicUsize::new(0));

    // Servers: mesh over TCP, client gateway each, batching replicas.
    let mut client_ports = Vec::new();
    let mut servers = Vec::new();
    for i in 0..N {
        let gateway = ClientGateway::<LogApp<u64>>::listen(
            "127.0.0.1:0".parse().unwrap(),
            GatewayConfig::default(),
        )
        .unwrap();
        client_ports.push(gateway.local_addr());
        let peer_addrs = peer_addrs.clone();
        let params = spec.params.clone();
        let clients_done = Arc::clone(&clients_done);
        servers.push(std::thread::spawn(move || {
            let transport =
                TcpTransport::connect_mesh(ProcessId::new(i), &peer_addrs).expect("mesh up");
            let replica = BatchingReplica::new(ProcessId::new(i), params, 64, usize::MAX)
                .unwrap()
                .with_window(4);
            let cfg = ServerConfig {
                initial_round_timeout: Duration::from_millis(40),
                min_round_timeout: Duration::from_millis(2),
                max_round_timeout: Duration::from_millis(500),
                max_rounds: 100_000,
                stop_after_commands: None,
            };
            let hook = GatewayUntilClientsDone {
                gateway,
                target: TARGET,
                clients: N,
                clients_done,
                grace_left: 40,
            };
            let (replica, _t, stats, _hook) = run_smr_node(replica, transport, cfg, hook);
            (replica, stats)
        }));
    }

    // One closed-loop client per server, distinct namespaces.
    let clients: Vec<_> = client_ports
        .iter()
        .enumerate()
        .map(|(i, &addr)| {
            let clients_done = Arc::clone(&clients_done);
            std::thread::spawn(move || {
                let acked = closed_loop_client(addr, i as u16, 5, 10, PER_NODE);
                clients_done.fetch_add(1, Ordering::SeqCst);
                acked
            })
        })
        .collect();
    for c in clients {
        let acked = c.join().unwrap();
        assert_eq!(acked.len(), PER_NODE);
    }

    let logs: Vec<(BatchingReplica<u64>, gencon_server::NodeStats)> =
        servers.into_iter().map(|h| h.join().unwrap()).collect();
    let reference = logs[0].0.applied();
    assert!(
        reference.len() >= TARGET,
        "node 0 applied only {} of {TARGET}",
        reference.len()
    );
    for (i, (rep, _stats)) in logs.iter().enumerate() {
        let log = rep.applied();
        assert!(log.len() >= TARGET, "node {i} applied only {}", log.len());
        let common = log.len().min(reference.len());
        assert_eq!(
            &log[..common],
            &reference[..common],
            "node {i} log diverges from node 0"
        );
    }
}

/// A hook that feeds a block of commands and optionally kills the node at
/// a round; the shared done-gate keeps survivors helping.
struct FeedAndMaybeDie {
    id: usize,
    feed: usize,
    fed: bool,
    die_at_round: Option<u64>,
    target: usize,
    marked: bool,
    done: Arc<AtomicUsize>,
    quorum: usize,
}

impl NodeHook<u64> for FeedAndMaybeDie {
    fn before_round(&mut self, _round: u64, replica: &mut BatchingReplica<u64>) {
        if !self.fed {
            self.fed = true;
            replica.submit_all((0..self.feed as u64).map(|k| (self.id as u64) * 1_000_000 + k));
        }
    }

    fn should_stop(&mut self, replica: &BatchingReplica<u64>) -> bool {
        if let Some(die) = self.die_at_round {
            // "SIGKILL": stop regardless of progress; state is dropped.
            return replica.committed_slots() as u64 >= die;
        }
        if !self.marked && replica.applied().len() >= self.target {
            self.marked = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        self.done.load(Ordering::SeqCst) >= self.quorum
    }
}

#[test]
fn restarted_node_catches_up_via_decision_claims() {
    const N: usize = 4;
    const TARGET: usize = 90;

    let spec = pbft::<Batch<u64>>(N, 1).unwrap();
    let done = Arc::new(AtomicUsize::new(0));
    let mesh = ChannelTransport::mesh(N);
    let cfg = ServerConfig {
        initial_round_timeout: Duration::from_millis(20),
        min_round_timeout: Duration::from_millis(5),
        max_round_timeout: Duration::from_millis(200),
        max_rounds: 100_000,
        stop_after_commands: None,
    };

    let mut handles = Vec::new();
    for (i, tr) in mesh.into_iter().enumerate() {
        let params = spec.params.clone();
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let make_replica = |params| {
                BatchingReplica::new(ProcessId::new(i), params, 4, usize::MAX)
                    .unwrap()
                    .with_window(4)
            };
            if i == 3 {
                // Phase 1: run until ~4 slots committed, then "crash".
                let replica = make_replica(params);
                let hook = FeedAndMaybeDie {
                    id: i,
                    feed: 40,
                    fed: false,
                    die_at_round: Some(4),
                    target: TARGET,
                    marked: false,
                    done: Arc::clone(&done),
                    quorum: N,
                };
                let (dead, transport, _stats, _hook) = run_smr_node(replica, tr, cfg, hook);
                let committed_before_death = dead.applied().len();
                drop(dead); // all replica state is lost
                            // The cluster runs on while this node is down — long
                            // enough that the survivors advance hundreds of rounds,
                            // far past the pacing liveness grace, so the restart
                            // exercises both the fast-forward jump and the
                            // re-enrollment of written-off peers.
                std::thread::sleep(Duration::from_millis(1_000));
                // Phase 2: a fresh replica on the same endpoint.
                let spec2 = pbft::<Batch<u64>>(N, 1).unwrap();
                let fresh = make_replica(spec2.params.clone());
                let hook = FeedAndMaybeDie {
                    id: i,
                    feed: 0,
                    fed: true,
                    die_at_round: None,
                    target: TARGET,
                    marked: false,
                    done,
                    quorum: N,
                };
                let (replica, _t, stats, _hook) = run_smr_node(fresh, transport, cfg, hook);
                assert!(
                    stats.fast_forwards > 0,
                    "the restarted node must jump to the cluster's round"
                );
                (replica, committed_before_death)
            } else {
                let replica = make_replica(params);
                let hook = FeedAndMaybeDie {
                    id: i,
                    feed: 40,
                    fed: false,
                    die_at_round: None,
                    target: TARGET,
                    marked: false,
                    done,
                    quorum: N,
                };
                let (replica, _t, _stats, _hook) = run_smr_node(replica, tr, cfg, hook);
                (replica, 0)
            }
        }));
    }

    let results: Vec<(BatchingReplica<u64>, usize)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    let survivor_log = results[0].0.applied();
    assert!(
        survivor_log.len() >= TARGET,
        "survivors committed {} of {TARGET}",
        survivor_log.len()
    );
    let (restarted, before_death) = (&results[3].0, results[3].1);
    let relog = restarted.applied();
    assert!(
        relog.len() >= TARGET,
        "restarted node caught up only to {} of {TARGET}",
        relog.len()
    );
    assert!(
        relog.len() > before_death + 20,
        "catch-up must recommit a real gap (had {before_death}, now {})",
        relog.len()
    );
    // The recommitted prefix is the survivors' committed prefix.
    let common = relog.len().min(survivor_log.len());
    assert_eq!(
        &relog[..common],
        &survivor_log[..common],
        "restarted log diverges from the cluster"
    );
}
