//! RFC 2104 HMAC over the in-tree SHA-256.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are hashed first, exactly as RFC 2104
/// prescribes.
///
/// ```
/// let tag = gencon_crypto::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256::sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape comparison of two MACs.
///
/// Comparison cost does not depend on where the first difference occurs. (In
/// a simulation this is not security-critical, but it costs nothing to do it
/// right.)
#[must_use]
pub fn mac_eq(a: &[u8; DIGEST_LEN], b: &[u8; DIGEST_LEN]) -> bool {
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131]; // key longer than block size
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_produce_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn mac_eq_behaviour() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b[31] ^= 1;
        assert!(!mac_eq(&a, &b));
    }
}
