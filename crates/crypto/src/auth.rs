//! PBFT-style pairwise authenticators simulating unforgeable signatures.
//!
//! A trusted dealer ([`KeyStore::dealer`]) derives a symmetric key for every
//! unordered pair of processes from a system master seed. An
//! [`Authenticator`] on a message is the vector of HMACs of that message, one
//! per receiver, computed with the sender's pairwise keys.
//!
//! Properties (matching the "authenticated Byzantine" model of §2.2):
//!
//! * an honest receiver `q` accepts an authenticator for `(sender = p, m)`
//!   only if the entry for `q` equals `HMAC(key(p, q), m)`;
//! * a Byzantine process does not know `key(p, q)` for honest `p, q`, so it
//!   cannot forge a message that `q` attributes to `p` (honest processes
//!   cannot be impersonated);
//! * authenticators can be *relayed*: the coordinator-based `Pcons` protocol
//!   forwards other processes' authenticated messages, and each final
//!   receiver verifies the original sender's MAC — a Byzantine coordinator
//!   cannot alter the content unnoticed.
//!
//! What this deliberately does **not** provide is third-party transferable
//! *proof* (non-repudiation); no protocol step in this workspace needs it.

use std::fmt;

use gencon_types::{ProcessId, MAX_PROCESSES};

use crate::hmac::{hmac_sha256, mac_eq};
use crate::sha256::DIGEST_LEN;

/// A per-receiver MAC vector over a message: the PBFT replacement for a
/// digital signature.
#[derive(Clone, PartialEq, Eq)]
pub struct Authenticator {
    sender: ProcessId,
    macs: Vec<[u8; DIGEST_LEN]>,
}

impl Authenticator {
    /// The claimed sender this authenticator vouches for.
    #[must_use]
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// Number of per-receiver entries (= n).
    #[must_use]
    pub fn len(&self) -> usize {
        self.macs.len()
    }

    /// Whether the authenticator carries no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.macs.is_empty()
    }

    /// Wire size in bytes (used by the message-complexity experiment E6).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        4 + self.macs.len() * DIGEST_LEN
    }

    /// Builds a deliberately corrupt authenticator (testing and adversaries).
    #[must_use]
    pub fn forged(sender: ProcessId, n: usize) -> Self {
        Authenticator {
            sender,
            macs: vec![[0u8; DIGEST_LEN]; n],
        }
    }
}

impl fmt::Debug for Authenticator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Authenticator(from {}, {} macs)",
            self.sender,
            self.macs.len()
        )
    }
}

/// A process's view of the pairwise-key matrix.
///
/// `KeyStore` holds the `n` keys process `owner` shares with every other
/// process, and produces/verifies [`Authenticator`]s.
#[derive(Clone)]
pub struct KeyStore {
    owner: ProcessId,
    n: usize,
    /// `keys[q]` = key shared between `owner` and process `q`.
    keys: Vec<[u8; DIGEST_LEN]>,
}

impl KeyStore {
    /// Trusted-dealer setup: derives key stores for all `n` processes from a
    /// master seed. Every pair `(p, q)` shares `key(p, q) = key(q, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_PROCESSES`.
    #[must_use]
    pub fn dealer(n: usize, master_seed: u64) -> Vec<KeyStore> {
        assert!(n > 0 && n <= MAX_PROCESSES, "invalid system size {n}");
        (0..n)
            .map(|p| {
                let owner = ProcessId::new(p);
                let keys = (0..n).map(|q| Self::pair_key(master_seed, p, q)).collect();
                KeyStore { owner, n, keys }
            })
            .collect()
    }

    /// Deterministic pairwise key derivation (symmetric in `p`/`q`).
    fn pair_key(master_seed: u64, p: usize, q: usize) -> [u8; DIGEST_LEN] {
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        let mut material = [0u8; 24];
        material[..8].copy_from_slice(&master_seed.to_be_bytes());
        material[8..16].copy_from_slice(&(lo as u64).to_be_bytes());
        material[16..24].copy_from_slice(&(hi as u64).to_be_bytes());
        crate::sha256::sha256(&material)
    }

    /// The process owning this store.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Number of processes in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Produces the authenticator for `message`, signed by this store's
    /// owner, verifiable by every process.
    #[must_use]
    pub fn authenticate(&self, message: &[u8]) -> Authenticator {
        let macs = self
            .keys
            .iter()
            .map(|key| hmac_sha256(key, message))
            .collect();
        Authenticator {
            sender: self.owner,
            macs,
        }
    }

    /// Verifies that `auth` is a valid authenticator by `claimed_sender` on
    /// `message`, as seen by this store's owner.
    ///
    /// Returns `false` (never panics) for mismatched sizes, wrong sender,
    /// or an invalid MAC.
    #[must_use]
    pub fn verify(&self, claimed_sender: ProcessId, message: &[u8], auth: &Authenticator) -> bool {
        if auth.sender != claimed_sender || auth.macs.len() != self.n {
            return false;
        }
        if claimed_sender.index() >= self.n {
            return false;
        }
        // key(self.owner, claimed_sender) is stored at keys[claimed_sender].
        let key = &self.keys[claimed_sender.index()];
        let expect = hmac_sha256(key, message);
        mac_eq(&expect, &auth.macs[self.owner.index()])
    }
}

impl fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyStore(owner {}, n {})", self.owner, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn honest_authentication_roundtrip() {
        let stores = KeyStore::dealer(4, 7);
        let auth = stores[2].authenticate(b"hello");
        for (receiver, store) in stores.iter().enumerate() {
            assert!(
                store.verify(p(2), b"hello", &auth),
                "receiver {receiver} rejects valid authenticator"
            );
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let stores = KeyStore::dealer(4, 7);
        let auth = stores[2].authenticate(b"hello");
        assert!(!stores[0].verify(p(2), b"hellO", &auth));
    }

    #[test]
    fn wrong_sender_rejected() {
        let stores = KeyStore::dealer(4, 7);
        let auth = stores[2].authenticate(b"hello");
        assert!(!stores[0].verify(p(1), b"hello", &auth));
    }

    #[test]
    fn byzantine_cannot_forge_between_honest_pairs() {
        let stores = KeyStore::dealer(4, 7);
        // p3 is Byzantine: it crafts an authenticator claiming to be p1 using
        // its *own* keys (the best it can do without key(p1, p0)).
        let fake = {
            let mut a = stores[3].authenticate(b"evil");
            a.sender = p(1);
            a
        };
        assert!(!stores[0].verify(p(1), b"evil", &fake));
        let zeroed = Authenticator::forged(p(1), 4);
        assert!(!stores[0].verify(p(1), b"evil", &zeroed));
    }

    #[test]
    fn relayed_authenticator_still_verifies() {
        // The Pcons coordinator use-case: p0 signs, p1 relays, p2 verifies.
        let stores = KeyStore::dealer(3, 99);
        let auth = stores[0].authenticate(b"vote");
        let relayed = auth.clone(); // byte-identical relay
        assert!(stores[2].verify(p(0), b"vote", &relayed));
    }

    #[test]
    fn pair_keys_are_symmetric_and_distinct() {
        let a = KeyStore::pair_key(1, 0, 3);
        let b = KeyStore::pair_key(1, 3, 0);
        assert_eq!(a, b, "key(p,q) == key(q,p)");
        assert_ne!(KeyStore::pair_key(1, 0, 1), KeyStore::pair_key(1, 0, 2));
        assert_ne!(KeyStore::pair_key(1, 0, 1), KeyStore::pair_key(2, 0, 1));
    }

    #[test]
    fn mismatched_size_rejected() {
        let stores4 = KeyStore::dealer(4, 7);
        let stores5 = KeyStore::dealer(5, 7);
        let auth5 = stores5[1].authenticate(b"m");
        assert!(!stores4[0].verify(p(1), b"m", &auth5));
    }

    #[test]
    fn encoded_len_accounts_for_macs() {
        let stores = KeyStore::dealer(4, 7);
        let auth = stores[0].authenticate(b"m");
        assert_eq!(auth.encoded_len(), 4 + 4 * 32);
        assert_eq!(auth.len(), 4);
        assert!(!auth.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid system size")]
    fn dealer_rejects_zero() {
        let _ = KeyStore::dealer(0, 1);
    }
}
