//! Message-authentication substrate for the authenticated Byzantine model.
//!
//! §2.2 of the paper distinguishes *authenticated* Byzantine faults (messages
//! can be signed, signatures cannot be forged) from plain Byzantine faults.
//! The coordinator-based implementation of the `Pcons` predicate (\[17], used
//! by `gencon-pcons`) relies on authentication so that a Byzantine
//! coordinator cannot alter relayed messages.
//!
//! Rather than pulling a cryptography dependency, this crate implements the
//! required primitives from scratch:
//!
//! * [`sha256()`] — FIPS 180-4 SHA-256 (verified against the standard test
//!   vectors),
//! * [`hmac`] — RFC 2104 HMAC-SHA-256,
//! * [`auth`] — PBFT-style *authenticators*: a trusted dealer hands every
//!   pair of processes a shared key at setup; a "signature" on a message is
//!   the vector of per-receiver MACs. Between honest processes this gives the
//!   unforgeability the paper's proofs need (a Byzantine process cannot make
//!   an honest receiver attribute a message to an honest sender), which is
//!   the only property any protocol step in this workspace uses.
//!
//! # Example
//!
//! ```
//! use gencon_crypto::KeyStore;
//! use gencon_types::ProcessId;
//!
//! let n = 4;
//! let stores = KeyStore::dealer(n, 42);
//! let alice = ProcessId::new(0);
//!
//! let sig = stores[0].authenticate(b"vote=7");
//! assert!(stores[1].verify(alice, b"vote=7", &sig));
//! assert!(!stores[1].verify(alice, b"vote=8", &sig), "tampering detected");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod crc32;
pub mod hmac;
pub mod sha256;

pub use auth::{Authenticator, KeyStore};
pub use hmac::hmac_sha256;
pub use sha256::{digest_of, sha256, Sha256, Sha256Hasher};
