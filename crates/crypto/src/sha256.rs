//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! The implementation is a direct transcription of the standard: 512-bit
//! blocks, 64 rounds, length-padded. It is not constant-time and makes no
//! side-channel claims — it only needs to be *correct*, since it runs inside
//! a simulation/testbed. Correctness is pinned by the NIST test vectors in
//! the unit tests.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use gencon_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without advancing `total_len` (padding bytes are not message
    /// bytes).
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffered] = byte;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// let d = gencon_crypto::sha256(b"");
/// assert_eq!(d[..4], [0xe3, 0xb0, 0xc4, 0x42]);
/// ```
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// A [`std::hash::Hasher`] backed by SHA-256, for authenticating arbitrary
/// `Hash` structures.
///
/// `Hash` implementations feed a deterministic byte stream for identical
/// values, so `digest_of` gives a stable 32-byte commitment to any message
/// structure — what the `gencon-pcons` authenticated relay signs.
///
/// The `finish()` method (required by the trait) returns the first 8 bytes
/// of the digest; prefer [`Sha256Hasher::digest`] for the full commitment.
#[derive(Clone, Debug, Default)]
pub struct Sha256Hasher {
    inner: Option<Sha256>,
}

impl Sha256Hasher {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256Hasher {
            inner: Some(Sha256::new()),
        }
    }

    /// Consumes the hasher, returning the full 32-byte digest.
    #[must_use]
    pub fn digest(mut self) -> [u8; DIGEST_LEN] {
        self.inner.take().unwrap_or_default().finalize()
    }
}

impl std::hash::Hasher for Sha256Hasher {
    fn write(&mut self, bytes: &[u8]) {
        if let Some(h) = self.inner.as_mut() {
            h.update(bytes);
        }
    }

    fn finish(&self) -> u64 {
        let digest = self.inner.clone().unwrap_or_default().finalize();
        u64::from_be_bytes(digest[..8].try_into().expect("digest is 32 bytes"))
    }
}

/// The SHA-256 commitment to any hashable value (structural digest).
///
/// ```
/// let a = gencon_crypto::sha256::digest_of(&("vote", 7u64));
/// let b = gencon_crypto::sha256::digest_of(&("vote", 7u64));
/// let c = gencon_crypto::sha256::digest_of(&("vote", 8u64));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[must_use]
pub fn digest_of<T: std::hash::Hash>(value: &T) -> [u8; DIGEST_LEN] {
    let mut hasher = Sha256Hasher::new();
    value.hash(&mut hasher);
    hasher.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 180-4 / classic test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&sha256(b"The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expect = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths straddling the 55/56/63/64 padding boundaries must all work.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let msg = vec![0xa5u8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            for b in &msg {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b"ab"), sha256(b"ba"));
    }

    #[test]
    fn hasher_digest_matches_structure() {
        let a = digest_of(&(1u64, "x"));
        let b = digest_of(&(1u64, "x"));
        assert_eq!(a, b);
        assert_ne!(a, digest_of(&(2u64, "x")));
        assert_ne!(a, digest_of(&(1u64, "y")));
    }

    #[test]
    fn hasher_finish_is_digest_prefix() {
        use std::hash::Hasher;
        let mut h = Sha256Hasher::new();
        h.write(b"abc");
        let short = h.finish();
        let full = h.digest();
        assert_eq!(short.to_be_bytes(), full[..8]);
    }
}
