//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
//!
//! Used as a cheap per-record / per-chunk integrity check: the WAL frames
//! every record with it so recovery can tell a torn or corrupted tail
//! from valid data, and chunked snapshot state transfer stamps every
//! chunk frame so accidental damage is caught before reassembly. CRC-32
//! is an integrity check against accidental corruption, not an
//! authenticator — data that crosses trust boundaries (snapshot states
//! vouched for by peers) additionally carries a SHA-256 hash.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Feeds `data` into a running (pre-inverted) CRC state; compose as
/// `update(update(!0, a), b) ^ !0 == crc32(a ++ b)`.
#[must_use]
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_composition() {
        assert_eq!(crc32(b""), 0);
        let whole = crc32(b"hello world");
        let composed = update(update(0xFFFF_FFFF, b"hello "), b"world") ^ 0xFFFF_FFFF;
        assert_eq!(whole, composed);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the committed prefix".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
