//! Systematic sweep of the catalog constructors against the paper's
//! resilience bounds (Table 1): every out-of-bound `(n, f)`/`(n, b)` pair
//! must yield a [`CatalogError`] — never a panic — and every in-bound pair
//! must build a validated spec whose `td` respects `TD ≤ n − b − f`.

use gencon_algos::{
    ben_or_benign, ben_or_byzantine, chandra_toueg, fab_paxos, mqb, one_third_rule, paxos,
    paxos_rotating, pbft, AlgorithmSpec, CatalogError,
};
use gencon_types::ProcessId;

/// The sweep grid: system sizes and fault bounds beyond every published
/// minimum, including the degenerate n = 0 and fault-free corners.
const N_RANGE: std::ops::RangeInclusive<usize> = 0..=24;
const FAULT_RANGE: std::ops::RangeInclusive<usize> = 0..=5;

fn assert_spec_coherent(spec: &AlgorithmSpec<u64>, n: usize) {
    assert_eq!(spec.params.cfg.n(), n, "{}: cfg.n mismatch", spec.name);
    let cfg = spec.params.cfg;
    assert!(
        spec.params.td <= cfg.correct_minimum(),
        "{}: TD {} exceeds n - b - f = {} (would block termination)",
        spec.name,
        spec.params.td,
        cfg.correct_minimum()
    );
    assert!(spec.params.td > 0, "{}: zero TD", spec.name);
}

fn assert_bound_violation(err: &CatalogError, n: usize, min_n: usize) {
    match err {
        CatalogError::BoundViolated {
            n: got_n,
            min_n: got_min,
            ..
        } => {
            assert_eq!(*got_n, n);
            assert_eq!(*got_min, min_n);
        }
        other => panic!("expected BoundViolated for n = {n}, got {other:?}"),
    }
}

#[test]
fn one_third_rule_rejects_n_at_most_3f() {
    for n in N_RANGE {
        for f in FAULT_RANGE {
            let result = one_third_rule::<u64>(n, f);
            if n > 3 * f {
                let spec = result.unwrap_or_else(|e| panic!("OTR({n},{f}) in-bound: {e}"));
                assert_spec_coherent(&spec, n);
            } else {
                assert_bound_violation(&result.unwrap_err(), n, 3 * f + 1);
            }
        }
    }
}

#[test]
fn fab_paxos_rejects_n_at_most_5b() {
    for n in N_RANGE {
        for b in FAULT_RANGE {
            let result = fab_paxos::<u64>(n, b);
            if n > 5 * b {
                let spec = result.unwrap_or_else(|e| panic!("FaB({n},{b}) in-bound: {e}"));
                assert_spec_coherent(&spec, n);
                // Table 1: TD > (n + 3b + f)/2 with f = 0, exactly minimal.
                assert!(2 * spec.params.td > n + 3 * b, "FaB TD below class-1 bound");
            } else {
                assert_bound_violation(&result.unwrap_err(), n, 5 * b + 1);
            }
        }
    }
}

#[test]
fn paxos_variants_reject_n_at_most_2f() {
    for n in N_RANGE {
        for f in FAULT_RANGE {
            let leader = paxos::<u64>(n, f, ProcessId::new(0));
            let rotating = paxos_rotating::<u64>(n, f);
            let ct = chandra_toueg::<u64>(n, f);
            if n > 2 * f {
                assert_spec_coherent(&leader.unwrap(), n);
                assert_spec_coherent(&rotating.unwrap(), n);
                let ct = ct.unwrap();
                assert_eq!(ct.params.td, f + 1, "CT decides on f + 1 echoes");
                assert_spec_coherent(&ct, n);
            } else {
                assert_bound_violation(&leader.unwrap_err(), n, 2 * f + 1);
                assert_bound_violation(&rotating.unwrap_err(), n, 2 * f + 1);
                assert_bound_violation(&ct.unwrap_err(), n, 2 * f + 1);
            }
        }
    }
}

#[test]
fn mqb_rejects_n_at_most_4b() {
    for n in N_RANGE {
        for b in FAULT_RANGE {
            let result = mqb::<u64>(n, b);
            if n > 4 * b {
                let spec = result.unwrap_or_else(|e| panic!("MQB({n},{b}) in-bound: {e}"));
                assert_spec_coherent(&spec, n);
                // Class-2 threshold at f = 0: TD > 3b, and MQB picks
                // ⌈(n + 2b + 1)/2⌉ which must still be reachable.
                assert!(spec.params.td > 3 * b, "MQB TD below class-2 bound");
            } else {
                assert_bound_violation(&result.unwrap_err(), n, 4 * b + 1);
            }
        }
    }
}

#[test]
fn pbft_rejects_any_shape_but_3b_plus_1() {
    for n in N_RANGE {
        for b in FAULT_RANGE {
            let result = pbft::<u64>(n, b);
            if n == 3 * b + 1 && b > 0 {
                let spec = result.unwrap_or_else(|e| panic!("PBFT({n},{b}): {e}"));
                assert_spec_coherent(&spec, n);
                assert_eq!(spec.params.td, 2 * b + 1);
            } else if n == 3 * b + 1 {
                // b = 0, n = 1: the shape holds but a 1-process Byzantine
                // "system" still has to produce a coherent spec or a
                // parameter error — either way, no panic.
                if let Ok(spec) = result {
                    assert_spec_coherent(&spec, n);
                }
            } else {
                match result.unwrap_err() {
                    CatalogError::ShapeMismatch {
                        expected_n,
                        n: got_n,
                        ..
                    } => {
                        assert_eq!(expected_n, 3 * b + 1);
                        assert_eq!(got_n, n);
                    }
                    other => panic!("PBFT({n},{b}): expected ShapeMismatch, got {other:?}"),
                }
            }
        }
    }
}

#[test]
fn ben_or_rejects_out_of_bound_systems() {
    for n in N_RANGE {
        for faults in FAULT_RANGE {
            let benign = ben_or_benign::<u64>(n, faults, [0, 1], 7);
            if n > 2 * faults {
                assert_spec_coherent(&benign.unwrap(), n);
            } else {
                assert_bound_violation(&benign.unwrap_err(), n, 2 * faults + 1);
            }

            let byz = ben_or_byzantine::<u64>(n, faults, [0, 1], 7);
            if n > 4 * faults {
                assert_spec_coherent(&byz.unwrap(), n);
            } else {
                assert_bound_violation(&byz.unwrap_err(), n, 4 * faults + 1);
            }
        }
    }
}

#[test]
fn errors_are_printable_and_name_the_bound() {
    let cases: Vec<(CatalogError, &str)> = vec![
        (one_third_rule::<u64>(3, 1).unwrap_err(), "n > 3f"),
        (fab_paxos::<u64>(5, 1).unwrap_err(), "n > 5b"),
        (mqb::<u64>(4, 1).unwrap_err(), "n > 4b"),
        (chandra_toueg::<u64>(2, 1).unwrap_err(), "n > 2f"),
        (
            ben_or_byzantine::<u64>(4, 1, [0, 1], 0).unwrap_err(),
            "n > 4b",
        ),
    ];
    for (err, bound) in cases {
        let msg = err.to_string();
        assert!(
            msg.contains(bound),
            "error `{msg}` does not quote `{bound}`"
        );
    }
    let shape = pbft::<u64>(6, 1).unwrap_err().to_string();
    assert!(
        shape.contains('4'),
        "PBFT shape error should name expected n: {shape}"
    );
}

#[test]
fn boundary_minimums_build_and_below_boundary_fails() {
    // The exact (min_n, fault) corner for every named algorithm of Table 1.
    assert!(one_third_rule::<u64>(4, 1).is_ok() && one_third_rule::<u64>(3, 1).is_err());
    assert!(fab_paxos::<u64>(6, 1).is_ok() && fab_paxos::<u64>(5, 1).is_err());
    assert!(paxos::<u64>(3, 1, ProcessId::new(0)).is_ok());
    assert!(paxos::<u64>(2, 1, ProcessId::new(0)).is_err());
    assert!(mqb::<u64>(5, 1).is_ok() && mqb::<u64>(4, 1).is_err());
    assert!(pbft::<u64>(4, 1).is_ok() && pbft::<u64>(3, 1).is_err());
    assert!(ben_or_byzantine::<u64>(5, 1, [0, 1], 0).is_ok());
    assert!(ben_or_byzantine::<u64>(4, 1, [0, 1], 0).is_err());
}
