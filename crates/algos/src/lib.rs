//! Named consensus algorithms instantiated from the generic construction
//! (§5 and §6 of the paper).
//!
//! Every algorithm here is nothing but a [`Params`] bundle — the engine is
//! identical; only the four parameters (`FLV`, `Selector`, `TD`, `FLAG`)
//! change. The constructors enforce each algorithm's published resilience
//! bound and reproduce the exact parameterizations of the paper:
//!
//! | Algorithm | Class | Model | Bound | TD |
//! |-----------|-------|-------|-------|----|
//! | [`one_third_rule`] | 1 | benign | n > 3f | ⌈(2n+1)/3⌉ |
//! | [`fab_paxos`] | 1 | Byzantine | n > 5b | ⌈(n+3b+1)/2⌉ |
//! | [`paxos`] / [`paxos_rotating`] | 2 (≡3 for b = 0) | benign | n > 2f | ⌈(n+1)/2⌉ |
//! | [`chandra_toueg`] | 2 | benign | n > 2f | f + 1 |
//! | [`mqb`] | 2 | Byzantine | n > 4b | ⌈(n+2b+1)/2⌉ |
//! | [`pbft`] | 3 | Byzantine | n > 3b (n = 3b+1) | 2b + 1 |
//! | [`ben_or_benign`] | 2 (randomized) | benign | n > 2f | f + 1 |
//! | [`ben_or_byzantine`] | 2 (randomized) | Byzantine | n > 4b | 3b + 1 |
//!
//! MQB ("Masking Quorum Byzantine") is the *new* algorithm the paper's
//! classification uncovered: class 2 with f = 0, requiring n > 4b — between
//! FaB Paxos (n > 5b) and PBFT (n > 3b), without PBFT's unbounded history.
//!
//! # Example
//!
//! ```
//! use gencon_algos::mqb;
//! # fn main() -> Result<(), gencon_algos::CatalogError> {
//! let spec = mqb::<u64>(5, 1)?; // the smallest MQB system
//! assert_eq!(spec.params.td, 4);
//! assert_eq!(spec.name, "MQB");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use gencon_core::{
    BenOrFlv, ChoicePolicy, Class1Flv, Class2Flv, ClassId, FabFlv, Flag, FullSelector,
    GenericConsensus, LivenessMode, Params, ParamsError, PaxosFlv, PbftFlv, RotatingCoordinator,
    StableLeader, StateProfile,
};
use gencon_types::{Config, ProcessId, Value};

/// A named, fully parameterized algorithm.
#[derive(Clone, Debug)]
pub struct AlgorithmSpec<V> {
    /// The published name ("Paxos", "PBFT", …).
    pub name: &'static str,
    /// Its class in Table 1.
    pub class: ClassId,
    /// Fault model ("benign" / "Byzantine").
    pub model: &'static str,
    /// The published resilience bound.
    pub bound: &'static str,
    /// The parameter bundle driving the generic engine.
    pub params: Params<V>,
}

impl<V: Value> AlgorithmSpec<V> {
    /// Builds the full fleet of processes with the given initial values
    /// (`inits.len()` must equal `n`).
    ///
    /// # Errors
    ///
    /// Propagates [`ParamsError`] from engine construction.
    pub fn spawn(&self, inits: &[V]) -> Result<Vec<GenericConsensus<V>>, ParamsError> {
        assert_eq!(
            inits.len(),
            self.params.cfg.n(),
            "one initial value per process"
        );
        inits
            .iter()
            .enumerate()
            .map(|(i, v)| GenericConsensus::new(ProcessId::new(i), self.params.clone(), v.clone()))
            .collect()
    }
}

/// Error constructing a catalog algorithm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CatalogError {
    /// The requested system size violates the algorithm's published bound.
    BoundViolated {
        /// Algorithm name.
        algo: &'static str,
        /// The bound, human-readable.
        bound: &'static str,
        /// Requested n.
        n: usize,
        /// Minimal admissible n.
        min_n: usize,
    },
    /// The derived parameters failed validation.
    Params(ParamsError),
    /// The algorithm pins `n` to a specific shape (PBFT: `n = 3b + 1`).
    ShapeMismatch {
        /// Algorithm name.
        algo: &'static str,
        /// Expected n.
        expected_n: usize,
        /// Requested n.
        n: usize,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::BoundViolated {
                algo,
                bound,
                n,
                min_n,
            } => write!(
                f,
                "{algo} requires {bound}: n = {n} is below the minimum {min_n}"
            ),
            CatalogError::Params(e) => write!(f, "{e}"),
            CatalogError::ShapeMismatch {
                algo,
                expected_n,
                n,
            } => {
                write!(f, "{algo} is defined for n = {expected_n}, got n = {n}")
            }
        }
    }
}

impl Error for CatalogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CatalogError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for CatalogError {
    fn from(e: ParamsError) -> Self {
        CatalogError::Params(e)
    }
}

/// OneThirdRule \[6]: benign class-1 algorithm, `n > 3f`,
/// `TD = ⌈(2n+1)/3⌉`, `FLAG = *`, `Selector = Π` (§5.1).
///
/// Two rounds per phase, votes only — the leanest instantiation.
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 3f`.
pub fn one_third_rule<V: Value>(n: usize, f: usize) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("OneThirdRule", "n > 3f", n, 3 * f + 1)?;
    let cfg = Config::benign(n, f).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Star,
        td: (2 * n + 1).div_ceil(3),
        flv: Arc::new(Class1Flv::new()),
        selector: Arc::new(FullSelector::new()),
        profile: StateProfile::VoteOnly,
        constant_selector: true,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "OneThirdRule",
        class: ClassId::One,
        model: "benign",
        bound: "n > 3f",
        params,
    })
}

/// FaB Paxos \[16]: Byzantine class-1 algorithm, `n > 5b`,
/// `TD = ⌈(n+3b+1)/2⌉`, `FLAG = *`, `Selector = Π`, FLV = Algorithm 6
/// (§5.1).
///
/// Decides in two rounds per phase — "fast" Byzantine consensus — at the
/// cost of the largest resilience requirement.
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 5b`.
pub fn fab_paxos<V: Value>(n: usize, b: usize) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("FaB Paxos", "n > 5b", n, 5 * b + 1)?;
    let cfg = Config::byzantine(n, b).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Star,
        td: FabFlv::td(n, b),
        flv: Arc::new(FabFlv::new()),
        selector: Arc::new(FullSelector::new()),
        profile: StateProfile::VoteOnly,
        constant_selector: true,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "FaB Paxos",
        class: ClassId::One,
        model: "Byzantine",
        bound: "n > 5b",
        params,
    })
}

/// Paxos \[11] with a stable leader: benign, `n > 2f`, `TD = ⌈(n+1)/2⌉`,
/// `FLAG = φ`, `Selector = {leader}`, FLV = Algorithm 7 (§5.3).
///
/// Models the steady state after leader election stabilized on `leader`;
/// use [`paxos_rotating`] for executions where the leader may crash.
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 2f`.
pub fn paxos<V: Value>(
    n: usize,
    f: usize,
    leader: ProcessId,
) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("Paxos", "n > 2f", n, 2 * f + 1)?;
    let cfg = Config::benign(n, f).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Phi,
        td: PaxosFlv::td(n),
        flv: Arc::new(PaxosFlv::new()),
        selector: Arc::new(StableLeader::new(leader)),
        profile: StateProfile::VoteTs,
        constant_selector: true,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "Paxos",
        class: ClassId::Two,
        model: "benign",
        bound: "n > 2f",
        params,
    })
}

/// Paxos with a rotating coordinator standing in for leader election
/// (the oracle of \[11] is itself eventual — rotation guarantees an
/// eventually-correct leader without modeling failure detection).
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 2f`.
pub fn paxos_rotating<V: Value>(n: usize, f: usize) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("Paxos", "n > 2f", n, 2 * f + 1)?;
    let cfg = Config::benign(n, f).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Phi,
        td: PaxosFlv::td(n),
        flv: Arc::new(PaxosFlv::new()),
        selector: Arc::new(RotatingCoordinator::new()),
        profile: StateProfile::VoteTs,
        constant_selector: false,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "Paxos (rotating)",
        class: ClassId::Two,
        model: "benign",
        bound: "n > 2f",
        params,
    })
}

/// Chandra–Toueg ◇S consensus \[5]: benign class-2 algorithm, `n > 2f`,
/// `TD = f + 1`, `FLAG = φ`, rotating coordinator, FLV = Algorithm 3 with
/// b = 0 (§5.2 context, Table 1).
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 2f`.
pub fn chandra_toueg<V: Value>(n: usize, f: usize) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("CT", "n > 2f", n, 2 * f + 1)?;
    let cfg = Config::benign(n, f).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Phi,
        td: f + 1,
        flv: Arc::new(Class2Flv::new()),
        selector: Arc::new(RotatingCoordinator::new()),
        profile: StateProfile::VoteTs,
        constant_selector: false,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "CT",
        class: ClassId::Two,
        model: "benign",
        bound: "n > 2f",
        params,
    })
}

/// MQB — the paper's new Masking Quorum Byzantine algorithm (§5.2):
/// class 2 with f = 0, `n > 4b`, `TD = ⌈(n+2b+1)/2⌉`, `FLAG = φ`,
/// `Selector = Π`, FLV = Algorithm 3.
///
/// Compared to PBFT it avoids the unbounded `history` variable, at the cost
/// of requiring `n > 4b` instead of `n > 3b`.
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 4b`.
pub fn mqb<V: Value>(n: usize, b: usize) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("MQB", "n > 4b", n, 4 * b + 1)?;
    let cfg = Config::byzantine(n, b).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Phi,
        td: (n + 2 * b + 1).div_ceil(2),
        flv: Arc::new(Class2Flv::new()),
        selector: Arc::new(FullSelector::new()),
        profile: StateProfile::VoteTs,
        constant_selector: true,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "MQB",
        class: ClassId::Two,
        model: "Byzantine",
        bound: "n > 4b",
        params,
    })
}

/// PBFT \[4] (single-instance core): Byzantine class-3 algorithm with
/// `n = 3b + 1`, `TD = 2b + 1`, `FLAG = φ`, `Selector = Π`, FLV =
/// Algorithm 8 (§5.3).
///
/// # Errors
///
/// [`CatalogError::ShapeMismatch`] if `n ≠ 3b + 1` (the paper pins PBFT's
/// shape; use [`Params::for_class`] with [`ClassId::Three`] for other
/// sizes).
pub fn pbft<V: Value>(n: usize, b: usize) -> Result<AlgorithmSpec<V>, CatalogError> {
    if n != 3 * b + 1 {
        return Err(CatalogError::ShapeMismatch {
            algo: "PBFT",
            expected_n: 3 * b + 1,
            n,
        });
    }
    let cfg = Config::byzantine(n, b).map_err(ParamsError::from)?;
    let params = Params {
        cfg,
        flag: Flag::Phi,
        td: PbftFlv::td(b),
        flv: Arc::new(PbftFlv::new()),
        selector: Arc::new(FullSelector::new()),
        profile: StateProfile::Full,
        constant_selector: true,
        skip_first_selection: false,
        choice: ChoicePolicy::DeterministicMin,
        liveness: LivenessMode::PartialSynchrony,
        prune_history: false,
    };
    params.validate()?;
    Ok(AlgorithmSpec {
        name: "PBFT",
        class: ClassId::Three,
        model: "Byzantine",
        bound: "n > 3b",
        params,
    })
}

/// Ben-Or \[1], benign version (§6): randomized binary consensus, `n > 2f`,
/// `TD = f + 1`, coin flips instead of deterministic choice, `Prel`
/// channels instead of partial synchrony.
///
/// `domain` is the binary value domain (e.g. `[0, 1]`).
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 2f`.
pub fn ben_or_benign<V: Value>(
    n: usize,
    f: usize,
    domain: [V; 2],
    seed: u64,
) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("Ben-Or", "n > 2f", n, 2 * f + 1)?;
    let cfg = Config::benign(n, f).map_err(ParamsError::from)?;
    let params = ben_or_params(cfg, f + 1, domain, seed)?;
    Ok(AlgorithmSpec {
        name: "Ben-Or",
        class: ClassId::Two,
        model: "benign (randomized)",
        bound: "n > 2f",
        params,
    })
}

/// Ben-Or \[1], Byzantine version (§6): `n > 4b`, `TD = 3b + 1`.
///
/// # Errors
///
/// [`CatalogError::BoundViolated`] if `n ≤ 4b`.
pub fn ben_or_byzantine<V: Value>(
    n: usize,
    b: usize,
    domain: [V; 2],
    seed: u64,
) -> Result<AlgorithmSpec<V>, CatalogError> {
    ensure_bound("Ben-Or (Byzantine)", "n > 4b", n, 4 * b + 1)?;
    let cfg = Config::byzantine(n, b).map_err(ParamsError::from)?;
    let params = ben_or_params(cfg, 3 * b + 1, domain, seed)?;
    Ok(AlgorithmSpec {
        name: "Ben-Or (Byzantine)",
        class: ClassId::Two,
        model: "Byzantine (randomized)",
        bound: "n > 4b",
        params,
    })
}

fn ben_or_params<V: Value>(
    cfg: Config,
    td: usize,
    domain: [V; 2],
    seed: u64,
) -> Result<Params<V>, ParamsError> {
    let params = Params {
        cfg,
        flag: Flag::Phi,
        td,
        flv: Arc::new(BenOrFlv::new()),
        selector: Arc::new(FullSelector::new()),
        profile: StateProfile::VoteTs,
        constant_selector: true,
        skip_first_selection: false,
        choice: ChoicePolicy::UniformCoin {
            domain: domain.to_vec(),
            seed,
        },
        liveness: LivenessMode::ReliableChannels,
        prune_history: false,
    };
    params.validate()?;
    Ok(params)
}

fn ensure_bound(
    algo: &'static str,
    bound: &'static str,
    n: usize,
    min_n: usize,
) -> Result<(), CatalogError> {
    if n < min_n {
        return Err(CatalogError::BoundViolated {
            algo,
            bound,
            n,
            min_n,
        });
    }
    Ok(())
}

/// A row of the catalog table (experiment E3 and the Table 1 generator).
#[derive(Clone, Copy, Debug)]
pub struct CatalogEntry {
    /// Algorithm name.
    pub name: &'static str,
    /// Class in Table 1.
    pub class: ClassId,
    /// Fault model.
    pub model: &'static str,
    /// Published resilience bound.
    pub bound: &'static str,
    /// Smallest system tolerating one fault: `(n, f, b)`.
    pub min_system: (usize, usize, usize),
}

/// Every algorithm of §5/§6 with its published parameters.
#[must_use]
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "OneThirdRule",
            class: ClassId::One,
            model: "benign",
            bound: "n > 3f",
            min_system: (4, 1, 0),
        },
        CatalogEntry {
            name: "FaB Paxos",
            class: ClassId::One,
            model: "Byzantine",
            bound: "n > 5b",
            min_system: (6, 0, 1),
        },
        CatalogEntry {
            name: "Paxos",
            class: ClassId::Two,
            model: "benign",
            bound: "n > 2f",
            min_system: (3, 1, 0),
        },
        CatalogEntry {
            name: "CT",
            class: ClassId::Two,
            model: "benign",
            bound: "n > 2f",
            min_system: (3, 1, 0),
        },
        CatalogEntry {
            name: "MQB",
            class: ClassId::Two,
            model: "Byzantine",
            bound: "n > 4b",
            min_system: (5, 0, 1),
        },
        CatalogEntry {
            name: "PBFT",
            class: ClassId::Three,
            model: "Byzantine",
            bound: "n > 3b",
            min_system: (4, 0, 1),
        },
        CatalogEntry {
            name: "Ben-Or",
            class: ClassId::Two,
            model: "benign (randomized)",
            bound: "n > 2f",
            min_system: (3, 1, 0),
        },
        CatalogEntry {
            name: "Ben-Or (Byzantine)",
            class: ClassId::Two,
            model: "Byzantine (randomized)",
            bound: "n > 4b",
            min_system: (5, 0, 1),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_third_rule_parameters() {
        let s = one_third_rule::<u64>(4, 1).unwrap();
        assert_eq!(s.params.td, 3);
        assert_eq!(s.params.flag, Flag::Star);
        assert_eq!(s.class, ClassId::One);
        assert!(one_third_rule::<u64>(3, 1).is_err(), "n > 3f required");
    }

    #[test]
    fn fab_paxos_parameters() {
        let s = fab_paxos::<u64>(6, 1).unwrap();
        assert_eq!(s.params.td, 5);
        assert_eq!(s.params.flag, Flag::Star);
        assert!(fab_paxos::<u64>(5, 1).is_err(), "n > 5b required");
    }

    #[test]
    fn paxos_parameters() {
        let s = paxos::<u64>(3, 1, ProcessId::new(0)).unwrap();
        assert_eq!(s.params.td, 2);
        assert_eq!(s.params.flag, Flag::Phi);
        assert_eq!(s.params.selector.name(), "stable-leader");
        assert!(paxos::<u64>(2, 1, ProcessId::new(0)).is_err());
        let r = paxos_rotating::<u64>(5, 2).unwrap();
        assert_eq!(r.params.selector.name(), "rotating-coordinator");
        assert!(!r.params.constant_selector);
    }

    #[test]
    fn chandra_toueg_parameters() {
        let s = chandra_toueg::<u64>(5, 2).unwrap();
        assert_eq!(s.params.td, 3);
        assert_eq!(s.params.flv.name(), "class2");
        assert!(chandra_toueg::<u64>(4, 2).is_err());
    }

    #[test]
    fn mqb_parameters() {
        let s = mqb::<u64>(5, 1).unwrap();
        assert_eq!(s.params.td, 4, "⌈(5+2+1)/2⌉");
        assert_eq!(s.params.profile, StateProfile::VoteTs, "no history needed");
        assert!(mqb::<u64>(4, 1).is_err(), "n > 4b required");
        let s9 = mqb::<u64>(9, 2).unwrap();
        assert_eq!(s9.params.td, 7);
    }

    #[test]
    fn pbft_parameters() {
        let s = pbft::<u64>(4, 1).unwrap();
        assert_eq!(s.params.td, 3);
        assert_eq!(s.params.profile, StateProfile::Full);
        assert!(matches!(
            pbft::<u64>(5, 1),
            Err(CatalogError::ShapeMismatch { expected_n: 4, .. })
        ));
    }

    #[test]
    fn ben_or_parameters() {
        let s = ben_or_benign::<u64>(3, 1, [0, 1], 42).unwrap();
        assert_eq!(s.params.td, 2);
        assert_eq!(s.params.liveness, LivenessMode::ReliableChannels);
        let b = ben_or_byzantine::<u64>(5, 1, [0, 1], 42).unwrap();
        assert_eq!(b.params.td, 4);
        assert!(ben_or_byzantine::<u64>(4, 1, [0, 1], 42).is_err());
    }

    #[test]
    fn spawn_builds_full_fleet() {
        let s = pbft::<u64>(4, 1).unwrap();
        let fleet = s.spawn(&[1, 2, 3, 4]).unwrap();
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[2].vote(), &3);
    }

    #[test]
    #[should_panic(expected = "one initial value per process")]
    fn spawn_rejects_wrong_arity() {
        let s = pbft::<u64>(4, 1).unwrap();
        let _ = s.spawn(&[1, 2]);
    }

    #[test]
    fn catalog_is_complete_and_consistent() {
        let cat = catalog();
        assert_eq!(cat.len(), 8);
        for e in &cat {
            let (n, f, b) = e.min_system;
            // Each catalog minimum must satisfy its class bound.
            assert!(
                n >= e.class.min_n(f, b) || e.name.contains("Ben-Or") || e.name == "PBFT",
                "{}: min system below class bound",
                e.name
            );
        }
        assert!(cat.iter().any(|e| e.name == "MQB"));
    }

    #[test]
    fn error_display() {
        let e = mqb::<u64>(4, 1).unwrap_err();
        assert!(e.to_string().contains("n > 4b"));
        let s = pbft::<u64>(7, 1).unwrap_err();
        assert!(s.to_string().contains("n = 4"));
    }
}
