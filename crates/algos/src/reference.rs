//! Reference implementations of *original* algorithms, used to validate
//! the paper's claims that the generic instantiations match (or slightly
//! improve on) them.
//!
//! Currently: the original OneThirdRule (Algorithm 5 of the paper, from
//! \[6]), transcribed literally. §5.1 claims the generic instantiation is a
//! *small improvement*: whenever Algorithm 5 selects a value, the
//! instantiated FLV (Algorithm 2 at `TD = ⌈(2n+1)/3⌉`) also selects one,
//! but not vice versa. The test suite and `exp_otr` verify both directions.

use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{ProcessId, Round, Value};

use gencon_core::VoteTally;

/// The original OneThirdRule algorithm (Algorithm 5; benign faults,
/// n > 3f), one message type, one round kind:
///
/// ```text
/// Round r:
///   S: send ⟨vote_p⟩ to all
///   T: if received more than 2n/3 messages then
///        vote_p := the smallest most often received value
///        if more than 2n/3 received values are equal to v then DECIDE v
/// ```
#[derive(Clone, Debug)]
pub struct OriginalOneThirdRule<V> {
    id: ProcessId,
    n: usize,
    vote: V,
    decision: Option<V>,
}

impl<V: Value> OriginalOneThirdRule<V> {
    /// Creates a process with its initial value.
    #[must_use]
    pub fn new(id: ProcessId, n: usize, init: V) -> Self {
        OriginalOneThirdRule {
            id,
            n,
            vote: init,
            decision: None,
        }
    }

    /// Current vote.
    #[must_use]
    pub fn vote(&self) -> &V {
        &self.vote
    }

    /// The literal selection rule of Algorithm 5, exposed for the
    /// comparison experiment: `Some(new_vote)` when more than `2n/3`
    /// messages were received.
    #[must_use]
    pub fn selection_rule(n: usize, votes: &[V]) -> Option<V> {
        if 3 * votes.len() > 2 * n {
            let tally = VoteTally::of_votes(votes.iter());
            tally.most_frequent().cloned()
        } else {
            None
        }
    }

    /// The literal decision rule of Algorithm 5: decide `v` when more than
    /// `2n/3` received values equal `v`.
    #[must_use]
    pub fn decision_rule(n: usize, votes: &[V]) -> Option<V> {
        let tally = VoteTally::of_votes(votes.iter());
        let candidate: Option<V> = tally
            .iter()
            .find(|(_, c)| 3 * c > 2 * n)
            .map(|(v, _)| v.clone());
        candidate
    }
}

impl<V: Value> RoundProcess for OriginalOneThirdRule<V> {
    type Msg = V;
    type Output = V;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn requirement(&self, _r: Round) -> Predicate {
        // The original algorithm merges selection and decision into one
        // round; it needs Pcons for the selection part of the argument.
        Predicate::Cons
    }

    fn send(&mut self, _r: Round) -> Outgoing<V> {
        Outgoing::Broadcast(self.vote.clone())
    }

    fn receive(&mut self, _r: Round, heard: &HeardOf<V>) {
        let votes: Vec<V> = heard.messages().cloned().collect();
        if let Some(new_vote) = Self::selection_rule(self.n, &votes) {
            self.vote = new_vote;
        }
        if self.decision.is_none() {
            if let Some(v) = Self::decision_rule(self.n, &votes) {
                self.decision = Some(v);
            }
        }
    }

    fn output(&self) -> Option<V> {
        self.decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_requires_two_thirds() {
        // n = 4: needs more than 8/3 ⇒ at least 3 messages.
        assert_eq!(OriginalOneThirdRule::selection_rule(4, &[1u64, 1]), None);
        assert_eq!(
            OriginalOneThirdRule::selection_rule(4, &[1u64, 1, 2]),
            Some(1)
        );
    }

    #[test]
    fn smallest_most_often_received() {
        // tie between 1 and 2 → smallest wins.
        assert_eq!(
            OriginalOneThirdRule::selection_rule(4, &[2u64, 1, 2, 1]),
            Some(1)
        );
        assert_eq!(
            OriginalOneThirdRule::selection_rule(4, &[2u64, 2, 1]),
            Some(2)
        );
    }

    #[test]
    fn decision_requires_two_thirds_of_n() {
        assert_eq!(
            OriginalOneThirdRule::decision_rule(4, &[1u64, 1, 1]),
            Some(1)
        );
        assert_eq!(OriginalOneThirdRule::decision_rule(4, &[1u64, 1, 2]), None);
        // even with few messages received, 2n/3 is over n, never satisfied
        assert_eq!(
            OriginalOneThirdRule::decision_rule(6, &[1u64, 1, 1, 1]),
            None
        );
        assert_eq!(
            OriginalOneThirdRule::decision_rule(6, &[1u64, 1, 1, 1, 1]),
            Some(1)
        );
    }

    #[test]
    fn synchronous_unanimous_run_decides_in_one_round() {
        let n = 4;
        let mut procs: Vec<_> = (0..n)
            .map(|i| OriginalOneThirdRule::new(ProcessId::new(i), n, 5u64))
            .collect();
        let r = Round::new(1);
        let outs: Vec<_> = procs.iter_mut().map(|p| p.send(r)).collect();
        for (i, proc_) in procs.iter_mut().enumerate() {
            let mut ho = HeardOf::empty(n);
            for (j, out) in outs.iter().enumerate() {
                if let Some(m) = out.message_for(ProcessId::new(i)) {
                    ho.put(ProcessId::new(j), m);
                }
            }
            proc_.receive(r, &ho);
        }
        for p in &procs {
            assert_eq!(p.output(), Some(5));
        }
    }

    #[test]
    fn divergent_run_converges_then_decides() {
        let n = 4;
        let mut procs: Vec<_> = (0..n)
            .map(|i| OriginalOneThirdRule::new(ProcessId::new(i), n, i as u64))
            .collect();
        for round in 1..=3u64 {
            let r = Round::new(round);
            let outs: Vec<_> = procs.iter_mut().map(|p| p.send(r)).collect();
            for (i, proc_) in procs.iter_mut().enumerate() {
                let mut ho = HeardOf::empty(n);
                for (j, out) in outs.iter().enumerate() {
                    if let Some(m) = out.message_for(ProcessId::new(i)) {
                        ho.put(ProcessId::new(j), m);
                    }
                }
                proc_.receive(r, &ho);
            }
        }
        let d = procs[0].output().expect("decides");
        for p in &procs {
            assert_eq!(p.output(), Some(d));
        }
        assert_eq!(d, 0, "smallest most-often-received value");
    }

    #[test]
    fn vote_accessor() {
        let p = OriginalOneThirdRule::new(ProcessId::new(0), 4, 9u64);
        assert_eq!(p.vote(), &9);
    }
}
