//! Bounded-memory regression tests: a long-running replica that snapshots
//! and compacts periodically keeps its resident state flat, recovery
//! replay rebuilds the exact log, and snapshot install fast-forwards a
//! fresh replica — all without breaking agreement.

use gencon_algos::pbft;
use gencon_rounds::{HeardOf, Outgoing, RoundProcess};
use gencon_smr::{Batch, BatchingReplica};
use gencon_types::{ProcessId, Round};

const N: usize = 4;

/// Drives `n` replicas one lock-step round, all-to-all delivery.
fn step(replicas: &mut [BatchingReplica<u64>], r: u64) {
    let round = Round::new(r);
    let msgs: Vec<_> = replicas.iter_mut().map(|rep| rep.send(round)).collect();
    let mut heard: HeardOf<_> = HeardOf::empty(replicas.len());
    for (i, out) in msgs.into_iter().enumerate() {
        if let Outgoing::Broadcast(m) = out {
            heard.put(ProcessId::new(i), m);
        }
    }
    for rep in replicas.iter_mut() {
        rep.receive(round, &heard);
    }
}

fn cluster(cap: usize, horizon: u64) -> Vec<BatchingReplica<u64>> {
    let spec = pbft::<Batch<u64>>(N, 1).unwrap();
    (0..N)
        .map(|i| {
            BatchingReplica::new(ProcessId::new(i), spec.params.clone(), cap, usize::MAX)
                .unwrap()
                .with_window(2)
                .with_dedup_horizon(horizon)
        })
        .collect()
}

/// The headline regression: with periodic snapshot + compaction, resident
/// state (applied suffix, committed batches, dedup sets) stays flat while
/// the log grows without bound.
#[test]
fn compacted_replica_resident_state_stays_flat() {
    const HORIZON: u64 = 32;
    const SNAPSHOT_EVERY: u64 = 40;
    let mut replicas = cluster(4, HORIZON);
    let mut next_cmd = 0u64;
    let mut high_water = (0usize, 0usize, 0usize);
    let mut compactions = 0u32;
    for r in 1..=1_500u64 {
        // A steady trickle of fresh commands at every replica.
        for rep in replicas.iter_mut() {
            rep.submit(next_cmd);
            next_cmd += 1;
        }
        step(&mut replicas, r);
        for rep in replicas.iter_mut() {
            // Snapshot policy: every SNAPSHOT_EVERY committed slots,
            // compact below the snapshot point (keeping a short tail, as
            // the durable layer does, so freshly committed state stays
            // answerable).
            let committed = rep.committed_slots() as u64;
            if committed >= rep.committed_base_slot() + SNAPSHOT_EVERY {
                rep.compact_below(committed.saturating_sub(16));
                compactions += 1;
            }
        }
        if r > 300 {
            for rep in &replicas {
                high_water.0 = high_water.0.max(rep.applied().len());
                high_water.1 = high_water.1.max(rep.committed_batches().len());
                high_water.2 = high_water.2.max(rep.seen_len());
            }
        }
    }
    assert!(compactions > 10, "the compaction path must actually run");
    let total = replicas[0].applied_len();
    assert!(total > 2_000, "the log must keep growing (got {total})");
    // Flat: the retained state is a small multiple of per-snapshot churn,
    // not of the total log length.
    assert!(
        high_water.0 < total / 4,
        "applied suffix high-water {} vs total {total}: not flat",
        high_water.0
    );
    assert!(
        high_water.1 < 2 * SNAPSHOT_EVERY as usize,
        "committed batches high-water {} : not flat",
        high_water.1
    );
    // seen is bounded by the dedup horizon's worth of commands plus the
    // live queue, far below the total log.
    assert!(
        high_water.2 < total / 4,
        "seen high-water {} vs total {total}: not flat",
        high_water.2
    );
    // Agreement is untouched by replica-local compaction times: compare
    // overlapping applied suffixes via absolute offsets.
    let reference = &replicas[0];
    for rep in &replicas[1..] {
        let lo = reference.applied_base().max(rep.applied_base());
        let hi = reference.applied_len().min(rep.applied_len());
        assert!(hi > lo, "suffixes must overlap");
        for abs in lo..hi {
            assert_eq!(
                reference.applied()[abs - reference.applied_base()],
                rep.applied()[abs - rep.applied_base()],
                "divergence at absolute offset {abs}"
            );
        }
    }
}

/// WAL-style replay rebuilds exactly the same applied log the original
/// replica had.
#[test]
fn replay_committed_rebuilds_the_log() {
    let mut replicas = cluster(3, 1_000);
    for rep in replicas.iter_mut() {
        rep.submit_all(0..24u64);
    }
    for r in 1..=80u64 {
        step(&mut replicas, r);
    }
    let original = &replicas[0];
    assert!(original.applied_len() >= 24);

    let spec = pbft::<Batch<u64>>(N, 1).unwrap();
    let mut recovered =
        BatchingReplica::new(ProcessId::new(0), spec.params.clone(), 3, usize::MAX).unwrap();
    for batch in original.committed_batches() {
        recovered.replay_committed(batch.clone());
    }
    assert_eq!(recovered.applied(), original.applied());
    assert_eq!(recovered.applied_slots(), original.applied_slots());
    assert_eq!(recovered.committed_slots(), original.committed_slots());
}

/// Snapshot install fast-forwards a fresh replica past a compacted gap
/// and further replay continues from the snapshot point.
#[test]
fn install_snapshot_fast_forwards_and_replay_continues() {
    let mut replicas = cluster(3, 1_000);
    for rep in replicas.iter_mut() {
        rep.submit_all(100..130u64);
    }
    for r in 1..=80u64 {
        step(&mut replicas, r);
    }
    let donor = &replicas[0];
    let slots = donor.committed_slots() as u64;
    assert!(slots >= 4);
    let cut = slots / 2;
    // The state-transfer payload: applied pairs below `cut`.
    let pairs: Vec<(u64, u64)> = donor
        .applied()
        .iter()
        .zip(donor.applied_slots())
        .filter(|(_, &s)| s < cut)
        .map(|(&c, &s)| (c, s))
        .collect();

    let spec = pbft::<Batch<u64>>(N, 1).unwrap();
    let mut laggard =
        BatchingReplica::new(ProcessId::new(3), spec.params.clone(), 3, usize::MAX).unwrap();
    assert!(laggard.install_snapshot(pairs.clone(), cut, 0));
    assert!(
        !laggard.install_snapshot(pairs, cut, 0),
        "a second install of the same snapshot is a no-op"
    );
    assert_eq!(laggard.committed_slots() as u64, cut);
    assert_eq!(laggard.applied_len(), {
        let donor_pairs = donor.applied_slots().iter().filter(|&&s| s < cut).count();
        donor_pairs
    });
    // Replay the rest like WAL records: logs converge exactly.
    for batch in &donor.committed_batches()[cut as usize..] {
        laggard.replay_committed(batch.clone());
    }
    assert_eq!(laggard.applied(), donor.applied());
}
