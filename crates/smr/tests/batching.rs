//! Property tests for the batch commit path: a batched run's flattened
//! committed log equals the unbatched run's log on the same client stream,
//! and honest replicas commit identical logs under partial synchrony with
//! crashes.

use proptest::prelude::*;

use gencon_algos::{paxos, pbft};
use gencon_sim::{properties, CrashAt, CrashPlan, Gst, Simulation};
use gencon_smr::{Batch, BatchingReplica, Replica};
use gencon_types::{ProcessId, Round};

/// A client stream: commands are distinct (as real client requests are)
/// and ordered, shared by every replica (clients broadcast submissions).
fn stream() -> impl Strategy<Value = Vec<u64>> {
    (1usize..24).prop_flat_map(|len| {
        proptest::collection::vec(1u64..1000, len..=len).prop_map(|v| {
            // Make commands distinct while preserving generation order.
            v.into_iter()
                .enumerate()
                .map(|(i, x)| x * 1000 + i as u64)
                .collect()
        })
    })
}

/// Runs the *unbatched* replicated log on `stream` and returns the
/// committed log (one command per slot).
fn run_unbatched(spec: &gencon_algos::AlgorithmSpec<u64>, stream: &[u64]) -> Vec<u64> {
    let mut builder = Simulation::builder(spec.params.cfg);
    for i in 0..spec.params.cfg.n() {
        let r = Replica::new(
            ProcessId::new(i),
            spec.params.clone(),
            stream.to_vec(),
            0,
            stream.len(),
        )
        .unwrap();
        builder = builder.honest(r);
    }
    let out = builder.build().unwrap().run(40 + 3 * stream.len() as u64);
    assert!(out.all_correct_decided, "unbatched run must terminate");
    out.outputs[0].clone().unwrap()
}

/// Runs the *batched* replicated log on the same stream and returns the
/// flattened applied log.
fn run_batched(
    spec: &gencon_algos::AlgorithmSpec<Batch<u64>>,
    stream: &[u64],
    cap: usize,
) -> Vec<u64> {
    let mut builder = Simulation::builder(spec.params.cfg);
    for i in 0..spec.params.cfg.n() {
        let mut r = BatchingReplica::new(ProcessId::new(i), spec.params.clone(), cap, stream.len())
            .unwrap();
        r.submit_all(stream.iter().copied());
        builder = builder.honest(r);
    }
    let out = builder.build().unwrap().run(40 + 3 * stream.len() as u64);
    assert!(out.all_correct_decided, "batched run must terminate");
    out.outputs[0].clone().unwrap()
}

proptest! {
    /// **Batching transparency**: on the same client stream, the batched
    /// log flattens to exactly the unbatched log — batching changes slot
    /// packing, never the applied command sequence.
    #[test]
    fn batched_log_equals_unbatched_log(cmds in stream(), cap in 1usize..10) {
        let unbatched = run_unbatched(&pbft::<u64>(4, 1).unwrap(), &cmds);
        let batched = run_batched(&pbft::<Batch<u64>>(4, 1).unwrap(), &cmds, cap);
        prop_assert_eq!(&unbatched, &cmds);
        prop_assert_eq!(&batched, &unbatched);
    }

    /// Same transparency for the benign leader-based entry.
    #[test]
    fn paxos_batched_log_equals_unbatched_log(cmds in stream(), cap in 1usize..6) {
        let unbatched = run_unbatched(&paxos::<u64>(3, 1, ProcessId::new(0)).unwrap(), &cmds);
        let batched = run_batched(
            &paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap(),
            &cmds,
            cap,
        );
        prop_assert_eq!(&batched, &unbatched);
    }

    /// **Agreement under faults**: all honest replicas commit identical
    /// flattened logs under partial synchrony (random GST, loss, seed)
    /// with a crash, and the committed commands come from the stream.
    #[test]
    fn honest_logs_agree_under_gst_with_crashes(
        cmds in stream(),
        cap in 1usize..8,
        gst in 2u64..14,
        loss_pct in 10u64..80,
        seed in 0u64..500,
        crash_round in 2u64..12,
        partial in 0usize..3,
    ) {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let mut builder = Simulation::builder(spec.params.cfg);
        for i in 0..3 {
            let mut r = BatchingReplica::new(
                ProcessId::new(i),
                spec.params.clone(),
                cap,
                cmds.len(),
            )
            .unwrap();
            r.submit_all(cmds.iter().copied());
            builder = builder.honest(r);
        }
        // Crash a non-leader replica (the stable leader must survive for
        // post-GST liveness).
        let crashes = CrashPlan::none().with(
            ProcessId::new(2),
            CrashAt::mid_send(Round::new(crash_round), partial),
        );
        let out = builder
            .network(Gst::new(gst, loss_pct as f64 / 100.0, seed))
            .crashes(crashes)
            .build()
            .unwrap()
            .run(gst + 80 + 4 * cmds.len() as u64);
        prop_assert!(out.all_correct_decided, "correct replicas terminate");
        prop_assert!(properties::agreement(&out, |log| log), "identical logs");
        let log = out.outputs[0].as_ref().unwrap();
        for c in log {
            prop_assert!(cmds.contains(c), "committed command {c} from the stream");
        }
    }
}

/// Deterministic end-to-end check of the 4× throughput claim the `loadgen`
/// smoke sweep asserts, at the test tier.
#[test]
fn batching_amortizes_rounds_per_command() {
    let spec = pbft::<Batch<u64>>(4, 1).unwrap();
    let cmds: Vec<u64> = (0..32).collect();
    let mut rounds = Vec::new();
    for cap in [1usize, 8] {
        let mut builder = Simulation::builder(spec.params.cfg);
        for i in 0..4 {
            let mut r =
                BatchingReplica::new(ProcessId::new(i), spec.params.clone(), cap, cmds.len())
                    .unwrap();
            r.submit_all(cmds.iter().copied());
            builder = builder.honest(r);
        }
        let out = builder.build().unwrap().run(400);
        assert!(out.all_correct_decided);
        rounds.push(out.rounds_executed);
    }
    assert!(
        rounds[1] * 4 <= rounds[0],
        "cap 8 ({} rounds) must be ≥ 4× faster than cap 1 ({} rounds)",
        rounds[1],
        rounds[0]
    );
}
