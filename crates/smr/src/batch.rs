//! The batch commit path: many client commands per consensus slot.
//!
//! [`BatchingReplica`] wraps a [`Replica`] running over
//! [`Batch<V>`](gencon_types::Batch) values. The queue of raw client
//! commands is re-partitioned into candidate batches of at most `batch_cap`
//! commands every round — so late arrivals join a batch right up to the
//! round that proposes it — and committed batches are flattened, in slot
//! order, into the applied command log. Agreement over the flattened log
//! follows from per-slot Agreement: every honest replica commits the same
//! batch in every slot, and flattening is deterministic.

use gencon_core::{Params, ParamsError};
use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{Batch, ProcessId, Round, Value};

use crate::{Replica, SmrMsg};

/// A replica that drains its pending queue into one [`Batch`] proposal per
/// slot instead of one command per slot.
///
/// The `commit_target` counts **commands** (not slots): the replica reports
/// [`RoundProcess::output`] — the flattened applied log, truncated to
/// exactly `commit_target` commands so every honest replica reports the
/// identical prefix — once that many commands committed.
///
/// ```
/// use gencon_smr::BatchingReplica;
/// use gencon_algos::pbft;
/// use gencon_types::{Batch, ProcessId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = pbft::<Batch<u64>>(4, 1)?;
/// let mut replica = BatchingReplica::new(
///     ProcessId::new(0),
///     spec.params.clone(),
///     8,  // batch cap: up to 8 commands per slot
///     3,  // commit target, in commands
/// )?;
/// replica.submit(10);
/// replica.submit(20);
/// assert_eq!(replica.queued(), 2);
/// # Ok(())
/// # }
/// ```
pub struct BatchingReplica<V: Value> {
    inner: Replica<Batch<V>>,
    /// Max commands per proposed batch.
    cap: usize,
    /// Raw client commands not yet drained into a proposed batch.
    queue: Vec<V>,
    /// The retained flattened applied log (absolute offsets
    /// `[applied_base, applied_base + applied.len())`; the prefix below
    /// `applied_base` was compacted away after a snapshot).
    applied: Vec<V>,
    /// Applied commands discarded by [`BatchingReplica::compact_below`]
    /// (0 until the first compaction).
    applied_base: usize,
    /// Global round at which each applied command committed (parallel to
    /// `applied`) — the harness's latency source.
    applied_rounds: Vec<u64>,
    /// Consensus slot each applied command committed in (parallel to
    /// `applied`) — the client-ack source: a server answers a submission
    /// with the `(slot, offset)` coordinates of the committed command.
    applied_slots: Vec<u64>,
    /// Committed slots already flattened into `applied` (an absolute slot
    /// count, unaffected by compaction).
    flattened: usize,
    /// Output fires at this many applied commands.
    commit_target: usize,
    /// Batches this replica proposed, by slot — compared against the
    /// committed batch so losing commands can be re-queued.
    proposed: std::collections::BTreeMap<crate::Slot, Batch<V>>,
    /// Every command that ever entered this replica (submitted or
    /// relayed) and not yet evicted from the dedup window: relay merging
    /// must not re-queue a command twice. Purely local (gates queueing
    /// only), so eviction cannot break agreement.
    seen: std::collections::HashSet<V>,
    /// Commands applied within the dedup horizon: with relays,
    /// overlapping batches can win different slots, so flattening
    /// deduplicates. The dedup decision **must be identical on every
    /// honest replica** (it determines the applied log), so membership is
    /// a pure function of the shared committed sequence: a command stays
    /// in the set for exactly `dedup_horizon` slots after the slot it
    /// applied in, evicted by the flatten loop itself — never by local
    /// compaction, which runs at replica-specific times.
    applied_set: std::collections::HashSet<V>,
    /// Eviction queue for `applied_set`/`seen`: `(slot, command)` in
    /// apply order. Bounds dedup memory to the horizon's worth of
    /// commands however long the replica runs.
    dedup_window: std::collections::VecDeque<(crate::Slot, V)>,
    /// Slots a command stays deduplicated after applying. Must be the
    /// same on every replica of a cluster (it shapes the shared log);
    /// client retries arriving later than this many slots after the
    /// original commit may be applied again (at-most-once within the
    /// horizon — the standard session-expiry tradeoff).
    dedup_horizon: u64,
}

/// Default [`BatchingReplica::with_dedup_horizon`]: far beyond any client
/// retry window at realistic slot rates, small enough to bound memory.
pub const DEFAULT_DEDUP_HORIZON: u64 = 8_192;

impl<V: Value> BatchingReplica<V> {
    /// Creates a batching replica.
    ///
    /// * `params` — consensus parameterization over `Batch<V>` values
    ///   (e.g. `gencon_algos::pbft::<Batch<u64>>(4, 1)?.params`);
    /// * `batch_cap` — maximum commands drained into one slot's proposal
    ///   (clamped to at least 1);
    /// * `commit_target` — how many applied **commands** constitute "done".
    ///
    /// # Errors
    ///
    /// Propagates [`ParamsError`] if `params` is invalid.
    pub fn new(
        id: ProcessId,
        params: Params<Batch<V>>,
        batch_cap: usize,
        commit_target: usize,
    ) -> Result<Self, ParamsError> {
        // The inner commit target is unbounded: slots keep turning (proposing
        // the empty no-op batch when the queue is dry) until *this* replica's
        // command-counted target fires.
        let inner = Replica::new(id, params, Vec::new(), Batch::empty(), usize::MAX)?;
        Ok(BatchingReplica {
            inner,
            cap: batch_cap.max(1),
            queue: Vec::new(),
            applied: Vec::new(),
            applied_base: 0,
            applied_rounds: Vec::new(),
            applied_slots: Vec::new(),
            flattened: 0,
            commit_target,
            proposed: std::collections::BTreeMap::new(),
            seen: std::collections::HashSet::new(),
            applied_set: std::collections::HashSet::new(),
            dedup_window: std::collections::VecDeque::new(),
            dedup_horizon: DEFAULT_DEDUP_HORIZON,
        })
    }

    /// Sets the slot pipelining window (see [`Replica::with_window`]).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.inner = self.inner.with_window(window);
        self
    }

    /// Sets the dedup horizon, in slots (clamped to ≥ 1). **All replicas
    /// of a cluster must use the same value** — the horizon determines
    /// which re-committed commands the shared flatten skips, so differing
    /// horizons would diverge the applied logs.
    #[must_use]
    pub fn with_dedup_horizon(mut self, slots: u64) -> Self {
        self.dedup_horizon = slots.max(1);
        self
    }

    /// Enqueues a client command. Duplicates of commands already seen
    /// (queued, proposed, relayed in, or applied) are dropped, so client
    /// retries and relay echoes are idempotent. Returns whether the
    /// command was freshly enqueued — `false` means the dedup set
    /// swallowed it, so a caller holding a client connection knows to
    /// answer the retry from its re-ack index instead of waiting for a
    /// commit that already happened.
    pub fn submit(&mut self, command: V) -> bool {
        if self.seen.insert(command.clone()) {
            self.queue.push(command);
            true
        } else {
            false
        }
    }

    /// Enqueues many client commands (deduplicated, see
    /// [`BatchingReplica::submit`]).
    pub fn submit_all(&mut self, commands: impl IntoIterator<Item = V>) {
        for c in commands {
            self.submit(c);
        }
    }

    /// The retained flattened applied command log, in commit order (the
    /// full log until the first [`BatchingReplica::compact_below`]; the
    /// suffix from absolute offset [`BatchingReplica::applied_base`]
    /// afterwards).
    #[must_use]
    pub fn applied(&self) -> &[V] {
        &self.applied
    }

    /// Applied commands discarded below the compaction point.
    #[must_use]
    pub fn applied_base(&self) -> usize {
        self.applied_base
    }

    /// Total commands ever applied (compacted prefix included).
    #[must_use]
    pub fn applied_len(&self) -> usize {
        self.applied_base + self.applied.len()
    }

    /// The applied log alongside the global round each command committed at.
    #[must_use]
    pub fn applied_with_rounds(&self) -> (&[V], &[u64]) {
        (&self.applied, &self.applied_rounds)
    }

    /// The consensus slot each applied command committed in (parallel to
    /// [`BatchingReplica::applied`]).
    #[must_use]
    pub fn applied_slots(&self) -> &[u64] {
        &self.applied_slots
    }

    /// Commands still queued (not yet drained into a proposal).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Committed consensus slots so far (including no-op slots and the
    /// compacted prefix).
    #[must_use]
    pub fn committed_slots(&self) -> usize {
        self.inner.committed_len()
    }

    /// The retained committed batches, one per slot from
    /// [`BatchingReplica::committed_base_slot`] — what the durable layer
    /// appends to its write-ahead log.
    #[must_use]
    pub fn committed_batches(&self) -> &[Batch<V>] {
        self.inner.committed()
    }

    /// First slot still retained in [`BatchingReplica::committed_batches`].
    #[must_use]
    pub fn committed_base_slot(&self) -> crate::Slot {
        self.inner.committed_base()
    }

    /// Commands currently held for dedup (the `seen` set) — regression
    /// surface for the bounded-memory guarantee.
    #[must_use]
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// The configured batch cap.
    #[must_use]
    pub fn batch_cap(&self) -> usize {
        self.cap
    }

    /// The commands this replica proposed for `slot`, while the slot is
    /// still open (proposals are dropped once the slot commits or
    /// compacts). Tracing reads this right after a round's send step to
    /// stamp each drained command with the slot its batch was proposed
    /// for.
    #[must_use]
    pub fn proposed_batch(&self, slot: crate::Slot) -> Option<&[V]> {
        self.proposed.get(&slot).map(|b| b.commands())
    }

    /// Slots this replica currently has an open proposal for, ascending.
    pub fn proposed_slots(&self) -> impl Iterator<Item = crate::Slot> + '_ {
        self.proposed.keys().copied()
    }

    /// The configured dedup horizon, in slots (see
    /// [`BatchingReplica::with_dedup_horizon`]) — the folding layer needs
    /// it to carry exactly the still-live dedup window in a snapshot.
    #[must_use]
    pub fn dedup_horizon(&self) -> u64 {
        self.dedup_horizon
    }

    /// The system configuration (n, f, b) this replica runs under.
    #[must_use]
    pub fn config(&self) -> gencon_types::Config {
        self.inner.config()
    }

    /// The decision threshold TD — how many concordant round messages
    /// complete a quorum.
    #[must_use]
    pub fn td(&self) -> usize {
        self.inner.td()
    }

    /// Flattens any newly committed batches into the applied log, stamping
    /// each command with the round it committed at, and re-queues our own
    /// commands whose proposed batch lost the slot.
    fn flatten(&mut self, r: Round) {
        let before = self.flattened;
        let mut lost: Vec<V> = Vec::new();
        while self.flattened < self.inner.committed_len() {
            let slot = self.flattened as crate::Slot;
            // Evict dedup entries past the horizon *before* this slot's
            // dedup decisions — a pure function of (shared sequence,
            // shared horizon), so every replica applies identically no
            // matter when it locally compacts.
            while let Some((applied_at, _)) = self.dedup_window.front() {
                if applied_at + self.dedup_horizon >= slot {
                    break;
                }
                let (_, cmd) = self.dedup_window.pop_front().expect("front exists");
                self.applied_set.remove(&cmd);
                self.seen.remove(&cmd);
            }
            let idx = (slot - self.inner.committed_base()) as usize;
            let batch = &self.inner.committed()[idx];
            let mut newly: Vec<V> = Vec::new();
            for cmd in batch.commands() {
                // With relays, overlapping batches can win different
                // slots; only the first commit of a command applies
                // (deterministic: the batch sequence is shared).
                if self.applied_set.insert(cmd.clone()) {
                    newly.push(cmd.clone());
                }
            }
            for cmd in newly {
                self.seen.insert(cmd.clone());
                self.dedup_window.push_back((slot, cmd.clone()));
                self.applied.push(cmd.clone());
                self.applied_rounds.push(r.number());
                self.applied_slots.push(slot);
            }
            if let Some(mine) = self.proposed.remove(&slot) {
                if mine != *batch {
                    lost.extend(
                        mine.into_commands()
                            .into_iter()
                            .filter(|c| !self.applied_set.contains(c)),
                    );
                }
            }
            self.flattened += 1;
        }
        // Lost commands re-enter at the queue front: oldest first, so
        // client FIFO order is preserved across retries.
        if !lost.is_empty() {
            self.queue.splice(0..0, lost);
        }
        // Purge commands another replica's batch just committed: without
        // this, relayed duplicates churn slots forever without growing
        // the applied log.
        if self.flattened > before {
            let applied_set = &self.applied_set;
            self.queue.retain(|c| !applied_set.contains(c));
        }
    }

    /// Prunes in-memory state below `slot` once a snapshot covers that
    /// prefix: applied-log prefix bookkeeping, retained committed batches
    /// and stale proposals all go; [`BatchingReplica::applied_base`]
    /// advances by the discarded command count. Clamped to the flattened
    /// prefix; compaction never touches the dedup window (that eviction
    /// is slot-deterministic, see the field docs), so agreement is
    /// unaffected by *when* each replica compacts.
    ///
    /// After compaction the replica no longer answers decision claims for
    /// slots below `slot` — laggards further behind need snapshot state
    /// transfer.
    pub fn compact_below(&mut self, slot: crate::Slot) {
        let slot = slot.min(self.flattened as crate::Slot);
        let cut = self.applied_slots.partition_point(|&s| s < slot);
        self.applied.drain(..cut);
        self.applied_rounds.drain(..cut);
        self.applied_slots.drain(..cut);
        self.applied_base += cut;
        self.inner.compact_below(slot);
        self.proposed.retain(|s, _| *s >= slot);
    }

    /// Replays one recovered committed batch (the next contiguous slot)
    /// into the log — the WAL-recovery path: a restarting replica calls
    /// this once per record before joining the cluster.
    ///
    /// # Panics
    ///
    /// Panics if called on a replica that already has open slots (replay
    /// is a startup-only operation).
    pub fn replay_committed(&mut self, batch: Batch<V>) {
        assert!(
            self.inner.open_slots().is_empty(),
            "replay_committed is a startup-only operation"
        );
        self.inner.restore_committed(batch);
        self.flatten(Round::new(1));
    }

    /// Installs a snapshot of the applied prefix: `pairs` are the applied
    /// `(command, slot)` pairs of **every** slot below `upto_slot`, in
    /// apply order (the decoded state-transfer payload, or the recovered
    /// `snapshot.bin` at startup). Returns whether the snapshot was
    /// installed — it is ignored unless it extends this replica's
    /// committed prefix.
    ///
    /// By per-slot Agreement the local applied log is a prefix of any
    /// honest snapshot's, so installation replaces the applied state
    /// wholesale and fast-forwards the slot sequence to `upto_slot`;
    /// decision claims and normal rounds take over from there. `round`
    /// stamps re-applied commands (0 at startup).
    pub fn install_snapshot(
        &mut self,
        pairs: Vec<(V, crate::Slot)>,
        upto_slot: crate::Slot,
        round: u64,
    ) -> bool {
        if (upto_slot as usize) <= self.inner.committed_len() {
            return false;
        }
        self.applied.clear();
        self.applied_rounds.clear();
        self.applied_slots.clear();
        self.applied_base = 0;
        self.applied_set.clear();
        self.dedup_window.clear();
        self.seen.clear();
        // The full applied set purges the local queue; the dedup
        // window/set keep only the horizon suffix, exactly what a replica
        // that flattened slot by slot would hold when reaching upto_slot.
        let mut full: std::collections::HashSet<V> = std::collections::HashSet::new();
        for (cmd, slot) in pairs {
            full.insert(cmd.clone());
            if slot + self.dedup_horizon >= upto_slot {
                self.applied_set.insert(cmd.clone());
                self.seen.insert(cmd.clone());
                self.dedup_window.push_back((slot, cmd.clone()));
            }
            self.applied.push(cmd);
            self.applied_rounds.push(round);
            self.applied_slots.push(slot);
        }
        self.queue.retain(|c| !full.contains(c));
        self.proposed.retain(|s, _| *s >= upto_slot);
        for c in &self.queue {
            self.seen.insert(c.clone());
        }
        for b in self.proposed.values() {
            for c in b.commands() {
                self.seen.insert(c.clone());
            }
        }
        self.flattened = upto_slot as usize;
        self.inner.install_decided_prefix(upto_slot);
        // Anything the inner replica had already decided above the
        // snapshot recommits contiguously; flatten it in.
        self.flatten(Round::new(round.max(1)));
        true
    }

    /// Installs a **folded** snapshot: the applied prefix below
    /// `upto_slot` is *not* re-materialized — the application layer holds
    /// its folded state instead — so the replica keeps only the resume
    /// data: `applied_len` (the absolute command count the fold covers,
    /// which becomes the new [`BatchingReplica::applied_base`]) and
    /// `dedup` (the `(command, slot)` dedup-window entries still live at
    /// the cut, exactly what a replica that flattened slot by slot would
    /// hold on reaching `upto_slot` — without them the installer's dedup
    /// decisions at the next slots could diverge from the cluster's).
    ///
    /// Returns whether the snapshot was installed — it is ignored unless
    /// it extends this replica's committed prefix. The applied log
    /// restarts empty at base `applied_len`; decision claims and normal
    /// rounds take over from `upto_slot`.
    pub fn install_folded(
        &mut self,
        dedup: &[(V, crate::Slot)],
        applied_len: u64,
        upto_slot: crate::Slot,
        round: u64,
    ) -> bool {
        if (upto_slot as usize) <= self.inner.committed_len() {
            return false;
        }
        self.applied.clear();
        self.applied_rounds.clear();
        self.applied_slots.clear();
        self.applied_base = usize::try_from(applied_len).unwrap_or(usize::MAX);
        self.applied_set.clear();
        self.dedup_window.clear();
        self.seen.clear();
        for (cmd, slot) in dedup {
            if *slot < upto_slot && slot + self.dedup_horizon >= upto_slot {
                self.applied_set.insert(cmd.clone());
                self.seen.insert(cmd.clone());
                self.dedup_window.push_back((*slot, cmd.clone()));
            }
        }
        // The carried dedup window purges the local queue of commands the
        // cluster already applied; stale proposals below the cut go too.
        let applied_set = &self.applied_set;
        self.queue.retain(|c| !applied_set.contains(c));
        self.proposed.retain(|s, _| *s >= upto_slot);
        for c in &self.queue {
            self.seen.insert(c.clone());
        }
        for b in self.proposed.values() {
            for c in b.commands() {
                self.seen.insert(c.clone());
            }
        }
        self.flattened = upto_slot as usize;
        self.inner.install_decided_prefix(upto_slot);
        // Anything the inner replica had already decided above the
        // snapshot recommits contiguously; flatten it in.
        self.flatten(Round::new(round.max(1)));
        true
    }
}

impl<V: Value> RoundProcess for BatchingReplica<V> {
    type Msg = SmrMsg<Batch<V>>;
    type Output = Vec<V>;

    fn id(&self) -> ProcessId {
        self.inner.id
    }

    fn requirement(&self, r: Round) -> Predicate {
        self.inner.requirement(r)
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        // Offer the queue front to the inner replica, re-chunked every
        // round so late arrivals join a batch right up to the proposing
        // round. At most `window − open` slots can open now, so only that
        // many cap-sized chunks are materialized — per-round cost stays
        // O(window · cap) however deep the queue backs up (the open-loop
        // overload case must not go quadratic in queue length).
        let can_open = self.inner.window.saturating_sub(self.inner.open.len());
        let built: Vec<Batch<V>> = self
            .queue
            .chunks(self.cap)
            .take(can_open)
            .map(|c| Batch::new(c.to_vec()))
            .collect();
        let offered = built.len();
        let first_new = self.inner.next_slot;
        self.inner.pending = built;
        let mut out = self.inner.send(r);
        // Slots opened this round consumed chunks front-first; rebuild the
        // consumed prefix from the queue for the lost-command re-queue map,
        // then drop it (unconsumed offers stay in the queue only).
        let consumed = offered - self.inner.pending.len();
        self.inner.pending.clear();
        let mut drained = 0;
        for j in 0..consumed {
            let end = (drained + self.cap).min(self.queue.len());
            let chunk = Batch::new(self.queue[drained..end].to_vec());
            self.proposed.insert(first_new + j as crate::Slot, chunk);
            drained = end;
        }
        self.queue.drain(..drained);
        // Relay every command in flight here but possibly unknown
        // elsewhere: batches proposed for still-open slots, then the
        // queue front. Whichever replica's batch wins an upcoming slot
        // can then carry these commands. Without this, a replica whose
        // proposals systematically lose (the coordinator's value wins
        // every Paxos/PBFT slot; DeterministicMin sorts another replica's
        // commands first) starves its clients forever.
        let mut relay: Vec<V> = Vec::new();
        for mine in self.proposed.values() {
            relay.extend(mine.commands().iter().cloned());
            if relay.len() >= self.cap {
                break;
            }
        }
        relay.extend(
            self.queue
                .iter()
                .take(self.cap.saturating_sub(relay.len()))
                .cloned(),
        );
        relay.truncate(self.cap);
        if !relay.is_empty() {
            let chunk = Batch::new(relay);
            match &mut out {
                Outgoing::Broadcast(bundle) => bundle.push_relay(chunk),
                Outgoing::Silent => {
                    let mut bundle = SmrMsg::new();
                    bundle.push_relay(chunk);
                    out = Outgoing::Broadcast(bundle);
                }
                _ => {}
            }
        }
        out
    }

    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        // Merge relayed commands into the local queue (deduplicated):
        // dissemination, so any proposer's winning batch can carry them.
        let mut relayed: Vec<V> = Vec::new();
        for (_, bundle) in heard.iter() {
            for batch in bundle.relays() {
                for cmd in batch.commands() {
                    if !self.seen.contains(cmd) {
                        relayed.push(cmd.clone());
                    }
                }
            }
        }
        self.submit_all(relayed);
        self.inner.receive(r, heard);
        self.flatten(r);
    }

    fn output(&self) -> Option<Vec<V>> {
        // Truncate to exactly the target: replicas stop at different points
        // mid-batch, but the committed sequence is shared, so the fixed-size
        // prefix is identical on every honest replica.
        (self.applied.len() >= self.commit_target)
            .then(|| self.applied[..self.commit_target].to_vec())
    }
}

impl<V: Value> std::fmt::Debug for BatchingReplica<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchingReplica")
            .field("id", &self.inner.id.to_string())
            .field("cap", &self.cap)
            .field("applied", &self.applied.len())
            .field("queued", &self.queue.len())
            .field("slots", &self.inner.committed.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{paxos, pbft};
    use gencon_sim::{properties, CrashPlan, Simulation};

    fn run_batched(
        spec: &gencon_algos::AlgorithmSpec<Batch<u64>>,
        queues: Vec<Vec<u64>>,
        cap: usize,
        target: usize,
        max_rounds: u64,
    ) -> gencon_sim::Outcome<Vec<u64>> {
        let cfg = spec.params.cfg;
        let mut builder = Simulation::builder(cfg);
        for (i, q) in queues.into_iter().enumerate() {
            let mut r =
                BatchingReplica::new(ProcessId::new(i), spec.params.clone(), cap, target).unwrap();
            r.submit_all(q);
            builder = builder.honest(r);
        }
        builder
            .crashes(CrashPlan::none())
            .build()
            .unwrap()
            .run(max_rounds)
    }

    /// The starvation regression: with distinct per-replica streams (each
    /// replica serves its own clients, as a real deployment does), every
    /// submitted command must commit. Without relay dissemination the
    /// lowest-sorting replica's batches win every contended slot and the
    /// other replicas' clients starve forever.
    #[test]
    fn commands_submitted_at_any_replica_all_commit() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let cfg = spec.params.cfg;
        let mut builder = Simulation::builder(cfg);
        let per_replica = 6usize;
        let total = 4 * per_replica;
        for i in 0..4u64 {
            let mut r =
                BatchingReplica::new(ProcessId::new(i as usize), spec.params.clone(), 4, total)
                    .unwrap();
            // Distinct streams: replica i's clients submit i*100 + k.
            r.submit_all((0..per_replica as u64).map(|k| i * 100 + k));
            builder = builder.honest(r);
        }
        let out = builder.crashes(CrashPlan::none()).build().unwrap().run(300);
        assert!(
            out.all_correct_decided,
            "every replica's commands commit, none starve"
        );
        assert!(properties::agreement(&out, |log| log));
        let mut log = out.outputs[0].clone().unwrap();
        log.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|i| (0..per_replica as u64).map(move |k| i * 100 + k))
            .collect();
        expect.sort_unstable();
        assert_eq!(log, expect, "the applied set is exactly the union");
    }

    /// Relay echoes and client retries are idempotent: a command never
    /// applies twice.
    #[test]
    fn duplicate_submissions_apply_once() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let cfg = spec.params.cfg;
        let mut builder = Simulation::builder(cfg);
        for i in 0..4 {
            let mut r = BatchingReplica::new(ProcessId::new(i), spec.params.clone(), 4, 3).unwrap();
            r.submit_all([7, 8, 7, 9, 8, 7]);
            builder = builder.honest(r);
        }
        let out = builder.crashes(CrashPlan::none()).build().unwrap().run(60);
        assert!(out.all_correct_decided);
        assert_eq!(out.outputs[0].as_ref().unwrap(), &[7, 8, 9]);
    }

    #[test]
    fn batched_log_flattens_in_order() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        // Identical client streams at every replica (clients broadcast).
        let stream: Vec<u64> = (100..108).collect();
        let out = run_batched(&spec, vec![stream.clone(); 4], 3, 8, 60);
        assert!(out.all_correct_decided);
        assert!(properties::agreement(&out, |log| log));
        assert_eq!(out.outputs[0].as_ref().unwrap(), &stream);
    }

    #[test]
    fn batching_commits_more_commands_per_round() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let stream: Vec<u64> = (0..16).collect();
        let unbatched = run_batched(&spec, vec![stream.clone(); 4], 1, 16, 200);
        let batched = run_batched(&spec, vec![stream; 4], 8, 16, 200);
        assert!(unbatched.all_correct_decided && batched.all_correct_decided);
        assert!(
            batched.rounds_executed * 4 <= unbatched.rounds_executed,
            "cap 8 ({} rounds) must beat cap 1 ({} rounds) by ≥ 4×",
            batched.rounds_executed,
            unbatched.rounds_executed
        );
    }

    #[test]
    fn empty_queues_commit_noop_batches_without_commands() {
        let spec = paxos::<Batch<u64>>(3, 1, ProcessId::new(0)).unwrap();
        let out = run_batched(&spec, vec![vec![]; 3], 4, 0, 20);
        // Target 0 commands: output fires immediately with the empty log,
        // while no-op slots keep the sequence turning underneath.
        assert!(out.all_correct_decided);
        assert_eq!(out.outputs[0].as_ref().unwrap(), &Vec::<u64>::new());
    }

    #[test]
    fn late_submissions_join_later_batches() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let cfg = spec.params.cfg;
        let mut builder = Simulation::builder(cfg);
        for i in 0..4 {
            let r = BatchingReplica::new(ProcessId::new(i), spec.params.clone(), 4, 2).unwrap();
            builder = builder.honest(r);
        }
        let mut sim = builder.build().unwrap();
        // Nothing queued: the first slots are no-ops. (We can't reach inside
        // the sim to submit later — that's the `gencon-sim` injection hook's
        // job; see `gencon-load`.) Here just check no-op slots don't count
        // toward the command target.
        for _ in 0..6 {
            sim.step();
        }
        assert!(!sim.all_correct_decided(), "no commands, target 2 unmet");
    }

    #[test]
    fn accessors_and_debug() {
        let spec = pbft::<Batch<u64>>(4, 1).unwrap();
        let mut r = BatchingReplica::new(ProcessId::new(1), spec.params.clone(), 0, 5).unwrap();
        assert_eq!(r.batch_cap(), 1, "cap clamps to ≥ 1");
        r.submit(9);
        assert_eq!(r.queued(), 1);
        assert_eq!(r.applied(), &[] as &[u64]);
        assert_eq!(r.committed_slots(), 0);
        let (cmds, rounds) = r.applied_with_rounds();
        assert!(cmds.is_empty() && rounds.is_empty());
        assert!(r.applied_slots().is_empty());
        assert!(format!("{r:?}").contains("p1"));
    }
}
