//! State-machine replication over sequences of consensus instances.
//!
//! §5.3 of the paper notes that Paxos and PBFT "solve a sequence of
//! instances of consensus (state machine replication)" and isolates the
//! single-instance core. This crate goes the other way: it composes the
//! single-instance engine back into a replicated log — the deployment shape
//! a downstream user actually wants.
//!
//! A [`Replica`] multiplexes a window of open consensus *slots* over one
//! stream of closed rounds. Each slot runs an independent
//! [`GenericConsensus`] instance (any parameterization: Paxos for benign
//! deployments, PBFT/MQB for Byzantine ones); messages carry their slot id;
//! a slot's decision is **committed** when every lower slot has committed,
//! and committed commands are applied in order — so all honest replicas
//! apply the same command sequence (by the paper's Agreement property,
//! per slot).
//!
//! # The batch commit path
//!
//! [`Replica`] proposes one client command per slot. Under load that wastes
//! the fixed per-slot round cost, so [`BatchingReplica`] amortizes it: each
//! new slot drains up to `batch_cap` queued commands into one
//! [`Batch`](gencon_types::Batch) proposal, the decided batch is
//! **flattened** into the applied log in batch order, and the replica's
//! output is the flattened command log. Per-slot Agreement is untouched — a
//! batch is just a value — so honest replicas still apply identical command
//! sequences; throughput per round scales with the batch size. The empty
//! batch is the no-op filler; it sorts *last*, so a slot never commits a
//! no-op while any replica proposed real commands, and commands whose batch
//! lost its slot are re-queued for a later one.
//!
//! # Example
//!
//! ```
//! use gencon_smr::Replica;
//! use gencon_algos::pbft;
//! use gencon_types::ProcessId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = pbft::<u64>(4, 1)?;
//! let replica = Replica::new(
//!     ProcessId::new(0),
//!     spec.params.clone(),
//!     vec![10, 20, 30], // locally queued client commands
//!     0,                // no-op command for empty queues
//!     3,                // commit target
//! )?;
//! assert_eq!(replica.committed(), &[] as &[u64]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;

pub use batch::{BatchingReplica, DEFAULT_DEDUP_HORIZON};
pub use gencon_types::Batch;

use std::collections::BTreeMap;

use gencon_core::{ConsensusMsg, GenericConsensus, Params, ParamsError};
use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{ProcessId, Round, Value};

/// A slot (log position) identifier.
pub type Slot = u64;

/// Messages of the replicated log: per-slot consensus messages, bundled per
/// round. Bundling keeps the composition a closed-round protocol: one
/// message per sender per round, carrying every open slot's payload.
///
/// A named struct (not a bare `Vec` alias) so slot payloads can evolve —
/// batched values, decision certificates, future compression — without
/// leaking the representation into every signature that mentions the
/// message type.
///
/// Besides per-slot engine payloads, a bundle carries **decision claims**:
/// `(slot, value)` assertions for slots the sender has already committed
/// but some peer is still working on. A laggard adopts a claimed decision
/// once `b + 1` distinct senders concur — at least one is honest, so the
/// value is the slot's actual decision by per-slot Agreement. This is the
/// catch-up path that bounded engine lingering cannot provide: however far
/// a replica falls behind, the replicas ahead of it keep answering its
/// stale-slot messages with certificates.
///
/// A bundle also carries **relays**: values holding commands the sender
/// has queued but not yet seen committed. Receivers merge relayed
/// commands into their own queues (deduplicated), so every pending
/// command reaches every proposer. Without relays, commands starve at
/// replicas whose proposals systematically lose — the leader's value wins
/// every Paxos/PBFT slot, and `DeterministicMin` tie-breaks sort one
/// replica's commands ahead of another's — so under load only one
/// replica's clients would ever be served. Relays are the dissemination
/// half of a real SMR service: any replica accepts a submission, the
/// winning batch (whosever it is) carries it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SmrMsg<V> {
    slots: Vec<(Slot, ConsensusMsg<V>)>,
    claims: Vec<(Slot, V)>,
    relays: Vec<V>,
}

impl<V> SmrMsg<V> {
    /// An empty bundle.
    #[must_use]
    pub fn new() -> Self {
        SmrMsg {
            slots: Vec::new(),
            claims: Vec::new(),
            relays: Vec::new(),
        }
    }

    /// Appends slot `s`'s payload for this round.
    pub fn push(&mut self, slot: Slot, msg: ConsensusMsg<V>) {
        self.slots.push((slot, msg));
    }

    /// The payload carried for `slot`, if any.
    #[must_use]
    pub fn slot(&self, slot: Slot) -> Option<&ConsensusMsg<V>> {
        self.slots.iter().find(|(s, _)| *s == slot).map(|(_, m)| m)
    }

    /// Iterates over `(slot, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &ConsensusMsg<V>)> {
        self.slots.iter().map(|(s, m)| (*s, m))
    }

    /// Number of open slots carried (claims not included — see
    /// [`SmrMsg::claims`]; a catch-up bundle can carry claims and no
    /// slots).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether the bundle carries no slots, claims or relays.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && self.claims.is_empty() && self.relays.is_empty()
    }

    /// Appends a decision claim for `slot`.
    pub fn push_claim(&mut self, slot: Slot, value: V) {
        self.claims.push((slot, value));
    }

    /// The decision claims carried by this bundle.
    #[must_use]
    pub fn claims(&self) -> &[(Slot, V)] {
        &self.claims
    }

    /// Appends a relay: a value whose commands the sender wants
    /// disseminated to every proposer.
    pub fn push_relay(&mut self, value: V) {
        self.relays.push(value);
    }

    /// The relayed values carried by this bundle.
    #[must_use]
    pub fn relays(&self) -> &[V] {
        &self.relays
    }
}

impl<V> FromIterator<(Slot, ConsensusMsg<V>)> for SmrMsg<V> {
    fn from_iter<I: IntoIterator<Item = (Slot, ConsensusMsg<V>)>>(iter: I) -> Self {
        SmrMsg {
            slots: iter.into_iter().collect(),
            claims: Vec::new(),
            relays: Vec::new(),
        }
    }
}

/// One replica of the replicated state machine.
///
/// Drive it with any executor of [`RoundProcess`] (the `gencon-sim`
/// lock-step simulator, the `gencon-net` runtime, …). The replica opens up
/// to `window` slots at once; each advances through the generic algorithm's
/// schedule in lock-step with its peers (all replicas open slot `s` in the
/// same global round, because openings are a deterministic function of the
/// shared commit sequence).
pub struct Replica<V: Value> {
    id: ProcessId,
    params: Params<V>,
    /// Client commands queued locally, next to be proposed.
    pending: Vec<V>,
    /// Proposed-with when the local queue is empty.
    noop: V,
    /// Open instances: slot → (engine, the global round it opened at).
    open: BTreeMap<Slot, (GenericConsensus<V>, u64)>,
    /// Decided engines kept participating: slot → (engine, opened round,
    /// decided round). A decided process keeps voting (the round model's
    /// "its votes help laggards reach TD") — without this, a replica that
    /// decides slot `s` and opens `s + 1` strands any peer that missed the
    /// deciding round: the peer alone can never reach `TD` votes for `s`.
    lingering: BTreeMap<Slot, (GenericConsensus<V>, u64, u64)>,
    /// Rounds a decided engine lingers after its decision (0 = retire
    /// immediately, the pre-linger behavior).
    linger: u64,
    /// Decided-but-not-yet-committed slots (waiting for lower slots).
    decided: BTreeMap<Slot, V>,
    /// Decision claims to attach to the next bundle: slots we committed
    /// that a peer's last bundle showed it still working on.
    claim_queue: BTreeMap<Slot, V>,
    /// Claim tallies for our own open slots: slot → value → claimants.
    /// Adoption needs `b + 1` distinct claimants per (slot, value).
    claim_votes: BTreeMap<Slot, BTreeMap<V, gencon_types::ProcessSet>>,
    /// The retained committed log: values of slots
    /// `[committed_base, committed_base + committed.len())`. Everything
    /// below `committed_base` was compacted away after a snapshot — the
    /// replica can no longer answer decision claims for those slots (that
    /// is the **claim horizon**; laggards further behind need snapshot
    /// state transfer, see `gencon-server`).
    committed: Vec<V>,
    /// First retained committed slot (0 until the first compaction).
    committed_base: Slot,
    /// Next slot to open.
    next_slot: Slot,
    /// Max simultaneously open slots.
    window: usize,
    /// Replica reports `output()` once this many commands committed.
    commit_target: usize,
}

impl<V: Value> Replica<V> {
    /// Creates a replica.
    ///
    /// * `params` — the per-instance consensus parameterization (e.g. from
    ///   `gencon_algos::pbft`);
    /// * `pending` — locally queued client commands, proposed in order;
    /// * `noop` — proposed when the queue is empty (slots must still fill:
    ///   consensus decides *some* command per slot);
    /// * `commit_target` — how many committed commands constitute "done"
    ///   for [`RoundProcess::output`] (executors use it as a stop signal).
    ///
    /// The window defaults to 1 (sequential slots); see
    /// [`Replica::with_window`].
    ///
    /// # Errors
    ///
    /// Propagates [`ParamsError`] if `params` is invalid.
    pub fn new(
        id: ProcessId,
        params: Params<V>,
        pending: Vec<V>,
        noop: V,
        commit_target: usize,
    ) -> Result<Self, ParamsError> {
        params.validate()?;
        Ok(Replica {
            id,
            params,
            pending,
            noop,
            open: BTreeMap::new(),
            lingering: BTreeMap::new(),
            linger: 6,
            decided: BTreeMap::new(),
            claim_queue: BTreeMap::new(),
            claim_votes: BTreeMap::new(),
            committed: Vec::new(),
            committed_base: 0,
            next_slot: 0,
            window: 1,
            commit_target,
        })
    }

    /// Sets the number of slots allowed in flight simultaneously
    /// (pipelining). All replicas must use the same window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets how many rounds a decided slot's engine keeps participating
    /// (default 6 — two phases of a 3-round class). Lingering engines keep
    /// re-broadcasting their votes so replicas that missed the deciding
    /// round still reach `TD`; longer linger tolerates longer asynchronous
    /// gaps at the cost of proportionally more live engines.
    #[must_use]
    pub fn with_linger(mut self, rounds: u64) -> Self {
        self.linger = rounds;
        self
    }

    /// The retained committed command log: slots from
    /// [`Replica::committed_base`] on (the full log until the first
    /// [`Replica::compact_below`]).
    #[must_use]
    pub fn committed(&self) -> &[V] {
        &self.committed
    }

    /// First slot still retained in [`Replica::committed`].
    #[must_use]
    pub fn committed_base(&self) -> Slot {
        self.committed_base
    }

    /// Total slots ever committed (compacted prefix included) — the next
    /// slot the contiguous log needs.
    #[must_use]
    pub fn committed_len(&self) -> usize {
        self.committed_base as usize + self.committed.len()
    }

    /// Drops retained committed values below `slot`, bounding in-memory
    /// growth once a snapshot covers that prefix. Only already-committed
    /// slots can be compacted (`slot` is clamped to the contiguous commit
    /// point); compaction below the current base is a no-op.
    ///
    /// After compaction the replica no longer serves decision claims for
    /// the dropped slots: `slot` becomes the claim horizon.
    pub fn compact_below(&mut self, slot: Slot) {
        let slot = slot.min(self.committed_len() as Slot);
        if slot <= self.committed_base {
            return;
        }
        let cut = (slot - self.committed_base) as usize;
        self.committed.drain(..cut);
        self.committed_base = slot;
    }

    /// The system configuration (n, f, b) this replica runs under.
    #[must_use]
    pub fn config(&self) -> gencon_types::Config {
        self.params.cfg
    }

    /// The decision threshold TD — how many concordant round messages
    /// complete a quorum.
    #[must_use]
    pub fn td(&self) -> usize {
        self.params.td
    }

    /// Commands still queued locally.
    #[must_use]
    pub fn pending(&self) -> &[V] {
        &self.pending
    }

    /// Currently open (undecided or uncommitted) slots.
    #[must_use]
    pub fn open_slots(&self) -> Vec<Slot> {
        self.open.keys().copied().collect()
    }

    /// Enqueues another client command.
    pub fn submit(&mut self, command: V) {
        self.pending.push(command);
    }

    /// Opens new slots up to the window limit. Slot openings are a pure
    /// function of (committed count, open count, round), identical on every
    /// honest replica.
    fn refill_window(&mut self, now: Round) {
        while self.open.len() < self.window
            && (self.committed_len() + self.decided.len() + self.open.len())
                < self.commit_target.max(self.committed_len() + 1)
        {
            let slot = self.next_slot;
            self.next_slot += 1;
            let proposal = if self.pending.is_empty() {
                self.noop.clone()
            } else {
                self.pending.remove(0)
            };
            let engine = GenericConsensus::new_unchecked(self.id, self.params.clone(), proposal);
            self.open.insert(slot, (engine, now.number()));
        }
    }

    /// Appends one recovered committed value as the next contiguous slot
    /// (the WAL-replay path; see `BatchingReplica::replay_committed`).
    pub(crate) fn restore_committed(&mut self, value: V) {
        self.committed.push(value);
        self.next_slot = self.next_slot.max(self.committed_len() as Slot);
    }

    /// Fast-forwards the committed sequence to `upto`: every slot below it
    /// is now covered externally (a snapshot), so local engines, decided
    /// values and claim state for those slots are dropped, and the
    /// retained committed log restarts at `upto`. Anything already
    /// decided above the snapshot recommits contiguously.
    pub(crate) fn install_decided_prefix(&mut self, upto: Slot) {
        self.open.retain(|s, _| *s >= upto);
        self.lingering.retain(|s, _| *s >= upto);
        self.decided.retain(|s, _| *s >= upto);
        self.claim_queue.retain(|s, _| *s >= upto);
        self.claim_votes.retain(|s, _| *s >= upto);
        self.committed.clear();
        self.committed_base = upto;
        self.next_slot = self.next_slot.max(upto);
        while let Some(v) = self.decided.remove(&(self.committed_len() as Slot)) {
            self.committed.push(v);
        }
    }

    /// Aligns each live slot's opening round with the earliest opening any
    /// peer's messages imply.
    ///
    /// Replicas decide a slot (and hence open the next) in different global
    /// rounds under loss or crashes, which would run the next slot's
    /// instance phase-offset across replicas — fatal under `FLAG = φ`,
    /// where only votes timestamped with the *current* phase count. Every
    /// consensus message carries its phase tag, and its variant names the
    /// round kind, so a receiver can reconstruct the sender's local round
    /// exactly (`Schedule::round_of`) and re-base its own engine to the
    /// minimum implied opening. Min-adoption is monotone (openings only
    /// move earlier, never below round 1) and self-propagating — once a
    /// replica adopts an earlier opening, its own messages carry it onward
    /// — so after a good period all honest replicas converge on one
    /// opening per slot. Skipped local rounds are indistinguishable from
    /// message loss, which every instantiation tolerates by design; a
    /// Byzantine phase tag can only pull the opening earlier (bounded by
    /// round 1), i.e. fast-forward the instance, never stall it.
    fn align_openings(&mut self, r: Round, heard: &HeardOf<SmrMsg<V>>) {
        let schedule = self.params.schedule();
        let live = self
            .open
            .iter_mut()
            .map(|(s, (_, opened))| (*s, opened))
            .chain(
                self.lingering
                    .iter_mut()
                    .map(|(s, (_, opened, _))| (*s, opened)),
            );
        for (slot, opened) in live {
            for (_, bundle) in heard.iter() {
                let Some(m) = bundle.slot(slot) else { continue };
                let kind = match m {
                    ConsensusMsg::Selection(..) => gencon_types::RoundKind::Selection,
                    ConsensusMsg::Validation(..) => gencon_types::RoundKind::Validation,
                    ConsensusMsg::Decision(..) => gencon_types::RoundKind::Decision,
                };
                let Some(local) = schedule.round_of(m.phase(), kind) else {
                    continue;
                };
                let implied = (r.number() + 1).saturating_sub(local.number());
                if implied >= 1 && implied < *opened {
                    *opened = implied;
                }
            }
        }
    }

    /// The decided value of `slot`, if this replica has one (committed,
    /// decided-pending, or still lingering).
    fn decision_of(&self, slot: Slot) -> Option<V> {
        if slot >= self.committed_base {
            if let Some(v) = self.committed.get((slot - self.committed_base) as usize) {
                return Some(v.clone());
            }
        }
        if let Some(v) = self.decided.get(&slot) {
            return Some(v.clone());
        }
        self.lingering
            .get(&slot)
            .and_then(|(e, _, _)| e.decision().map(|d| d.value.clone()))
    }

    /// Decision-certificate exchange: tallies incoming claims for our open
    /// slots (adopting a value once `b + 1` distinct senders vouch for it —
    /// at least one is honest, so Agreement makes the value the slot's true
    /// decision), and queues claims for peers still working slots we have
    /// already decided. This is the unbounded catch-up path: lingering
    /// engines cover short gaps cheaply, certificates cover any gap.
    fn exchange_claims(&mut self, heard: &HeardOf<SmrMsg<V>>) {
        let threshold = self.params.cfg.b() + 1;
        for (sender, bundle) in heard.iter() {
            for (slot, value) in bundle.claims() {
                if self.open.contains_key(slot) {
                    self.claim_votes
                        .entry(*slot)
                        .or_default()
                        .entry(value.clone())
                        .or_default()
                        .insert(sender);
                }
            }
            for (slot, _) in bundle.iter() {
                if let Some(v) = self.decision_of(slot) {
                    self.claim_queue.insert(slot, v);
                }
            }
        }
        let adopt: Vec<(Slot, V)> = self
            .claim_votes
            .iter()
            .filter(|(s, _)| self.open.contains_key(*s))
            .filter_map(|(s, per_value)| {
                per_value
                    .iter()
                    .find(|(_, who)| who.len() >= threshold)
                    .map(|(v, _)| (*s, v.clone()))
            })
            .collect();
        for (slot, value) in adopt {
            self.open.remove(&slot);
            self.decided.insert(slot, value);
        }
        // Tallies are only meaningful for slots still open.
        let open_slots: Vec<Slot> = self.open.keys().copied().collect();
        self.claim_votes.retain(|s, _| open_slots.contains(s));
    }

    /// Harvests decided slots (retiring their engines into the linger set)
    /// and commits in order.
    fn harvest(&mut self, now: Round) {
        let newly: Vec<Slot> = self
            .open
            .iter()
            .filter(|(_, (e, _))| e.decision().is_some())
            .map(|(s, _)| *s)
            .collect();
        for slot in newly {
            let (engine, opened) = self.open.remove(&slot).expect("slot is open");
            let d = engine.decision().expect("checked above").clone();
            self.decided.insert(slot, d.value);
            if self.linger > 0 {
                self.lingering.insert(slot, (engine, opened, now.number()));
            }
        }
        // Expire lingering engines past their keep-alive.
        let linger = self.linger;
        self.lingering
            .retain(|_, (_, _, decided_at)| now.number() < *decided_at + linger);
        // Commit the contiguous prefix.
        while let Some(v) = self.decided.remove(&(self.committed_len() as Slot)) {
            self.committed.push(v);
        }
    }
}

impl<V: Value> RoundProcess for Replica<V> {
    type Msg = SmrMsg<V>;
    type Output = Vec<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn requirement(&self, r: Round) -> Predicate {
        // The strictest requirement among live slots this round: if any
        // slot is in a selection round, the bundle wants Pcons.
        let mut need = Predicate::Good;
        let opened_rounds = self
            .open
            .values()
            .map(|(e, opened)| (e, *opened))
            .chain(self.lingering.values().map(|(e, opened, _)| (e, *opened)));
        for (engine, opened) in opened_rounds {
            let local = Round::new(r.number() - opened + 1);
            if engine.requirement(local) == Predicate::Cons {
                need = Predicate::Cons;
            }
        }
        need
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        self.refill_window(r);
        let mut bundle = SmrMsg::new();
        let live = self
            .open
            .iter_mut()
            .map(|(s, (e, opened))| (*s, e, *opened))
            .chain(
                self.lingering
                    .iter_mut()
                    .map(|(s, (e, opened, _))| (*s, e, *opened)),
            );
        for (slot, engine, opened) in live {
            let local = Round::new(r.number() - opened + 1);
            match engine.send(local) {
                Outgoing::Silent => {}
                Outgoing::Broadcast(m) => bundle.push(slot, m),
                // Per-instance multicasts degrade to bundle broadcast; the
                // constant-Π selectors of Byzantine algorithms make this
                // exact, and benign leader-based instances just send a few
                // extra copies.
                Outgoing::Multicast { msg, .. } => bundle.push(slot, msg),
                Outgoing::PerDest(_) => {
                    unreachable!("honest engines never equivocate")
                }
            }
        }
        for (slot, v) in std::mem::take(&mut self.claim_queue) {
            bundle.push_claim(slot, v);
        }
        if bundle.is_empty() {
            Outgoing::Silent
        } else {
            Outgoing::Broadcast(bundle)
        }
    }

    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        let n = self.params.cfg.n();
        self.align_openings(r, heard);
        self.exchange_claims(heard);
        let live = self
            .open
            .iter_mut()
            .map(|(s, (e, opened))| (*s, e, *opened))
            .chain(
                self.lingering
                    .iter_mut()
                    .map(|(s, (e, opened, _))| (*s, e, *opened)),
            );
        for (slot, engine, opened) in live {
            let local = Round::new(r.number() - opened + 1);
            let mut slot_heard: HeardOf<ConsensusMsg<V>> = HeardOf::empty(n);
            for (sender, bundle) in heard.iter() {
                if let Some(m) = bundle.slot(slot) {
                    slot_heard.put(sender, m.clone());
                }
            }
            engine.receive(local, &slot_heard);
        }
        self.harvest(r);
    }

    fn output(&self) -> Option<Vec<V>> {
        (self.committed_len() >= self.commit_target).then(|| self.committed.clone())
    }
}

impl<V: Value> std::fmt::Debug for Replica<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id.to_string())
            .field("committed", &self.committed_len())
            .field("open", &self.open.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{mqb, paxos, pbft};
    use gencon_sim::{properties, CrashAt, CrashPlan, Gst, Simulation};

    fn run_cluster(
        replicas: Vec<Replica<u64>>,
        crashes: CrashPlan,
        gst: Option<(u64, f64, u64)>,
        max_rounds: u64,
    ) -> gencon_sim::Outcome<Vec<u64>> {
        let cfg = replicas[0].params.cfg;
        let mut builder = Simulation::builder(cfg);
        for r in replicas {
            builder = builder.honest(r);
        }
        if let Some((g, loss, seed)) = gst {
            builder = builder.network(Gst::new(g, loss, seed));
        }
        builder.crashes(crashes).build().unwrap().run(max_rounds)
    }

    fn make_replicas(
        spec: &gencon_algos::AlgorithmSpec<u64>,
        queues: Vec<Vec<u64>>,
        target: usize,
        window: usize,
    ) -> Vec<Replica<u64>> {
        queues
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                Replica::new(ProcessId::new(i), spec.params.clone(), q, 0, target)
                    .unwrap()
                    .with_window(window)
            })
            .collect()
    }

    use gencon_types::ProcessId;

    #[test]
    fn pbft_replicated_log_commits_in_order() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let queues = vec![
            vec![11, 12, 13],
            vec![21, 22, 23],
            vec![31, 32, 33],
            vec![41, 42, 43],
        ];
        let out = run_cluster(
            make_replicas(&spec, queues, 3, 1),
            CrashPlan::none(),
            None,
            60,
        );
        assert!(
            out.all_correct_decided,
            "all replicas hit the commit target"
        );
        assert!(properties::agreement(&out, |log| log), "identical logs");
        let log = out.outputs[0].as_ref().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0], 11, "smallest proposal wins each fresh slot");
    }

    #[test]
    fn pipelined_window_commits_faster_than_sequential() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let queues: Vec<Vec<u64>> = (1..=4)
            .map(|r| (0..4).map(|s| r * 10 + s).collect())
            .collect();
        let seq = run_cluster(
            make_replicas(&spec, queues.clone(), 4, 1),
            CrashPlan::none(),
            None,
            100,
        );
        let pipe = run_cluster(
            make_replicas(&spec, queues, 4, 4),
            CrashPlan::none(),
            None,
            100,
        );
        assert!(seq.all_correct_decided && pipe.all_correct_decided);
        assert!(
            pipe.rounds_executed < seq.rounds_executed,
            "window 4 ({} rounds) beats window 1 ({} rounds)",
            pipe.rounds_executed,
            seq.rounds_executed
        );
        // Same committed values in both runs (proposals and tie-breaks are
        // deterministic), regardless of pipelining.
        assert_eq!(seq.outputs[0], pipe.outputs[0]);
    }

    #[test]
    fn logs_identical_under_partial_synchrony() {
        let spec = mqb::<u64>(5, 1).unwrap();
        let queues: Vec<Vec<u64>> = (1..=5).map(|r| vec![r * 100, r * 100 + 1]).collect();
        let out = run_cluster(
            make_replicas(&spec, queues, 2, 2),
            CrashPlan::none(),
            Some((6, 0.7, 42)),
            80,
        );
        assert!(out.all_correct_decided);
        assert!(properties::agreement(&out, |log| log));
    }

    #[test]
    fn paxos_smr_with_crash() {
        let spec = paxos::<u64>(3, 1, ProcessId::new(0)).unwrap();
        let queues = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let crashes = CrashPlan::none().with(
            ProcessId::new(2),
            CrashAt::mid_send(gencon_types::Round::new(4), 1),
        );
        let out = run_cluster(make_replicas(&spec, queues, 2, 1), crashes, None, 60);
        assert!(out.all_correct_decided);
        assert!(properties::agreement(&out, |log| log));
    }

    #[test]
    fn empty_queues_fill_with_noops() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let queues = vec![vec![], vec![], vec![], vec![]];
        let out = run_cluster(
            make_replicas(&spec, queues, 2, 1),
            CrashPlan::none(),
            None,
            40,
        );
        assert!(out.all_correct_decided);
        let log = out.outputs[0].as_ref().unwrap();
        assert_eq!(log, &[0, 0], "no-op commands fill empty slots");
    }

    #[test]
    fn submit_feeds_later_slots() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let mut replicas = make_replicas(&spec, vec![vec![]; 4], 1, 1);
        for r in &mut replicas {
            r.submit(7);
        }
        assert_eq!(replicas[0].pending(), &[7]);
        let out = run_cluster(replicas, CrashPlan::none(), None, 30);
        assert_eq!(out.outputs[0].as_ref().unwrap(), &[7]);
    }

    #[test]
    fn accessors_and_debug() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let r = Replica::new(ProcessId::new(1), spec.params.clone(), vec![5], 0, 1).unwrap();
        assert_eq!(r.committed(), &[] as &[u64]);
        assert_eq!(r.pending(), &[5]);
        assert!(r.open_slots().is_empty());
        let dbg = format!("{r:?}");
        assert!(dbg.contains("p1"));
    }
}
