//! State-machine replication over sequences of consensus instances.
//!
//! §5.3 of the paper notes that Paxos and PBFT "solve a sequence of
//! instances of consensus (state machine replication)" and isolates the
//! single-instance core. This crate goes the other way: it composes the
//! single-instance engine back into a replicated log — the deployment shape
//! a downstream user actually wants.
//!
//! A [`Replica`] multiplexes a window of open consensus *slots* over one
//! stream of closed rounds. Each slot runs an independent
//! [`GenericConsensus`] instance (any parameterization: Paxos for benign
//! deployments, PBFT/MQB for Byzantine ones); messages carry their slot id;
//! a slot's decision is **committed** when every lower slot has committed,
//! and committed commands are applied in order — so all honest replicas
//! apply the same command sequence (by the paper's Agreement property,
//! per slot).
//!
//! # Example
//!
//! ```
//! use gencon_smr::Replica;
//! use gencon_algos::pbft;
//! use gencon_types::ProcessId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = pbft::<u64>(4, 1)?;
//! let replica = Replica::new(
//!     ProcessId::new(0),
//!     spec.params.clone(),
//!     vec![10, 20, 30], // locally queued client commands
//!     0,                // no-op command for empty queues
//!     3,                // commit target
//! )?;
//! assert_eq!(replica.committed(), &[] as &[u64]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use gencon_core::{ConsensusMsg, GenericConsensus, Params, ParamsError};
use gencon_rounds::{HeardOf, Outgoing, Predicate, RoundProcess};
use gencon_types::{ProcessId, Round, Value};

/// A slot (log position) identifier.
pub type Slot = u64;

/// Messages of the replicated log: per-slot consensus messages, bundled per
/// round. Bundling keeps the composition a closed-round protocol: one
/// message per sender per round, carrying every open slot's payload.
pub type SmrMsg<V> = Vec<(Slot, ConsensusMsg<V>)>;

/// One replica of the replicated state machine.
///
/// Drive it with any executor of [`RoundProcess`] (the `gencon-sim`
/// lock-step simulator, the `gencon-net` runtime, …). The replica opens up
/// to `window` slots at once; each advances through the generic algorithm's
/// schedule in lock-step with its peers (all replicas open slot `s` in the
/// same global round, because openings are a deterministic function of the
/// shared commit sequence).
pub struct Replica<V: Value> {
    id: ProcessId,
    params: Params<V>,
    /// Client commands queued locally, next to be proposed.
    pending: Vec<V>,
    /// Proposed-with when the local queue is empty.
    noop: V,
    /// Open instances: slot → (engine, the global round it opened at).
    open: BTreeMap<Slot, (GenericConsensus<V>, u64)>,
    /// Decided-but-not-yet-committed slots (waiting for lower slots).
    decided: BTreeMap<Slot, V>,
    /// The committed log, in order.
    committed: Vec<V>,
    /// Next slot to open.
    next_slot: Slot,
    /// Max simultaneously open slots.
    window: usize,
    /// Replica reports `output()` once this many commands committed.
    commit_target: usize,
}

impl<V: Value> Replica<V> {
    /// Creates a replica.
    ///
    /// * `params` — the per-instance consensus parameterization (e.g. from
    ///   `gencon_algos::pbft`);
    /// * `pending` — locally queued client commands, proposed in order;
    /// * `noop` — proposed when the queue is empty (slots must still fill:
    ///   consensus decides *some* command per slot);
    /// * `commit_target` — how many committed commands constitute "done"
    ///   for [`RoundProcess::output`] (executors use it as a stop signal).
    ///
    /// The window defaults to 1 (sequential slots); see
    /// [`Replica::with_window`].
    ///
    /// # Errors
    ///
    /// Propagates [`ParamsError`] if `params` is invalid.
    pub fn new(
        id: ProcessId,
        params: Params<V>,
        pending: Vec<V>,
        noop: V,
        commit_target: usize,
    ) -> Result<Self, ParamsError> {
        params.validate()?;
        Ok(Replica {
            id,
            params,
            pending,
            noop,
            open: BTreeMap::new(),
            decided: BTreeMap::new(),
            committed: Vec::new(),
            next_slot: 0,
            window: 1,
            commit_target,
        })
    }

    /// Sets the number of slots allowed in flight simultaneously
    /// (pipelining). All replicas must use the same window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The committed command log (the replicated state machine's input).
    #[must_use]
    pub fn committed(&self) -> &[V] {
        &self.committed
    }

    /// Commands still queued locally.
    #[must_use]
    pub fn pending(&self) -> &[V] {
        &self.pending
    }

    /// Currently open (undecided or uncommitted) slots.
    #[must_use]
    pub fn open_slots(&self) -> Vec<Slot> {
        self.open.keys().copied().collect()
    }

    /// Enqueues another client command.
    pub fn submit(&mut self, command: V) {
        self.pending.push(command);
    }

    /// Opens new slots up to the window limit. Slot openings are a pure
    /// function of (committed count, open count, round), identical on every
    /// honest replica.
    fn refill_window(&mut self, now: Round) {
        while self.open.len() < self.window
            && (self.committed.len() + self.decided.len() + self.open.len())
                < self.commit_target.max(self.committed.len() + 1)
        {
            let slot = self.next_slot;
            self.next_slot += 1;
            let proposal = if self.pending.is_empty() {
                self.noop.clone()
            } else {
                self.pending.remove(0)
            };
            let engine = GenericConsensus::new_unchecked(self.id, self.params.clone(), proposal);
            self.open.insert(slot, (engine, now.number()));
        }
    }

    /// Harvests decided slots and commits in order.
    fn harvest(&mut self) {
        let newly: Vec<Slot> = self
            .open
            .iter()
            .filter(|(_, (e, _))| e.decision().is_some())
            .map(|(s, _)| *s)
            .collect();
        for slot in newly {
            let (engine, _) = self.open.remove(&slot).expect("slot is open");
            let d = engine.decision().expect("checked above").clone();
            self.decided.insert(slot, d.value);
        }
        // Commit the contiguous prefix.
        while let Some(v) = self.decided.remove(&(self.committed.len() as Slot)) {
            self.committed.push(v);
        }
    }
}

impl<V: Value> RoundProcess for Replica<V> {
    type Msg = SmrMsg<V>;
    type Output = Vec<V>;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn requirement(&self, r: Round) -> Predicate {
        // The strictest requirement among open slots this round: if any
        // slot is in a selection round, the bundle wants Pcons.
        let mut need = Predicate::Good;
        for (engine, opened) in self.open.values() {
            let local = Round::new(r.number() - opened + 1);
            if engine.requirement(local) == Predicate::Cons {
                need = Predicate::Cons;
            }
        }
        need
    }

    fn send(&mut self, r: Round) -> Outgoing<Self::Msg> {
        self.refill_window(r);
        let mut bundle: Vec<(Slot, ConsensusMsg<V>)> = Vec::new();
        for (slot, (engine, opened)) in &mut self.open {
            let local = Round::new(r.number() - *opened + 1);
            match engine.send(local) {
                Outgoing::Silent => {}
                Outgoing::Broadcast(m) => bundle.push((*slot, m)),
                // Per-instance multicasts degrade to bundle broadcast; the
                // constant-Π selectors of Byzantine algorithms make this
                // exact, and benign leader-based instances just send a few
                // extra copies.
                Outgoing::Multicast { msg, .. } => bundle.push((*slot, msg)),
                Outgoing::PerDest(_) => {
                    unreachable!("honest engines never equivocate")
                }
            }
        }
        if bundle.is_empty() {
            Outgoing::Silent
        } else {
            Outgoing::Broadcast(bundle)
        }
    }

    fn receive(&mut self, r: Round, heard: &HeardOf<Self::Msg>) {
        let n = self.params.cfg.n();
        for (slot, (engine, opened)) in &mut self.open {
            let local = Round::new(r.number() - *opened + 1);
            let mut slot_heard: HeardOf<ConsensusMsg<V>> = HeardOf::empty(n);
            for (sender, bundle) in heard.iter() {
                if let Some((_, m)) = bundle.iter().find(|(s, _)| s == slot) {
                    slot_heard.put(sender, m.clone());
                }
            }
            engine.receive(local, &slot_heard);
        }
        self.harvest();
    }

    fn output(&self) -> Option<Vec<V>> {
        (self.committed.len() >= self.commit_target).then(|| self.committed.clone())
    }
}

impl<V: Value> std::fmt::Debug for Replica<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id.to_string())
            .field("committed", &self.committed.len())
            .field("open", &self.open.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gencon_algos::{mqb, paxos, pbft};
    use gencon_sim::{properties, CrashAt, CrashPlan, Gst, Simulation};

    fn run_cluster(
        replicas: Vec<Replica<u64>>,
        crashes: CrashPlan,
        gst: Option<(u64, f64, u64)>,
        max_rounds: u64,
    ) -> gencon_sim::Outcome<Vec<u64>> {
        let cfg = replicas[0].params.cfg;
        let mut builder = Simulation::builder(cfg);
        for r in replicas {
            builder = builder.honest(r);
        }
        if let Some((g, loss, seed)) = gst {
            builder = builder.network(Gst::new(g, loss, seed));
        }
        builder.crashes(crashes).build().unwrap().run(max_rounds)
    }

    fn make_replicas(
        spec: &gencon_algos::AlgorithmSpec<u64>,
        queues: Vec<Vec<u64>>,
        target: usize,
        window: usize,
    ) -> Vec<Replica<u64>> {
        queues
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                Replica::new(ProcessId::new(i), spec.params.clone(), q, 0, target)
                    .unwrap()
                    .with_window(window)
            })
            .collect()
    }

    use gencon_types::ProcessId;

    #[test]
    fn pbft_replicated_log_commits_in_order() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let queues = vec![
            vec![11, 12, 13],
            vec![21, 22, 23],
            vec![31, 32, 33],
            vec![41, 42, 43],
        ];
        let out = run_cluster(
            make_replicas(&spec, queues, 3, 1),
            CrashPlan::none(),
            None,
            60,
        );
        assert!(
            out.all_correct_decided,
            "all replicas hit the commit target"
        );
        assert!(properties::agreement(&out, |log| log), "identical logs");
        let log = out.outputs[0].as_ref().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0], 11, "smallest proposal wins each fresh slot");
    }

    #[test]
    fn pipelined_window_commits_faster_than_sequential() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let queues: Vec<Vec<u64>> = (1..=4)
            .map(|r| (0..4).map(|s| r * 10 + s).collect())
            .collect();
        let seq = run_cluster(
            make_replicas(&spec, queues.clone(), 4, 1),
            CrashPlan::none(),
            None,
            100,
        );
        let pipe = run_cluster(
            make_replicas(&spec, queues, 4, 4),
            CrashPlan::none(),
            None,
            100,
        );
        assert!(seq.all_correct_decided && pipe.all_correct_decided);
        assert!(
            pipe.rounds_executed < seq.rounds_executed,
            "window 4 ({} rounds) beats window 1 ({} rounds)",
            pipe.rounds_executed,
            seq.rounds_executed
        );
        // Same committed values in both runs (proposals and tie-breaks are
        // deterministic), regardless of pipelining.
        assert_eq!(seq.outputs[0], pipe.outputs[0]);
    }

    #[test]
    fn logs_identical_under_partial_synchrony() {
        let spec = mqb::<u64>(5, 1).unwrap();
        let queues: Vec<Vec<u64>> = (1..=5).map(|r| vec![r * 100, r * 100 + 1]).collect();
        let out = run_cluster(
            make_replicas(&spec, queues, 2, 2),
            CrashPlan::none(),
            Some((6, 0.7, 42)),
            80,
        );
        assert!(out.all_correct_decided);
        assert!(properties::agreement(&out, |log| log));
    }

    #[test]
    fn paxos_smr_with_crash() {
        let spec = paxos::<u64>(3, 1, ProcessId::new(0)).unwrap();
        let queues = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let crashes = CrashPlan::none().with(
            ProcessId::new(2),
            CrashAt::mid_send(gencon_types::Round::new(4), 1),
        );
        let out = run_cluster(make_replicas(&spec, queues, 2, 1), crashes, None, 60);
        assert!(out.all_correct_decided);
        assert!(properties::agreement(&out, |log| log));
    }

    #[test]
    fn empty_queues_fill_with_noops() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let queues = vec![vec![], vec![], vec![], vec![]];
        let out = run_cluster(
            make_replicas(&spec, queues, 2, 1),
            CrashPlan::none(),
            None,
            40,
        );
        assert!(out.all_correct_decided);
        let log = out.outputs[0].as_ref().unwrap();
        assert_eq!(log, &[0, 0], "no-op commands fill empty slots");
    }

    #[test]
    fn submit_feeds_later_slots() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let mut replicas = make_replicas(&spec, vec![vec![]; 4], 1, 1);
        for r in &mut replicas {
            r.submit(7);
        }
        assert_eq!(replicas[0].pending(), &[7]);
        let out = run_cluster(replicas, CrashPlan::none(), None, 30);
        assert_eq!(out.outputs[0].as_ref().unwrap(), &[7]);
    }

    #[test]
    fn accessors_and_debug() {
        let spec = pbft::<u64>(4, 1).unwrap();
        let r = Replica::new(ProcessId::new(1), spec.params.clone(), vec![5], 0, 1).unwrap();
        assert_eq!(r.committed(), &[] as &[u64]);
        assert_eq!(r.pending(), &[5]);
        assert!(r.open_slots().is_empty());
        let dbg = format!("{r:?}");
        assert!(dbg.contains("p1"));
    }
}
