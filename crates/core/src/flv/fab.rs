//! FLV specialization for FaB Paxos (Algorithm 6).
//!
//! FaB Paxos [16] is the class-1 instantiation for the Byzantine model
//! (f = 0, n > 5b) with `TD = ⌈(n + 3b + 1)/2⌉`. Algorithm 6 is Algorithm 2
//! with that threshold substituted:
//!
//! ```text
//! 1: correctVotes ← { v : |{(v,−,−) ∈ ~µ}| > (n − b − 1)/2 }
//! 2: if |correctVotes| = 1 then return v
//! 4: else if |~µ| > n − b − 1 then return ?
//! 6: else return null
//! ```
//!
//! Footnote 13 of the paper: this selection rule needs *fewer* matching
//! messages than the original FaB Paxos (e.g. n = 7, b = 1: 3 instead of 4),
//! a small improvement contributed by the generic construction.

use gencon_types::quorum;

use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;
use crate::vote_count::VoteTally;

/// Algorithm 6: FLV for class 1 with `TD = ⌈(n + 3b + 1)/2⌉`.
///
/// The context's `td` is ignored; the thresholds are hard-wired to the FaB
/// parameterization, exactly as the paper presents them.
#[derive(Clone, Copy, Default, Debug)]
pub struct FabFlv;

impl FabFlv {
    /// Creates the FaB Paxos FLV.
    #[must_use]
    pub fn new() -> Self {
        FabFlv
    }

    /// The FaB decision threshold `⌈(n + 3b + 1)/2⌉`.
    #[must_use]
    pub fn td(n: usize, b: usize) -> usize {
        (n + 3 * b + 1).div_ceil(2)
    }
}

impl<V: gencon_types::Value> Flv<V> for FabFlv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let n = ctx.cfg.n();
        let b = ctx.cfg.b();

        // Line 1: count > (n − b − 1)/2, i.e. 2·count > n − b − 1.
        let tally = VoteTally::of_votes(msgs.iter().map(|m| &m.vote));
        let correct_votes: Vec<&V> = tally
            .iter()
            .filter(|(_, c)| 2 * c > n - b - 1)
            .map(|(v, _)| v)
            .collect();

        if correct_votes.len() == 1 {
            return FlvOutcome::Value(correct_votes[0].clone());
        }
        if quorum::more_than(msgs.len(), n - b - 1) {
            return FlvOutcome::Any;
        }
        FlvOutcome::NoInfo
    }

    fn name(&self) -> &'static str {
        "fab"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        FabFlv::td(cfg.n(), cfg.b())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::class1::Class1Flv;
    use crate::flv::testutil::{m1, refs};
    use gencon_types::{Config, Phase};

    fn ctx(n: usize, b: usize) -> FlvContext {
        FlvContext {
            cfg: Config::byzantine(n, b).unwrap(),
            td: FabFlv::td(n, b),
            phase: Phase::new(1),
        }
    }

    #[test]
    fn td_formula() {
        assert_eq!(FabFlv::td(6, 1), 5); // ⌈10/2⌉
        assert_eq!(FabFlv::td(7, 1), 6); // ⌈11/2⌉
        assert_eq!(FabFlv::td(11, 2), 9); // ⌈18/2⌉
    }

    #[test]
    fn footnote13_needs_three_messages_at_n7_b1() {
        // n = 7, b = 1: a value appearing 3 times (> (7−1−1)/2 = 2.5)
        // qualifies, where original FaB required 4.
        let c = ctx(7, 1);
        let msgs = vec![m1(1), m1(1), m1(1), m1(2), m1(2), m1(3)];
        assert_eq!(FabFlv.evaluate(&c, &refs(&msgs)), FlvOutcome::Value(1));
    }

    #[test]
    fn locked_value_recovered_n6_b1() {
        // TD = 5: a decided value has ≥ TD − b = 4 honest votes.
        let c = ctx(6, 1);
        let msgs = vec![m1(9), m1(9), m1(9), m1(9), m1(3)];
        assert_eq!(FabFlv.evaluate(&c, &refs(&msgs)), FlvOutcome::Value(9));
    }

    #[test]
    fn insufficient_messages_return_no_info() {
        let c = ctx(6, 1);
        // |µ| = 4 is not > n − b − 1 = 4 and no vote clears the bar.
        let msgs = vec![m1(1), m1(2), m1(3), m1(4)];
        assert_eq!(FabFlv.evaluate(&c, &refs(&msgs)), FlvOutcome::NoInfo);
    }

    #[test]
    fn large_unlocked_sample_returns_any() {
        let c = ctx(6, 1);
        let msgs = vec![m1(1), m1(2), m1(3), m1(4), m1(5)];
        assert_eq!(FabFlv.evaluate(&c, &refs(&msgs)), FlvOutcome::Any);
    }

    #[test]
    fn matches_generic_class1_when_bounds_align() {
        // With n = 6, b = 1 the FaB thresholds coincide with Algorithm 2 at
        // TD = 5: cross-check on exhaustive 2-value vote splits.
        let c = ctx(6, 1);
        for ones in 0..=6usize {
            for twos in 0..=(6 - ones) {
                let mut msgs = Vec::new();
                msgs.extend((0..ones).map(|_| m1(1)));
                msgs.extend((0..twos).map(|_| m1(2)));
                let a = FabFlv.evaluate(&c, &refs(&msgs));
                let g = Class1Flv.evaluate(&c, &refs(&msgs));
                assert_eq!(a, g, "ones={ones} twos={twos}");
            }
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<FabFlv as Flv<u64>>::name(&FabFlv), "fab");
    }
}
