//! FLV specialization for PBFT (Algorithm 8).
//!
//! PBFT [4] is the class-3 instantiation for the Byzantine model (f = 0)
//! with `TD = 2b + 1` and, as in the original protocol, `n = 3b + 1`.
//! Algorithm 8 is Algorithm 4 with those constants and without the
//! Unanimity branch (PBFT does not consider Unanimity), merging lines 5 and
//! 7 of Algorithm 4:
//!
//! ```text
//! 1: possibleVotes ← { (vote, ts) ∈ ~µ :
//!        |{(vote′, ts′) ∈ ~µ : vote = vote′ ∨ ts > ts′}| > 2b }
//! 2: correctVotes ← { v : (v, ts) ∈ possibleVotes ∧
//!        |{(…, history′) ∈ ~µ : (v, ts) ∈ history′}| > b }
//! 3: if |correctVotes| = 1 then return v
//! 5: else if |correctVotes| > 1 or |{(…, ts) ∈ ~µ : ts = 0}| > 2b then return ?
//! 7: else return null
//! ```

use gencon_types::quorum;

use crate::flv::class2::possible_vote_indices;
use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;

/// Algorithm 8: FLV for class 3 with `TD = 2b + 1`, `n = 3b + 1`.
///
/// `n − TD + b = 2b` for this parameterization, which is the constant the
/// paper in-lines; the implementation keeps the `2b` literals to mirror
/// Algorithm 8, and the test suite cross-checks against the generic
/// [`Class3Flv`](crate::flv::Class3Flv) at the same parameters.
#[derive(Clone, Copy, Default, Debug)]
pub struct PbftFlv;

impl PbftFlv {
    /// Creates the PBFT FLV.
    #[must_use]
    pub fn new() -> Self {
        PbftFlv
    }

    /// The PBFT decision threshold `2b + 1`.
    #[must_use]
    pub fn td(b: usize) -> usize {
        2 * b + 1
    }
}

impl<V: gencon_types::Value> Flv<V> for PbftFlv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let b = ctx.cfg.b();

        // Line 1 with the PBFT constant 2b.
        let possible = possible_vote_indices(msgs, 2 * b);

        // Line 2: history attestation by more than b messages.
        let mut correct_votes: Vec<&V> = Vec::new();
        for &i in &possible {
            let (v, ts) = (&msgs[i].vote, msgs[i].ts);
            let attestors = msgs.iter().filter(|m| m.history.contains(v, ts)).count();
            if quorum::more_than(attestors, b) && !correct_votes.contains(&v) {
                correct_votes.push(v);
            }
        }
        correct_votes.sort();

        if correct_votes.len() == 1 {
            return FlvOutcome::Value(correct_votes[0].clone());
        }
        let ts_zero = msgs.iter().filter(|m| m.ts.is_zero()).count();
        if correct_votes.len() > 1 || quorum::more_than(ts_zero, 2 * b) {
            return FlvOutcome::Any;
        }
        FlvOutcome::NoInfo
    }

    fn name(&self) -> &'static str {
        "pbft"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        PbftFlv::td(cfg.b())
    }

    fn requires_strong_selector(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::class3::Class3Flv;
    use crate::flv::testutil::{m3, refs};
    use gencon_types::{Config, Phase};

    fn ctx(b: usize) -> FlvContext {
        FlvContext {
            cfg: Config::byzantine(3 * b + 1, b).unwrap(),
            td: PbftFlv::td(b),
            phase: Phase::new(4),
        }
    }

    #[test]
    fn td_formula() {
        assert_eq!(PbftFlv::td(1), 3);
        assert_eq!(PbftFlv::td(2), 5);
    }

    #[test]
    fn view_change_recovers_prepared_value() {
        // n = 4, b = 1. Value 7 was "prepared" (validated) in phase 2 by the
        // honest quorum; the Byzantine replica lies with a higher timestamp.
        let msgs = vec![
            m3(7, 2, &[(7, 0), (7, 2)]),
            m3(7, 2, &[(7, 0), (7, 2)]),
            m3(5, 1, &[(5, 0), (7, 2), (5, 1)]),
            m3(6, 9, &[(6, 9)]), // Byzantine
        ];
        // (7,2): support 2 + (5,1) via ts 2>1 = 3 > 2 ✓; attestors 3 > 1 ✓.
        assert_eq!(
            PbftFlv.evaluate(&ctx(1), &refs(&msgs)),
            FlvOutcome::Value(7)
        );
    }

    #[test]
    fn fresh_view_returns_any() {
        let msgs = vec![
            m3(1, 0, &[(1, 0)]),
            m3(2, 0, &[(2, 0)]),
            m3(3, 0, &[(3, 0)]),
        ];
        assert_eq!(PbftFlv.evaluate(&ctx(1), &refs(&msgs)), FlvOutcome::Any);
    }

    #[test]
    fn two_messages_insufficient() {
        let msgs = vec![m3(1, 0, &[(1, 0)]), m3(2, 0, &[(2, 0)])];
        assert_eq!(PbftFlv.evaluate(&ctx(1), &refs(&msgs)), FlvOutcome::NoInfo);
    }

    #[test]
    fn equals_generic_class3_at_pbft_parameters() {
        // Exhaustive-ish cross-check: random-ish small vote/ts/history
        // combinations agree between Algorithm 8 and Algorithm 4 at
        // TD = 2b+1, n = 3b+1, no unanimity.
        let c = ctx(1);
        let pool = [
            m3(1, 0, &[(1, 0)]),
            m3(2, 0, &[(2, 0)]),
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(2, 3, &[(2, 0), (2, 3)]),
            m3(2, 9, &[(2, 9)]),
            m3(1, 1, &[(1, 0), (1, 1)]),
        ];
        let mut checked = 0;
        for mask in 0u32..(1 << pool.len()) {
            if mask.count_ones() > 4 {
                continue; // at most n = 4 messages per round
            }
            let subset: Vec<&_> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << *i) != 0)
                .map(|(_, m)| m)
                .collect();
            assert_eq!(
                PbftFlv.evaluate(&c, &subset),
                Class3Flv.evaluate(&c, &subset),
                "mask {mask:b}"
            );
            checked += 1;
        }
        assert!(checked > 40);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<PbftFlv as Flv<u64>>::name(&PbftFlv), "pbft");
    }
}
