//! FLV for class 3 (Algorithm 4): votes + timestamps + history.
//!
//! Class 3 pairs with `FLAG = φ` and `TD > 2b + f`, giving 3 rounds per
//! phase, full state `(vote_p, ts_p, history_p)` and the best resilience
//! `n > 3b + 2f` (Table 1). Examples: Paxos/CT (b = 0, where classes 2 and 3
//! coincide) and PBFT (f = 0).
//!
//! Because `TD` may be as low as `2b + f + 1`, votes and timestamps alone
//! cannot pin the locked value; the *history log* supplies the missing
//! proof: a vote is only credible if more than `b` received histories
//! contain the exact `(v, ts)` pair — at least one honest process must then
//! actually have selected `v` in phase `ts`.

use gencon_types::quorum;

use crate::flv::class2::possible_vote_indices;
use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;
use crate::vote_count::VoteTally;

/// Algorithm 4 of the paper.
///
/// ```text
/// 1: possibleVotes ← { (vote, ts) ∈ ~µ :
///        |{(vote′, ts′) ∈ ~µ : vote = vote′ ∨ ts > ts′}| > n − TD + b }
/// 2: correctVotes ← { v : (v, ts) ∈ possibleVotes ∧
///        |{(…, history′) ∈ ~µ : (v, ts) ∈ history′}| > b }
/// 3: if |correctVotes| = 1 then return v
/// 5: else if |correctVotes| > 1 then return ?
/// 7: else if |{(…, ts) ∈ ~µ : ts = 0}| > n − TD + b then
/// 8:     if ∃v with a majority of messages (v,…) then return v   ⌇ unanimity
/// 10:    else return ?
/// 12: else return null
/// ```
///
/// Lines 8–9 exist only to guarantee Unanimity (§2.3); when the
/// configuration does not require Unanimity they collapse to `?`, exactly
/// as in the PBFT specialization (Algorithm 8).
#[derive(Clone, Copy, Default, Debug)]
pub struct Class3Flv;

impl Class3Flv {
    /// Creates the class-3 FLV.
    #[must_use]
    pub fn new() -> Self {
        Class3Flv
    }
}

impl<V: gencon_types::Value> Flv<V> for Class3Flv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let pivot = ctx.n_td_b();
        let b = ctx.cfg.b();

        // Line 1 (same support rule as Algorithm 3).
        let possible = possible_vote_indices(msgs, pivot);

        // Line 2: keep votes whose (v, ts) pair appears in more than b
        // received histories. Collect distinct qualifying values.
        let mut correct_votes: Vec<&V> = Vec::new();
        for &i in &possible {
            let (v, ts) = (&msgs[i].vote, msgs[i].ts);
            let attestors = msgs.iter().filter(|m| m.history.contains(v, ts)).count();
            if quorum::more_than(attestors, b) && !correct_votes.contains(&v) {
                correct_votes.push(v);
            }
        }
        correct_votes.sort(); // determinism across message orders

        // Lines 3–6.
        if correct_votes.len() == 1 {
            return FlvOutcome::Value(correct_votes[0].clone());
        }
        if correct_votes.len() > 1 {
            return FlvOutcome::Any;
        }

        // Line 7: enough processes still at their initial state?
        let ts_zero = msgs.iter().filter(|m| m.ts.is_zero()).count();
        if quorum::more_than(ts_zero, pivot) {
            // Lines 8–11 (majority check only needed for Unanimity).
            if ctx.cfg.unanimity() {
                let tally = VoteTally::of_votes(msgs.iter().map(|m| &m.vote));
                if let Some(v) = tally.strict_majority_of(msgs.len()) {
                    return FlvOutcome::Value(v.clone());
                }
            }
            return FlvOutcome::Any;
        }

        // Line 13.
        FlvOutcome::NoInfo
    }

    fn name(&self) -> &'static str {
        "class3"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        gencon_types::quorum::class3_min_td(cfg.f(), cfg.b())
    }

    fn requires_strong_selector(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::testutil::{m3, refs};
    use gencon_types::{Config, Phase};

    /// The Figure 3 setting: n = 4, b = 1, f = 0, TD = 3 ⇒ n − TD + b = 2.
    fn fig3_ctx() -> FlvContext {
        FlvContext {
            cfg: Config::new(4, 0, 1).unwrap(),
            td: 3,
            phase: Phase::new(3),
        }
    }

    fn fig3_unanimity_ctx() -> FlvContext {
        FlvContext {
            cfg: Config::new(4, 0, 1).unwrap().with_unanimity(true),
            td: 3,
            phase: Phase::new(1),
        }
    }

    #[test]
    fn figure3_scenario_recovers_locked_value() {
        // Figure 3: TD − b = 2 honest (v1, φ1, history∋(v1,φ1));
        // one honest (v2, φ2' < φ1); one Byzantine (v2, φ2 > φ1) whose
        // forged history cannot gather b+1 attestors.
        let phi1 = 2;
        let msgs = vec![
            m3(1, phi1, &[(1, 0), (1, phi1)]),
            m3(1, phi1, &[(1, 0), (1, phi1)]),
            m3(2, 1, &[(2, 0), (2, 1)]),
            m3(2, 9, &[(2, 9)]), // Byzantine forgery
        ];
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn byzantine_forged_history_needs_b_plus_one_attestors() {
        // The Byzantine message attests its own (v2, 9) pair, but one
        // attestor is not > b = 1, so v2 never enters correctVotes.
        let msgs = vec![
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(2, 9, &[(2, 9)]),
        ];
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn two_byzantine_attestors_would_be_needed() {
        // With b = 1, two colluding messages attesting (v2, 9) *can* inject
        // v2 into correctVotes — but then |correctVotes| > 1 returns `?`,
        // still safe for agreement only if v1 was not locked. This test
        // documents the geometry: v1 must keep TD − b = 2 honest attestors.
        let msgs = vec![
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(2, 9, &[(2, 9)]),
            m3(2, 9, &[(2, 9)]),
        ];
        // v1 possible (support: 2 votes + 0 older) = 2, not > 2! v1 is NOT
        // possible here; v2 has support 4 (2 votes + 2 older ts) and 2 > b
        // attestors: correctVotes = {v2}.
        // This input is only reachable when v1 was never locked with this
        // message distribution (a locked v1 guarantees TD = 3 honest v1
        // messages among any n − b − f = 3 correct senders).
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::Value(2)
        );
    }

    #[test]
    fn fresh_system_returns_any() {
        let msgs = vec![
            m3(1, 0, &[(1, 0)]),
            m3(2, 0, &[(2, 0)]),
            m3(3, 0, &[(3, 0)]),
        ];
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn near_unanimous_initial_votes_resolve_at_line_3() {
        // 3 of 4 initial votes agree: (7, 0) is possible (support 3 > 2) and
        // attested by its 3 honest histories, so line 3 already returns it —
        // with or without the Unanimity switch.
        let msgs = vec![
            m3(7, 0, &[(7, 0)]),
            m3(7, 0, &[(7, 0)]),
            m3(7, 0, &[(7, 0)]),
            m3(2, 0, &[(2, 0)]), // Byzantine minority
        ];
        assert_eq!(
            Class3Flv.evaluate(&fig3_unanimity_ctx(), &refs(&msgs)),
            FlvOutcome::Value(7)
        );
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::Value(7)
        );
    }

    #[test]
    fn unanimity_majority_returned_at_line_9() {
        // n = 5, TD = 3 ⇒ pivot = 3: a 3-of-5 majority is NOT possible at
        // line 1 (support 3 ≯ 3), so control reaches line 7 and the
        // unanimity branch must recover the majority value.
        let ctx = FlvContext {
            cfg: Config::new(5, 0, 1).unwrap().with_unanimity(true),
            td: 3,
            phase: Phase::new(1),
        };
        let msgs = vec![
            m3(7, 0, &[(7, 0)]),
            m3(7, 0, &[(7, 0)]),
            m3(7, 0, &[(7, 0)]),
            m3(2, 0, &[(2, 0)]),
            m3(9, 0, &[(9, 0)]), // Byzantine
        ];
        assert_eq!(Class3Flv.evaluate(&ctx, &refs(&msgs)), FlvOutcome::Value(7));
        // Without unanimity the same input yields `?`.
        let ctx_plain = FlvContext {
            cfg: Config::new(5, 0, 1).unwrap(),
            td: 3,
            phase: Phase::new(1),
        };
        assert_eq!(
            Class3Flv.evaluate(&ctx_plain, &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn unanimity_without_majority_returns_any() {
        let msgs = vec![
            m3(7, 0, &[(7, 0)]),
            m3(7, 0, &[(7, 0)]),
            m3(2, 0, &[(2, 0)]),
            m3(3, 0, &[(3, 0)]),
        ];
        // (7,0) support 2 ≯ 2 → nothing possible; ts=0 count 4 > 2; no
        // strict majority (2 of 4) → `?` even with unanimity enabled.
        assert_eq!(
            Class3Flv.evaluate(&fig3_unanimity_ctx(), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn insufficient_sample_returns_no_info() {
        // 2 messages: no vote possible (support ≤ 2), ts=0 count 2 not > 2.
        let msgs = vec![m3(1, 0, &[(1, 0)]), m3(2, 0, &[(2, 0)])];
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::NoInfo
        );
    }

    #[test]
    fn validated_value_with_honest_attestors_wins_over_stale() {
        // One honest selected v1 in phase 2 and validated it; two more
        // honest processes hold (v1, 2) in history because they selected it
        // too. A stale honest (v2, 1) cannot compete.
        let msgs = vec![
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(1, 2, &[(1, 2)]),
            m3(2, 1, &[(2, 0), (1, 2), (2, 1)]), // selected v1 in φ2, then reverted
            m3(2, 1, &[(2, 0), (2, 1)]),
        ];
        // (v1,2) support: 2 (votes) + 2 (ts 2 > 1) = 4 > 2 ✓; attestors of
        // (1,2): msgs 0,1,2 = 3 > b ✓. (v2,1) support: 2 votes + 0 older = 2 ✗.
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn empty_input_is_no_info() {
        assert_eq!(
            <Class3Flv as Flv<u64>>::evaluate(&Class3Flv, &fig3_ctx(), &[]),
            FlvOutcome::NoInfo
        );
    }

    #[test]
    fn multiple_correct_votes_return_any() {
        // Craft two values both possible and both attested by > b histories.
        let msgs = vec![
            m3(1, 3, &[(1, 3)]),
            m3(1, 3, &[(1, 3)]),
            m3(2, 4, &[(2, 4)]),
            m3(2, 4, &[(2, 4)]),
        ];
        // (1,3): support 2 votes + 0 older… (2,4) has ts 4, not < 3 → 2 ✗.
        // Hmm — make supports work: raise timestamps asymmetrically.
        let msgs2 = vec![
            m3(1, 5, &[(1, 5)]),
            m3(1, 5, &[(1, 5)]),
            m3(2, 6, &[(2, 6)]),
            m3(2, 6, &[(2, 6)]),
        ];
        // (1,5): 2 votes + 0 = 2 ✗ — still not possible. Use older thirds:
        let msgs3 = vec![
            m3(1, 5, &[(1, 5)]),
            m3(1, 5, &[(1, 5)]),
            m3(2, 6, &[(2, 6), (1, 5)]),
            m3(2, 6, &[(2, 6), (1, 5)]),
            m3(3, 1, &[(3, 1)]),
        ];
        // n=5 variant: use a ctx with n=5, td=3, b=1 → pivot = 3.
        let ctx = FlvContext {
            cfg: Config::new(5, 0, 1).unwrap(),
            td: 3,
            phase: Phase::new(7),
        };
        // (1,5): 2 votes + 1 older (ts5>1) = 3 ✗ (not > 3).
        // (2,6): 2 votes + ts6>5 ×2 + ts6>1 = 5 ✓ > 3; attestors (2,6): 2 > 1 ✓.
        // So correctVotes = {2} — Value(2). Adjust: give (1,5) more support.
        let _ = (msgs, msgs2);
        assert_eq!(
            Class3Flv.evaluate(&ctx, &refs(&msgs3)),
            FlvOutcome::Value(2)
        );
        // Both possible & attested: symmetric supports via low third vote.
        let msgs4 = vec![
            m3(1, 5, &[(1, 5)]),
            m3(1, 5, &[(1, 5)]),
            m3(2, 6, &[(2, 6)]),
            m3(2, 6, &[(2, 6)]),
            m3(3, 1, &[(3, 1), (1, 5), (2, 6)]),
        ];
        // (1,5): 2 votes + ts5>1 = 3 ✗ — pivot 3 too strict. Use td=4 → pivot 2.
        let ctx2 = FlvContext {
            cfg: Config::new(5, 0, 1).unwrap(),
            td: 4,
            phase: Phase::new(7),
        };
        // (1,5): support 3 > 2 ✓, attestors {m0,m1,m4} = 3 > 1 ✓.
        // (2,6): support 2 votes + ts6>5×2 + ts6>1 = 5 ✓, attestors {m2,m3,m4} ✓.
        assert_eq!(Class3Flv.evaluate(&ctx2, &refs(&msgs4)), FlvOutcome::Any);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<Class3Flv as Flv<u64>>::name(&Class3Flv), "class3");
    }

    #[test]
    fn prel_input_can_return_null_unlike_classes_1_and_2() {
        // §6: randomized algorithms need FLV to be non-null on *any*
        // n − b − f messages. The paper believes class 3 cannot provide
        // this — here is a witness: n = 4, b = 1, TD = 3, exactly
        // n − b − f = 3 messages, yet Algorithm 4 must answer null
        // (the validated vote has support but no b+1 attestors in this
        // particular subset, and too few ts = 0 messages).
        let msgs = vec![
            m3(1, 2, &[(1, 0), (1, 2)]),
            m3(2, 0, &[(2, 0)]),
            m3(3, 0, &[(3, 0)]),
        ];
        assert_eq!(
            Class3Flv.evaluate(&fig3_ctx(), &refs(&msgs)),
            FlvOutcome::NoInfo,
            "class 3 cannot be made randomized (§6)"
        );
    }
}
