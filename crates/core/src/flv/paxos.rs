//! FLV specialization for Paxos (Algorithm 7).
//!
//! Paxos [11] assumes benign faults (b = 0, n > 2f) with `TD = ⌈(n+1)/2⌉`.
//! §5.3 derives Algorithm 7 from the class-3 FLV (Algorithm 4): with b = 0
//! every message satisfies `(vote, ts) ∈ history`, so `correctVotes`
//! degenerates to `possibleVotes` and the history — and the unanimity branch
//! — disappear:
//!
//! ```text
//! 1: possibleVotes ← { (vote, ts) ∈ ~µ :
//!        |{(vote′, ts′) ∈ ~µ : vote = vote′ ∨ ts > ts′}| > n/2 }
//! 2: if |possibleVotes| = 1 then return v
//! 4: else if |~µ| > n/2 then return ?
//! 6: else return null
//! ```
//!
//! `|possibleVotes| = 1` counts *distinct votes* (the projection the paper
//! applies when writing "return v s.t. (v,−,−) ∈ possibleVotes"): several
//! timestamps may carry the same locked value simultaneously.

use gencon_types::quorum;

use crate::flv::class2::possible_vote_indices;
use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;

/// Algorithm 7: FLV for class 3 with b = 0 and `TD = ⌈(n+1)/2⌉`.
///
/// This is the classic Paxos phase-1b rule: among a majority of `(vote, ts)`
/// reports, adopt the vote supported by agreement-or-older-timestamp
/// majorities — which is exactly the highest-timestamped vote when one
/// exists.
#[derive(Clone, Copy, Default, Debug)]
pub struct PaxosFlv;

impl PaxosFlv {
    /// Creates the Paxos FLV.
    #[must_use]
    pub fn new() -> Self {
        PaxosFlv
    }

    /// The Paxos decision threshold `⌈(n+1)/2⌉` (a strict majority).
    #[must_use]
    pub fn td(n: usize) -> usize {
        (n + 1).div_ceil(2)
    }
}

impl<V: gencon_types::Value> Flv<V> for PaxosFlv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let n = ctx.cfg.n();
        debug_assert_eq!(ctx.cfg.b(), 0, "PaxosFlv assumes the benign model");

        // Line 1 with bound n/2 (b = 0 ⇒ n − TD + b = n − ⌈(n+1)/2⌉ = ⌊(n-1)/2⌋;
        // the paper writes the equivalent `> n/2` support condition).
        let possible = possible_vote_indices(msgs, n / 2);

        // Line 2: distinct votes among possible messages.
        let mut votes: Vec<&V> = Vec::new();
        for &i in &possible {
            if !votes.contains(&&msgs[i].vote) {
                votes.push(&msgs[i].vote);
            }
        }

        if votes.len() == 1 {
            return FlvOutcome::Value(votes[0].clone());
        }
        if quorum::more_than_half(msgs.len(), n) {
            return FlvOutcome::Any;
        }
        FlvOutcome::NoInfo
    }

    fn name(&self) -> &'static str {
        "paxos"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        PaxosFlv::td(cfg.n())
    }

    fn requires_strong_selector(&self) -> bool {
        // Class-3 derived, but with b = 0 strong validity degenerates to
        // |S| > 2f, which a singleton leader cannot offer — and does not
        // need to: the benign simplification (Algorithm 7) needs no history
        // attestation, hence no strong selector.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::testutil::{m2, refs};
    use gencon_types::{Config, Phase};

    fn ctx(n: usize) -> FlvContext {
        FlvContext {
            cfg: Config::benign(n, (n - 1) / 2).unwrap(),
            td: PaxosFlv::td(n),
            phase: Phase::new(5),
        }
    }

    #[test]
    fn td_is_strict_majority() {
        assert_eq!(PaxosFlv::td(3), 2);
        assert_eq!(PaxosFlv::td(4), 3);
        assert_eq!(PaxosFlv::td(5), 3);
    }

    #[test]
    fn highest_timestamped_vote_wins() {
        // The classic Paxos recovery: adopt the value of the highest ts.
        // A locked value always arrives with TD = 2 supporting reports.
        let msgs = vec![m2(7, 3), m2(7, 3), m2(9, 1)];
        assert_eq!(
            PaxosFlv.evaluate(&ctx(3), &refs(&msgs)),
            FlvOutcome::Value(7)
        );
    }

    #[test]
    fn competing_stale_timestamps_without_lock_return_any() {
        // (7,3) and (8,2) are both "possible" (each supported by a majority
        // via agreement-or-older); no value is locked in such a state, and
        // Algorithm 7 answers `?` — any choice is safe.
        let msgs = vec![m2(7, 3), m2(8, 2), m2(9, 1)];
        assert_eq!(PaxosFlv.evaluate(&ctx(3), &refs(&msgs)), FlvOutcome::Any);
    }

    #[test]
    fn locked_value_recovered_from_any_majority() {
        // n = 5, TD = 3: after a decision on v, every majority contains a
        // (v, ts_max) report.
        let msgs_full = vec![m2(7, 4), m2(7, 4), m2(7, 4), m2(8, 2), m2(9, 0)];
        let all = refs(&msgs_full);
        for mask in 0u32..(1 << 5) {
            let subset: Vec<_> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, m)| *m)
                .collect();
            if subset.len() < 3 {
                continue;
            }
            // any 3+-subset holds ≥ 1 of the three (7,4) reports
            if subset.iter().filter(|m| m.vote == 7).count() == 0 {
                continue; // not reachable with only 2 non-7 messages
            }
            match PaxosFlv.evaluate(&ctx(5), &subset) {
                FlvOutcome::Value(v) => assert_eq!(v, 7, "mask {mask:b}"),
                FlvOutcome::Any => panic!("mask {mask:b}: ? returned though 7 is locked"),
                FlvOutcome::NoInfo => {}
            }
        }
    }

    #[test]
    fn fresh_majority_returns_any() {
        let msgs = vec![m2(1, 0), m2(2, 0)];
        assert_eq!(PaxosFlv.evaluate(&ctx(3), &refs(&msgs)), FlvOutcome::Any);
    }

    #[test]
    fn minority_returns_no_info() {
        let msgs = vec![m2(1, 0)];
        assert_eq!(PaxosFlv.evaluate(&ctx(3), &refs(&msgs)), FlvOutcome::NoInfo);
    }

    #[test]
    fn same_vote_multiple_timestamps_is_unique() {
        // (7,4) and (7,2) both possible ⇒ still one distinct vote.
        let msgs = vec![m2(7, 4), m2(7, 2), m2(8, 1)];
        assert_eq!(
            PaxosFlv.evaluate(&ctx(3), &refs(&msgs)),
            FlvOutcome::Value(7)
        );
    }

    #[test]
    fn liveness_on_full_correct_quorum() {
        let c = ctx(5);
        let msgs = vec![m2(1, 0), m2(2, 0), m2(3, 0)];
        assert!(!PaxosFlv.evaluate(&c, &refs(&msgs)).is_no_info());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<PaxosFlv as Flv<u64>>::name(&PaxosFlv), "paxos");
    }
}
