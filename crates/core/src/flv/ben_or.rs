//! FLV specialization for Ben-Or's randomized algorithm (Algorithm 9, §6).
//!
//! Ben-Or [1] solves *binary* consensus without partial synchrony: instead
//! of communication predicates that eventually hold, it assumes reliable
//! channels (`Prel`: every round delivers at least `n − b − f` messages) and
//! replaces the deterministic choice of line 11 with a coin flip. Repeating
//! phases makes all correct processes select the same value with
//! probability 1.
//!
//! Algorithm 9:
//!
//! ```text
//! 1: if received b + 1 messages ⟨v, φ − 1, −⟩ then return v
//! 4: else return ?
//! ```
//!
//! A vote timestamped `φ − 1` was validated in the previous phase; by
//! Lemma 4 only one value can be, so `b + 1` matching copies guarantee an
//! honest witness. Note the function never returns `null` — exactly the
//! stronger FLV-liveness randomized algorithms need (§6: a non-`null` answer
//! on *any* `n − b − f` messages, not just on hearing from all correct
//! processes).

use crate::flv::{Flv, FlvContext, FlvOutcome};
use crate::messages::SelectionMsg;
use crate::vote_count::VoteTally;

/// Algorithm 9: the Ben-Or FLV (a class-2 variant, per §6).
#[derive(Clone, Copy, Default, Debug)]
pub struct BenOrFlv;

impl BenOrFlv {
    /// Creates the Ben-Or FLV.
    #[must_use]
    pub fn new() -> Self {
        BenOrFlv
    }
}

impl<V: gencon_types::Value> Flv<V> for BenOrFlv {
    fn evaluate(&self, ctx: &FlvContext, msgs: &[&SelectionMsg<V>]) -> FlvOutcome<V> {
        let prev = ctx.phase.prev();
        if prev.is_zero() {
            // Phase 1: no validation has happened yet.
            return FlvOutcome::Any;
        }
        let tally = VoteTally::of_votes(msgs.iter().filter(|m| m.ts == prev).map(|m| &m.vote));
        // "received b + 1 messages ⟨v, φ−1⟩" — at least b + 1. Lemma 4
        // makes the qualifying value unique among honest senders; if
        // Byzantine senders manufacture a second one, the smallest value is
        // taken (deterministic, and only reachable when nothing is locked).
        if let Some(v) = tally.votes_at_least(ctx.cfg.b() + 1).next() {
            return FlvOutcome::Value(v.clone());
        }
        FlvOutcome::Any
    }

    fn name(&self) -> &'static str {
        "ben-or"
    }

    fn min_live_td(&self, cfg: &gencon_types::Config) -> usize {
        // Ben-Or benign: TD = f + 1 (n > 2f); Byzantine: TD = 3b + 1
        // (n > 4b). Both are the class-2 bound of §6.
        gencon_types::quorum::class2_min_td(cfg.f(), cfg.b())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flv::testutil::{m2, refs};
    use gencon_types::{Config, Phase};

    fn ctx(n: usize, f: usize, b: usize, phase: u64) -> FlvContext {
        FlvContext {
            cfg: Config::new(n, f, b).unwrap(),
            td: if b > 0 { 3 * b + 1 } else { f + 1 },
            phase: Phase::new(phase),
        }
    }

    #[test]
    fn first_phase_is_free_choice() {
        let msgs = vec![m2(0, 0), m2(1, 0)];
        assert_eq!(
            BenOrFlv.evaluate(&ctx(5, 2, 0, 1), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn previous_phase_validation_is_adopted() {
        // b = 1: two ⟨1, φ−1⟩ reports force value 1.
        let msgs = vec![m2(1, 2), m2(1, 2), m2(0, 0), m2(0, 1)];
        assert_eq!(
            BenOrFlv.evaluate(&ctx(5, 0, 1, 3), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn single_witness_insufficient_with_byzantine() {
        // b = 1: one ⟨1, φ−1⟩ report could be Byzantine — coin flip instead.
        let msgs = vec![m2(1, 2), m2(0, 0), m2(0, 0), m2(0, 1)];
        assert_eq!(
            BenOrFlv.evaluate(&ctx(5, 0, 1, 3), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn stale_timestamps_do_not_count() {
        // Reports from φ−2 are ignored by Algorithm 9.
        let msgs = vec![m2(1, 1), m2(1, 1), m2(0, 0)];
        assert_eq!(
            BenOrFlv.evaluate(&ctx(5, 0, 1, 3), &refs(&msgs)),
            FlvOutcome::Any
        );
    }

    #[test]
    fn benign_model_needs_single_witness() {
        // b = 0: one ⟨v, φ−1⟩ report suffices (b + 1 = 1).
        let msgs = vec![m2(1, 4), m2(0, 0)];
        assert_eq!(
            BenOrFlv.evaluate(&ctx(3, 1, 0, 5), &refs(&msgs)),
            FlvOutcome::Value(1)
        );
    }

    #[test]
    fn never_returns_null() {
        // The randomized FLV-liveness: even an empty input yields a choice.
        let out = <BenOrFlv as Flv<u64>>::evaluate(&BenOrFlv, &ctx(5, 0, 1, 3), &[]);
        assert_eq!(out, FlvOutcome::Any);
    }

    #[test]
    fn byzantine_double_witness_resolved_deterministically() {
        // Two Byzantine reports manufacture a second "validated" value; the
        // deterministic tie-break picks the smaller. (Reachable only when
        // nothing is locked, so safety is unaffected.)
        let msgs = vec![m2(1, 2), m2(1, 2), m2(0, 2), m2(0, 2)];
        assert_eq!(
            BenOrFlv.evaluate(&ctx(5, 0, 1, 3), &refs(&msgs)),
            FlvOutcome::Value(0)
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(<BenOrFlv as Flv<u64>>::name(&BenOrFlv), "ben-or");
    }
}
